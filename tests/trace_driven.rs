//! Cross-crate integration tests of the trace-driven methodology
//! (Section 3): real workload kernels through the L1-filtered cache
//! hierarchy under every policy.

use cost_sensitive_cache::harness::{
    build_benchmarks, fig3_grid, run_sampled, table2, CostRatio, LruMissProfile, PolicyKind, Scale,
    TraceSimConfig,
};
use cost_sensitive_cache::sim::{Cost, CostPair};
use cost_sensitive_cache::trace::cost_map::{RandomCostMap, UniformCostMap};
use cost_sensitive_cache::trace::workloads::synthetic::UniformRandom;
use cost_sensitive_cache::trace::{ProcId, SampledTrace, Workload};

fn small_sampled() -> SampledTrace {
    let w = UniformRandom {
        refs: 80_000,
        blocks: 3000,
        procs: 4,
        write_fraction: 0.3,
    };
    SampledTrace::from_trace(&w.generate(17), ProcId(0))
}

#[test]
fn uniform_costs_collapse_every_lru_extension_to_lru() {
    // DESIGN.md invariant 1, on a multiprocessor trace with invalidations.
    let s = small_sampled();
    let cfg = TraceSimConfig::paper_basic();
    let map = UniformCostMap(Cost(7));
    let lru = run_sampled(&s, &map, PolicyKind::Lru, cfg);
    for kind in [PolicyKind::Bcl, PolicyKind::Dcl, PolicyKind::Acl] {
        let r = run_sampled(&s, &map, kind, cfg);
        assert_eq!(r.l2.misses, lru.l2.misses, "{kind}");
        assert_eq!(r.l2.hits, lru.l2.hits, "{kind}");
        assert_eq!(r.l2.non_lru_evictions, 0, "{kind} must never reserve");
    }
}

#[test]
fn infinite_ratio_gives_upper_bound_savings() {
    // At r = infinity the depreciation is inert, so DCL's savings at any
    // finite r cannot exceed the infinite-ratio savings.
    let s = small_sampled();
    let cfg = TraceSimConfig::paper_basic();
    let profile = LruMissProfile::collect(&s, cfg);
    let mut savings = Vec::new();
    for ratio in [
        CostRatio::Finite(4),
        CostRatio::Finite(16),
        CostRatio::Infinite,
    ] {
        let map = RandomCostMap::new(0.2, ratio.pair(), 5);
        let base = profile.aggregate_cost(&map);
        let run = run_sampled(&s, &map, PolicyKind::Dcl, cfg);
        savings.push(cost_sensitive_cache::sim::relative_savings_pct(
            base,
            run.aggregate_cost(),
        ));
    }
    assert!(
        savings[2] >= savings[0] && savings[2] >= savings[1],
        "infinite ratio must dominate: {savings:?}"
    );
}

#[test]
fn aggregate_cost_equals_sum_of_charged_misses() {
    // DESIGN.md invariant 4: replaying the events and summing the charged
    // costs reproduces the cache's aggregate-cost counter.
    let s = small_sampled();
    let cfg = TraceSimConfig::paper_basic();
    let map = RandomCostMap::new(0.3, CostPair::ratio(8), 3);
    let result = run_sampled(&s, &map, PolicyKind::Bcl, cfg);

    // Manual replay with explicit accounting.
    use cost_sensitive_cache::sim::{Cost as C, TwoLevel};
    let mut h = TwoLevel::new(cfg.l1, cfg.l2, PolicyKind::Bcl.build(&cfg.l2));
    let mut total = C::ZERO;
    use cost_sensitive_cache::trace::cost_map::CostMap;
    use cost_sensitive_cache::trace::SampledEvent;
    for ev in s.events() {
        match *ev {
            SampledEvent::Own { addr, op } => {
                let block = addr.block(64);
                total += h.access(block, op, map.cost_of(block)).cost_charged;
            }
            SampledEvent::ForeignWrite { addr } => h.invalidate(addr.block(64)),
        }
    }
    assert_eq!(total, result.aggregate_cost());
}

#[test]
fn fig3_sweet_spot_is_positive_on_irregular_kernels() {
    // The headline of Figure 3: at moderate HAF and r, the cost-sensitive
    // policies save real cost on the irregular kernels.
    let benchmarks = build_benchmarks(Scale::Quick);
    let barnes: Vec<_> = benchmarks
        .into_iter()
        .filter(|b| b.name == "barnes")
        .collect();
    let pts = fig3_grid(
        &barnes,
        &[0.1, 0.2],
        &[CostRatio::Finite(8), CostRatio::Infinite],
        &[PolicyKind::Dcl],
        TraceSimConfig::paper_basic(),
        4,
    );
    for p in &pts {
        assert!(
            p.savings_pct > 2.0,
            "barnes DCL at HAF {} {} should save clearly: {:.2}%",
            p.haf,
            p.ratio,
            p.savings_pct
        );
    }
}

#[test]
fn acl_is_reliable_under_first_touch() {
    // Table 2's ACL claim: "its cost is never worse than LRU's" — allow a
    // small tolerance for simulator noise.
    let benchmarks = build_benchmarks(Scale::Quick);
    let cells = table2(
        &benchmarks,
        &[CostRatio::Finite(4), CostRatio::Finite(16)],
        &[PolicyKind::Acl],
        TraceSimConfig::paper_basic(),
        4,
    );
    for c in &cells {
        assert!(
            c.savings_pct > -1.0,
            "ACL must stay near-or-above LRU on {} at {}: {:.2}%",
            c.benchmark,
            c.ratio,
            c.savings_pct
        );
    }
}

#[test]
fn savings_grow_with_ratio_under_first_touch() {
    // Table 2 shape: for the kernels with remote reuse, savings increase
    // with the cost ratio.
    let benchmarks = build_benchmarks(Scale::Quick);
    let barnes: Vec<_> = benchmarks
        .into_iter()
        .filter(|b| b.name == "barnes")
        .collect();
    let cells = table2(
        &barnes,
        &CostRatio::TABLE2,
        &[PolicyKind::Dcl],
        TraceSimConfig::paper_basic(),
        4,
    );
    let series: Vec<f64> = cells.iter().map(|c| c.savings_pct).collect();
    assert!(
        series.last() > series.first(),
        "savings should grow from r=2 to r=32: {series:?}"
    );
}
