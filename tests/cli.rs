//! End-to-end tests of the `experiments` binary: the harness a downstream
//! user actually runs.

use std::process::Command;
use std::sync::OnceLock;

fn experiments() -> Command {
    // Build once per test process (the three tests would otherwise race
    // three cargo invocations on the target-dir lock). Caveat: a build
    // target triple (CARGO_BUILD_TARGET) or a build.target-dir set only in
    // .cargo/config.toml is not handled; export CARGO_TARGET_DIR for those
    // setups.
    static BUILT: OnceLock<()> = OnceLock::new();
    BUILT.get_or_init(|| {
        let status = Command::new(env!("CARGO"))
            .args([
                "build",
                "--release",
                "-p",
                "csr-bench",
                "--bin",
                "experiments",
            ])
            .status()
            .expect("cargo build");
        assert!(status.success(), "experiments binary must build");
    });
    let mut path = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.push("target");
            p
        });
    path.push("release/experiments");
    Command::new(path)
}

#[test]
fn hwcost_reports_paper_numbers() {
    let out = experiments().arg("hwcost").output().expect("run hwcost");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // The quantized encoding must reproduce the paper's exact bit counts:
    // match each policy row's trailing bits/set value, not bare substrings.
    let quantized: Vec<(&str, &str)> =
        vec![("Bcl", "11"), ("Gd", "20"), ("Dcl", "32"), ("Acl", "35")];
    let quant_section = text
        .split("quantized-latency")
        .nth(1)
        .expect("quantized section");
    for (policy, bits) in quantized {
        let row = quant_section
            .lines()
            .find(|l| l.trim_start().starts_with(policy))
            .unwrap_or_else(|| panic!("no {policy} row in:\n{quant_section}"));
        assert!(
            row.trim_end().ends_with(bits),
            "{policy} row must end with {bits}: {row:?}"
        );
    }
    assert!(text.contains("6.61"), "DCL dynamic overhead %");
}

#[test]
fn table4_reports_unloaded_latencies() {
    let out = experiments().arg("table4").output().expect("run table4");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("local clean"));
    assert!(text.contains("380"), "paper target shown");
    assert!(text.contains("MESI with replacement hints"));
}

#[test]
fn bad_usage_exits_2_with_usage_line() {
    for args in [vec![], vec!["bogus"], vec!["table1", "--threads", "x"]] {
        let out = experiments().args(&args).output().expect("run");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "args {args:?}: {err}");
    }
}
