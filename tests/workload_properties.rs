//! Randomized tests (seeded, dependency-free) of the workload generators
//! and trace plumbing.

use cost_sensitive_cache::trace::rng::SplitMix64;
use cost_sensitive_cache::trace::workloads::synthetic::{
    SequentialScan, UniformRandom, ZipfRandom,
};
use cost_sensitive_cache::trace::workloads::{BarnesLike, LuLike, OceanLike, RaytraceLike};
use cost_sensitive_cache::trace::{FirstTouchPlacement, ProcId, SampledTrace, Trace, Workload};

/// Every kernel's flat trace and phased trace contain exactly the same
/// references (the interleave is a permutation within phases).
#[test]
fn phased_and_flat_traces_agree() {
    let mut rng = SplitMix64::new(0x00AD_5EED);
    for _ in 0..8 {
        let seed = rng.below(1000);
        let kernels: Vec<Box<dyn Workload>> = vec![
            Box::new(BarnesLike {
                bodies: 512,
                procs: 4,
                steps: 1,
                walk_len: 8,
                locality_bias: 0.6,
            }),
            Box::new(LuLike {
                n: 64,
                block: 16,
                procs: 4,
                element_stride: 2,
            }),
            Box::new(OceanLike {
                n: 34,
                grids: 2,
                procs: 4,
                iters: 1,
                col_stride: 2,
                reduction_points: 16,
            }),
            Box::new(RaytraceLike {
                scene_nodes: 1024,
                image: 16,
                procs: 4,
                ray_depth: 6,
                locality_bias: 0.8,
            }),
        ];
        for w in kernels {
            let flat = w.generate(seed);
            let phased = w.generate_phases(seed);
            assert_eq!(flat.len(), phased.total_refs(), "{} seed {seed}", w.name());
            // Same per-processor reference counts.
            for p in 0..w.num_procs() {
                let phased_count: usize = phased
                    .phases()
                    .iter()
                    .map(|ph| ph.stream(ProcId(p)).len())
                    .sum();
                assert_eq!(flat.refs_by(ProcId(p)) as usize, phased_count);
            }
        }
    }
}

/// First-touch placement is stable: re-deriving it from the same trace
/// yields the same homes, and remote fractions stay in [0, 1].
#[test]
fn first_touch_is_deterministic() {
    let mut rng = SplitMix64::new(0xF1_857);
    for _ in 0..16 {
        let seed = rng.below(1000);
        let w = UniformRandom {
            refs: 3000,
            blocks: 256,
            procs: 4,
            write_fraction: 0.3,
        };
        let t = w.generate(seed);
        let a = FirstTouchPlacement::from_trace(64, &t);
        let b = FirstTouchPlacement::from_trace(64, &t);
        assert_eq!(a.units_homed(), b.units_homed());
        for p in 0..4 {
            let fa = a.remote_fraction(&t, ProcId(p));
            assert!((0.0..=1.0).contains(&fa));
            assert_eq!(fa, b.remote_fraction(&t, ProcId(p)));
        }
    }
}

/// A sampled trace never contains another processor's reads, and its
/// event count is own refs + foreign writes.
#[test]
fn sampling_partitions_correctly() {
    let mut rng = SplitMix64::new(0x5A_3713);
    for _ in 0..16 {
        let seed = rng.below(1000);
        let proc = rng.below(4) as usize;
        let w = UniformRandom {
            refs: 2000,
            blocks: 128,
            procs: 4,
            write_fraction: 0.4,
        };
        let t = w.generate(seed);
        let s = SampledTrace::from_trace(&t, ProcId(proc));
        assert_eq!(s.events().len() as u64, s.own_refs() + s.foreign_writes());
        assert_eq!(s.own_refs(), t.refs_by(ProcId(proc)));
        let total_writes: u64 = t
            .iter()
            .filter(|r| r.op == cost_sensitive_cache::sim::AccessType::Write)
            .count() as u64;
        let own_writes: u64 = t
            .iter()
            .filter(|r| {
                r.proc == ProcId(proc) && r.op == cost_sensitive_cache::sim::AccessType::Write
            })
            .count() as u64;
        assert_eq!(s.foreign_writes(), total_writes - own_writes);
    }
}

/// Trace round-trips through the binary format byte-exactly.
#[test]
fn trace_io_roundtrip() {
    let mut rng = SplitMix64::new(0x10_0907);
    for _ in 0..16 {
        let seed = rng.below(1000);
        let w = ZipfRandom {
            refs: 500,
            blocks: 64,
            exponent: 1.0,
            write_fraction: 0.2,
        };
        let t = w.generate(seed);
        let mut buf = Vec::new();
        cost_sensitive_cache::trace::io::write_trace(&t, &mut buf).expect("write");
        let back = cost_sensitive_cache::trace::io::read_trace(buf.as_slice()).expect("read");
        assert_eq!(back.records(), t.records());
    }
}

/// The sequential scan is exactly periodic.
#[test]
fn scan_is_periodic() {
    let mut rng = SplitMix64::new(0x5CA11);
    for _ in 0..16 {
        let passes = 1 + rng.below(4) as usize;
        let blocks = 1 + rng.below(63) as usize;
        let t = SequentialScan { passes, blocks }.generate(0);
        assert_eq!(t.len(), passes * blocks);
        let recs = t.records();
        for i in blocks..recs.len() {
            assert_eq!(recs[i].addr, recs[i - blocks].addr);
        }
    }
}

/// The Table-1 characteristics of the default suite stay in the bands
/// EXPERIMENTS.md documents (a drift canary for kernel edits).
#[test]
fn default_suite_characteristics_stay_in_documented_bands() {
    let suite: Vec<(Box<dyn Workload>, std::ops::Range<f64>)> = vec![
        (Box::new(BarnesLike::default()), 0.40..0.62),
        (Box::new(LuLike::default()), 0.12..0.30),
        (Box::new(OceanLike::default()), 0.03..0.15),
        (Box::new(RaytraceLike::default()), 0.22..0.42),
    ];
    for (w, band) in suite {
        let t = w.generate(2003);
        let sample = cost_sensitive_cache::trace::representative_processor(&t);
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let f = placement.remote_fraction(&t, sample);
        assert!(
            band.contains(&f),
            "{}: remote fraction {f} outside documented band {band:?}",
            w.name()
        );
    }
    let _ = Trace::new(1); // keep the import exercised
}
