//! Property-based tests of the CC-NUMA simulator: random small phased
//! traces through the full protocol, checking liveness (completion),
//! coherence invariants, and policy-independent accounting.

use cost_sensitive_cache::harness::PolicyKind;
use cost_sensitive_cache::numa::{Clock, System, SystemConfig};
use cost_sensitive_cache::sim::Addr;
use cost_sensitive_cache::trace::{Phase, PhasedTrace, ProcId, TraceRecord};
use proptest::prelude::*;

const PROCS: usize = 4;

/// A compact random phased trace: a few phases, each with a few references
/// per processor over a small, heavily-shared block pool — maximal
/// protocol contention per reference.
fn phased_strategy() -> impl Strategy<Value = PhasedTrace> {
    let rec = (0u64..24, prop::bool::ANY);
    let stream = prop::collection::vec(rec, 0..24);
    let phase = prop::collection::vec(stream, PROCS..=PROCS);
    prop::collection::vec(phase, 1..4).prop_map(|phases| {
        let mut pt = PhasedTrace::new(PROCS);
        for phase_streams in phases {
            let streams: Vec<Vec<TraceRecord>> = phase_streams
                .into_iter()
                .enumerate()
                .map(|(p, refs)| {
                    refs.into_iter()
                        .map(|(block, is_write)| {
                            let addr = Addr(block * 64);
                            if is_write {
                                TraceRecord::write(ProcId(p), addr)
                            } else {
                                TraceRecord::read(ProcId(p), addr)
                            }
                        })
                        .collect()
                })
                .collect();
            pt.push(Phase::from_streams(streams));
        }
        pt
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The protocol always completes (no deadlock) and preserves its
    /// invariants, for LRU and for the most complex policy (ACL), on
    /// arbitrary sharing patterns.
    #[test]
    fn protocol_liveness_and_coherence(pt in phased_strategy()) {
        for policy in [PolicyKind::Lru, PolicyKind::Acl] {
            let mut cfg = SystemConfig::table4(Clock::Mhz500);
            cfg.num_nodes = PROCS;
            let mut sys = System::new(cfg, &pt, &move |g: &cost_sensitive_cache::sim::Geometry| {
                policy.build(g)
            });
            let res = sys.run(); // panics on deadlock
            prop_assert_eq!(
                res.nodes.iter().map(|n| n.refs).sum::<u64>(),
                pt.total_refs() as u64
            );
            if let Err(e) = sys.validate_coherence() {
                return Err(TestCaseError::fail(format!("{policy}: {e}")));
            }
        }
    }

    /// Execution time is invariant to event-insertion details: running the
    /// same trace twice gives identical timing (full determinism).
    #[test]
    fn timing_is_deterministic(pt in phased_strategy()) {
        let run = || {
            let mut cfg = SystemConfig::table4(Clock::Ghz1);
            cfg.num_nodes = PROCS;
            System::new(cfg, &pt, &|g: &cost_sensitive_cache::sim::Geometry| {
                Box::new(cost_sensitive_cache::sim::Lru::new()) as cost_sensitive_cache::numa::L2Policy
            })
            .run()
            .exec_time_ps
        };
        prop_assert_eq!(run(), run());
    }
}
