//! Randomized tests (seeded, dependency-free) of the CC-NUMA simulator:
//! random small phased traces through the full protocol, checking
//! liveness (completion), coherence invariants, and policy-independent
//! accounting.

use cost_sensitive_cache::harness::PolicyKind;
use cost_sensitive_cache::numa::{Clock, System, SystemConfig};
use cost_sensitive_cache::sim::Addr;
use cost_sensitive_cache::trace::rng::SplitMix64;
use cost_sensitive_cache::trace::{Phase, PhasedTrace, ProcId, TraceRecord};

const PROCS: usize = 4;

/// A compact random phased trace: a few phases, each with a few references
/// per processor over a small, heavily-shared block pool — maximal
/// protocol contention per reference.
fn random_phased(case: u64) -> PhasedTrace {
    let mut rng = SplitMix64::new(0x0DA_2003 ^ case.wrapping_mul(0xC0FF_EE01));
    let num_phases = 1 + rng.below(3) as usize;
    let mut pt = PhasedTrace::new(PROCS);
    for _ in 0..num_phases {
        let streams: Vec<Vec<TraceRecord>> = (0..PROCS)
            .map(|p| {
                let len = rng.below(24) as usize;
                (0..len)
                    .map(|_| {
                        let addr = Addr(rng.below(24) * 64);
                        if rng.chance(0.5) {
                            TraceRecord::write(ProcId(p), addr)
                        } else {
                            TraceRecord::read(ProcId(p), addr)
                        }
                    })
                    .collect()
            })
            .collect();
        pt.push(Phase::from_streams(streams));
    }
    pt
}

/// The protocol always completes (no deadlock) and preserves its
/// invariants, for LRU and for the most complex policy (ACL), on
/// arbitrary sharing patterns.
#[test]
fn protocol_liveness_and_coherence() {
    for case in 0..24 {
        let pt = random_phased(case);
        for policy in [PolicyKind::Lru, PolicyKind::Acl] {
            let mut cfg = SystemConfig::table4(Clock::Mhz500);
            cfg.num_nodes = PROCS;
            let mut sys = System::new(cfg, &pt, &move |g: &cost_sensitive_cache::sim::Geometry| {
                policy.build(g)
            });
            let res = sys.run(); // panics on deadlock
            assert_eq!(
                res.nodes.iter().map(|n| n.refs).sum::<u64>(),
                pt.total_refs() as u64,
                "{policy}: lost references in case {case}"
            );
            if let Err(e) = sys.validate_coherence() {
                panic!("{policy}: {e} in case {case}");
            }
        }
    }
}

/// Execution time is invariant to event-insertion details: running the
/// same trace twice gives identical timing (full determinism).
#[test]
fn timing_is_deterministic() {
    for case in 0..12 {
        let pt = random_phased(1000 + case);
        let run = || {
            let mut cfg = SystemConfig::table4(Clock::Ghz1);
            cfg.num_nodes = PROCS;
            System::new(cfg, &pt, &|_g: &cost_sensitive_cache::sim::Geometry| {
                Box::new(cost_sensitive_cache::sim::Lru::new())
                    as cost_sensitive_cache::numa::L2Policy
            })
            .run()
            .exec_time_ps
        };
        assert_eq!(run(), run(), "case {case}");
    }
}
