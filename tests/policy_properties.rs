//! Randomized tests (seeded, dependency-free) of the core invariants
//! listed in DESIGN.md §6.
//!
//! Each test replays a batch of pseudo-random cache scripts drawn from the
//! workspace's internal [`SplitMix64`] generator, so failures reproduce
//! exactly from the fixed seeds below — no external property-test
//! framework required.

use cost_sensitive_cache::policies::{simulate_belady, Acl, Bcl, Dcl, GreedyDual, TraceEvent};
use cost_sensitive_cache::sim::{
    AccessType, BlockAddr, Cache, Cost, Geometry, InvalidateKind, Lru, ReplacementPolicy, SetIndex,
};
use cost_sensitive_cache::trace::rng::SplitMix64;

const CASES: u64 = 48;
const SEED: u64 = 0x5EED_2003;

/// One step of a random cache script.
#[derive(Debug, Clone, Copy)]
enum Step {
    Read(u64),
    Write(u64),
    Invalidate(u64),
}

/// A random script over `blocks` distinct blocks: reads, writes and
/// invalidations weighted 4:2:1, between 1 and 400 steps.
fn random_script(case: u64, blocks: u64) -> Vec<Step> {
    let mut rng = SplitMix64::new(SEED ^ case.wrapping_mul(0x9E37_79B9));
    let len = 1 + rng.below(400) as usize;
    (0..len)
        .map(|_| {
            let b = rng.below(blocks);
            match rng.below(7) {
                0..=3 => Step::Read(b),
                4..=5 => Step::Write(b),
                _ => Step::Invalidate(b),
            }
        })
        .collect()
}

/// Cost of a block under a deterministic two-cost mapping.
fn cost_of(block: u64, ratio: u64) -> Cost {
    if block.is_multiple_of(3) {
        Cost(ratio)
    } else {
        Cost(1)
    }
}

fn small_geom() -> Geometry {
    // 4 sets x 4 ways: plenty of conflicts from 48 blocks.
    Geometry::new(1024, 64, 4)
}

fn run_script<P: ReplacementPolicy>(
    geom: Geometry,
    policy: P,
    script: &[Step],
    ratio: u64,
) -> (Cache<P>, Vec<bool>) {
    let mut cache = Cache::new(geom, policy);
    let mut hits = Vec::new();
    for step in script {
        match *step {
            Step::Read(b) => {
                hits.push(
                    cache
                        .access(BlockAddr(b), AccessType::Read, cost_of(b, ratio))
                        .hit,
                );
            }
            Step::Write(b) => {
                hits.push(
                    cache
                        .access(BlockAddr(b), AccessType::Write, cost_of(b, ratio))
                        .hit,
                );
            }
            Step::Invalidate(b) => {
                cache.invalidate(BlockAddr(b), InvalidateKind::Coherence);
            }
        }
    }
    (cache, hits)
}

/// Invariant 1: with uniform costs (ratio 1), BCL/DCL/ACL produce the
/// exact hit/miss sequence of LRU on arbitrary scripts.
#[test]
fn uniform_costs_equal_lru() {
    for case in 0..CASES {
        let script = random_script(case, 48);
        let geom = small_geom();
        let (_, lru_hits) = run_script(geom, Lru::new(), &script, 1);
        let (_, bcl_hits) = run_script(geom, Bcl::new(&geom), &script, 1);
        let (_, dcl_hits) = run_script(geom, Dcl::new(&geom), &script, 1);
        let (_, acl_hits) = run_script(geom, Acl::new(&geom), &script, 1);
        assert_eq!(lru_hits, bcl_hits, "BCL diverged from LRU in case {case}");
        assert_eq!(lru_hits, dcl_hits, "DCL diverged from LRU in case {case}");
        assert_eq!(lru_hits, acl_hits, "ACL diverged from LRU in case {case}");
    }
}

/// Invariant 2: the recency stack never holds duplicate blocks and
/// never exceeds the associativity, for every policy.
#[test]
fn recency_stacks_stay_well_formed() {
    for case in 0..CASES {
        let script = random_script(case, 48);
        let geom = small_geom();
        macro_rules! check {
            ($policy:expr) => {{
                let (cache, _) = run_script(geom, $policy, &script, 8);
                for set in 0..geom.num_sets() {
                    let stack = cache.recency_of(SetIndex(set));
                    assert!(stack.len() <= geom.assoc());
                    let mut dedup = stack.clone();
                    dedup.sort_unstable_by_key(|b| b.0);
                    dedup.dedup();
                    assert_eq!(
                        dedup.len(),
                        stack.len(),
                        "duplicate tags in set {set}, case {case}"
                    );
                }
            }};
        }
        check!(Lru::new());
        check!(GreedyDual::new(&geom));
        check!(Bcl::new(&geom));
        check!(Dcl::new(&geom));
        check!(Acl::new(&geom));
    }
}

/// Invariant 3: DCL's ETD tags stay disjoint from resident tags and
/// within the s-1 capacity.
#[test]
fn etd_disjoint_and_bounded() {
    for case in 0..CASES {
        let script = random_script(case, 48);
        let geom = small_geom();
        let mut cache = Cache::new(geom, Dcl::new(&geom));
        for step in &script {
            match *step {
                Step::Read(b) => {
                    cache.access(BlockAddr(b), AccessType::Read, cost_of(b, 8));
                }
                Step::Write(b) => {
                    cache.access(BlockAddr(b), AccessType::Write, cost_of(b, 8));
                }
                Step::Invalidate(b) => {
                    cache.invalidate(BlockAddr(b), InvalidateKind::Coherence);
                }
            }
            for set in 0..geom.num_sets() {
                let etd_blocks = cache.policy().etd().blocks_in(SetIndex(set));
                assert!(etd_blocks.len() < geom.assoc());
                for eb in etd_blocks {
                    assert!(
                        !cache.contains(eb),
                        "block {eb} in both cache and ETD, case {case}"
                    );
                }
            }
        }
    }
}

/// Invariant 4: the aggregate cost always equals the sum of the costs
/// charged on misses.
#[test]
fn aggregate_cost_is_sum_of_misses() {
    for case in 0..CASES {
        let script = random_script(case, 48);
        let geom = small_geom();
        for kind in 0..4 {
            let policy: Box<dyn ReplacementPolicy> = match kind {
                0 => Box::new(Lru::new()),
                1 => Box::new(GreedyDual::new(&geom)),
                2 => Box::new(Bcl::new(&geom)),
                _ => Box::new(Dcl::new(&geom)),
            };
            let mut cache = Cache::new(geom, policy);
            let mut total = Cost::ZERO;
            for step in &script {
                match *step {
                    Step::Read(b) => {
                        total += cache
                            .access(BlockAddr(b), AccessType::Read, cost_of(b, 16))
                            .cost_charged;
                    }
                    Step::Write(b) => {
                        total += cache
                            .access(BlockAddr(b), AccessType::Write, cost_of(b, 16))
                            .cost_charged;
                    }
                    Step::Invalidate(b) => {
                        cache.invalidate(BlockAddr(b), InvalidateKind::Coherence);
                    }
                }
            }
            assert_eq!(
                total,
                cache.stats().aggregate_cost,
                "kind {kind}, case {case}"
            );
        }
    }
}

/// Invariant 5: BCL's depreciated cost never exceeds the miss cost of
/// the block it tracks.
#[test]
fn acost_bounded_by_block_cost() {
    for case in 0..CASES {
        let script = random_script(case, 48);
        let geom = small_geom();
        let mut cache = Cache::new(geom, Bcl::new(&geom));
        let max_cost = 16u64;
        for step in &script {
            match *step {
                Step::Read(b) => {
                    cache.access(BlockAddr(b), AccessType::Read, cost_of(b, max_cost));
                }
                Step::Write(b) => {
                    cache.access(BlockAddr(b), AccessType::Write, cost_of(b, max_cost));
                }
                Step::Invalidate(b) => {
                    cache.invalidate(BlockAddr(b), InvalidateKind::Coherence);
                }
            }
            for set in 0..geom.num_sets() {
                assert!(
                    cache.policy().acost_of(SetIndex(set)) <= max_cost,
                    "case {case}"
                );
            }
        }
    }
}

/// Invariant 7: Belady's OPT never misses more than LRU.
#[test]
fn belady_is_a_miss_floor() {
    for case in 0..CASES {
        let script = random_script(case, 48);
        let geom = small_geom();
        let mut events = Vec::new();
        for step in &script {
            match *step {
                Step::Read(b) | Step::Write(b) => {
                    events.push(TraceEvent::Access {
                        block: BlockAddr(b),
                        cost: Cost(1),
                    });
                }
                Step::Invalidate(b) => {
                    events.push(TraceEvent::Invalidate {
                        block: BlockAddr(b),
                    });
                }
            }
        }
        let opt = simulate_belady(&geom, &events);
        let mut lru = Cache::new(geom, Lru::new());
        let mut lru_misses = 0u64;
        for ev in &events {
            match *ev {
                TraceEvent::Access { block, cost } => {
                    if !lru.access(block, AccessType::Read, cost).hit {
                        lru_misses += 1;
                    }
                }
                TraceEvent::Invalidate { block } => {
                    lru.invalidate(block, InvalidateKind::Coherence);
                }
            }
        }
        assert!(
            opt.misses <= lru_misses,
            "OPT {} > LRU {} in case {case}",
            opt.misses,
            lru_misses
        );
    }
}

/// GD's H values never make it evict a just-filled MRU block while a
/// zero-H block sits in the set (sanity of the depreciation flow), and
/// the policy never corrupts residency.
#[test]
fn gd_scripts_never_panic_and_count_consistently() {
    for case in 0..CASES {
        let script = random_script(case, 48);
        let geom = small_geom();
        let (cache, hits) = run_script(geom, GreedyDual::new(&geom), &script, 8);
        let accesses = hits.len() as u64;
        assert_eq!(cache.stats().accesses, accesses, "case {case}");
        assert_eq!(
            cache.stats().hits + cache.stats().misses,
            accesses,
            "case {case}"
        );
    }
}
