//! Integration tests of the CC-NUMA simulator's protocol invariants
//! (DESIGN.md §6, invariant 6) across policies and workloads.

use cost_sensitive_cache::harness::PolicyKind;
use cost_sensitive_cache::numa::{Clock, System, SystemConfig};
use cost_sensitive_cache::trace::workloads::{BarnesLike, OceanLike};
use cost_sensitive_cache::trace::Workload;

fn run_and_validate(trace: &cost_sensitive_cache::trace::PhasedTrace, policy: PolicyKind) {
    let cfg = SystemConfig::table4(Clock::Mhz500);
    let mut sys = System::new(
        cfg,
        trace,
        &move |g: &cost_sensitive_cache::sim::Geometry| policy.build(g),
    );
    let res = sys.run();
    assert!(res.exec_time_ps > 0);
    sys.validate_coherence()
        .unwrap_or_else(|e| panic!("{policy}: {e}"));
}

#[test]
fn coherence_invariants_hold_after_ocean_runs() {
    let w = OceanLike {
        n: 66,
        grids: 3,
        procs: 16,
        iters: 3,
        col_stride: 2,
        reduction_points: 128,
    };
    let trace = w.generate_phases(5);
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Gd,
        PolicyKind::Bcl,
        PolicyKind::Dcl,
        PolicyKind::Acl,
    ] {
        run_and_validate(&trace, policy);
    }
}

#[test]
fn coherence_invariants_hold_after_barnes_runs() {
    // Barnes exercises read-write sharing of tree cells (fetches,
    // invalidations and upgrades all fire).
    let w = BarnesLike {
        bodies: 2048,
        procs: 16,
        steps: 2,
        walk_len: 12,
        locality_bias: 0.68,
    };
    let trace = w.generate_phases(9);
    for policy in [PolicyKind::Lru, PolicyKind::Dcl, PolicyKind::AclAliased(4)] {
        run_and_validate(&trace, policy);
    }
}

#[test]
fn miss_latencies_stay_above_unloaded_floor() {
    // No measured miss can beat the local-clean unloaded minimum (minus
    // the probe portion, which the measurement excludes).
    let w = OceanLike {
        n: 66,
        grids: 2,
        procs: 16,
        iters: 2,
        col_stride: 2,
        reduction_points: 64,
    };
    let trace = w.generate_phases(3);
    let cfg = SystemConfig::table4(Clock::Mhz500);
    let floor_ns = cfg.ctrl_ns * 3 + cfg.mem_ns; // local clean without probe
    let mut sys = System::new(cfg, &trace, &|_g: &cost_sensitive_cache::sim::Geometry| {
        Box::new(cost_sensitive_cache::sim::Lru::new())
    });
    let res = sys.run();
    for n in &res.nodes {
        if n.l2_misses > 0 {
            assert!(
                n.avg_miss_latency_ns() >= floor_ns as f64,
                "node avg {} below physical floor {}",
                n.avg_miss_latency_ns(),
                floor_ns
            );
        }
    }
}

#[test]
fn total_refs_are_policy_independent() {
    let w = OceanLike {
        n: 66,
        grids: 2,
        procs: 16,
        iters: 2,
        col_stride: 2,
        reduction_points: 64,
    };
    let trace = w.generate_phases(3);
    let refs_of = |policy: PolicyKind| {
        let cfg = SystemConfig::table4(Clock::Mhz500);
        let mut sys = System::new(
            cfg,
            &trace,
            &move |g: &cost_sensitive_cache::sim::Geometry| policy.build(g),
        );
        sys.run().nodes.iter().map(|n| n.refs).sum::<u64>()
    };
    let base = refs_of(PolicyKind::Lru);
    assert_eq!(base, trace.total_refs() as u64);
    for policy in [PolicyKind::Gd, PolicyKind::Dcl] {
        assert_eq!(refs_of(policy), base, "{policy}");
    }
}

#[test]
fn table3_diagonal_dominates_under_lru() {
    // The prediction premise (Section 4.1): most consecutive misses to a
    // block repeat the previous latency class.
    let w = OceanLike {
        n: 130,
        grids: 4,
        procs: 16,
        iters: 4,
        col_stride: 2,
        reduction_points: 256,
    };
    let trace = w.generate_phases(11);
    let cfg = SystemConfig::table4(Clock::Mhz500);
    let mut sys = System::new(cfg, &trace, &|_g: &cost_sensitive_cache::sim::Geometry| {
        Box::new(cost_sensitive_cache::sim::Lru::new())
    });
    let res = sys.run();
    assert!(res.table3.total_pairs() > 1000);
    assert!(
        res.table3.same_latency_pct() > 55.0,
        "same-latency fraction too low: {:.1}%",
        res.table3.same_latency_pct()
    );
}
