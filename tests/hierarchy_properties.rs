//! Property tests of the two-level hierarchy and the offline oracles
//! against the on-line policies (added post-initial-review).

use cost_sensitive_cache::policies::csopt::{simulate_csopt, CsoptLimits};
use cost_sensitive_cache::policies::{Acl, Bcl, Dcl, GreedyDual, TraceEvent};
use cost_sensitive_cache::sim::{
    AccessType, BlockAddr, Cache, Cost, Geometry, InvalidateKind, Lru, ReplacementPolicy,
    TwoLevel,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    Read(u64),
    Write(u64),
    Invalidate(u64),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let s = prop_oneof![
        4 => (0u64..24).prop_map(Step::Read),
        2 => (0u64..24).prop_map(Step::Write),
        1 => (0u64..24).prop_map(Step::Invalidate),
    ];
    prop::collection::vec(s, 1..250)
}

fn cost_of(b: u64) -> Cost {
    if b % 3 == 0 {
        Cost(9)
    } else {
        Cost(1)
    }
}

proptest! {
    /// CSOPT is a true lower bound on the aggregate cost of every on-line
    /// policy (the defining property of the offline optimum).
    #[test]
    fn csopt_lower_bounds_every_online_policy(script in steps()) {
        let geom = Geometry::new(512, 64, 4); // 2 sets x 4 ways
        let mut events = Vec::new();
        for st in &script {
            match *st {
                Step::Read(b) | Step::Write(b) => {
                    events.push(TraceEvent::Access { block: BlockAddr(b), cost: cost_of(b) });
                }
                Step::Invalidate(b) => {
                    events.push(TraceEvent::Invalidate { block: BlockAddr(b) });
                }
            }
        }
        let opt = simulate_csopt(&geom, &events, CsoptLimits::default())
            .expect("24 blocks / 4 ways stays tractable");

        fn run<P: ReplacementPolicy>(geom: Geometry, policy: P, script: &[Step]) -> Cost {
            let mut c = Cache::new(geom, policy);
            for st in script {
                match *st {
                    Step::Read(b) => {
                        c.access(BlockAddr(b), AccessType::Read, cost_of(b));
                    }
                    Step::Write(b) => {
                        c.access(BlockAddr(b), AccessType::Write, cost_of(b));
                    }
                    Step::Invalidate(b) => {
                        c.invalidate(BlockAddr(b), InvalidateKind::Coherence);
                    }
                }
            }
            c.stats().aggregate_cost
        }

        for (name, cost) in [
            ("LRU", run(geom, Lru::new(), &script)),
            ("GD", run(geom, GreedyDual::new(&geom), &script)),
            ("BCL", run(geom, Bcl::new(&geom), &script)),
            ("DCL", run(geom, Dcl::new(&geom), &script)),
            ("ACL", run(geom, Acl::new(&geom), &script)),
        ] {
            prop_assert!(
                opt.aggregate_cost <= cost,
                "CSOPT {} must lower-bound {} {}", opt.aggregate_cost, name, cost
            );
        }
    }

    /// The L1 filter never changes L2 *correctness*: the hierarchy and a
    /// bare L2 agree on which accesses are L2-visible misses... more
    /// precisely, inclusion holds at every step and hierarchy hit counts
    /// are self-consistent.
    #[test]
    fn hierarchy_inclusion_holds_under_arbitrary_scripts(script in steps()) {
        let l1 = Geometry::direct_mapped(256, 64); // 4 sets
        let l2 = Geometry::new(1024, 64, 4); // 4 sets x 4 ways
        let mut h = TwoLevel::new(l1, l2, Lru::new());
        for st in &script {
            match *st {
                Step::Read(b) => {
                    h.access(BlockAddr(b), AccessType::Read, cost_of(b));
                }
                Step::Write(b) => {
                    h.access(BlockAddr(b), AccessType::Write, cost_of(b));
                }
                Step::Invalidate(b) => h.invalidate(BlockAddr(b)),
            }
            for blk in h.l1().resident_blocks() {
                prop_assert!(h.l2().contains(blk), "L1 block {blk} missing from L2");
            }
        }
        let s1 = h.l1().stats();
        prop_assert_eq!(s1.hits + s1.misses, s1.accesses);
    }

    /// An L1 hit must never reach the L2: L2 accesses equal L1 misses.
    #[test]
    fn l2_sees_exactly_the_l1_miss_stream(script in steps()) {
        let l1 = Geometry::direct_mapped(256, 64);
        let l2 = Geometry::new(1024, 64, 4);
        let mut h = TwoLevel::new(l1, l2, Lru::new());
        for st in &script {
            match *st {
                Step::Read(b) => {
                    h.access(BlockAddr(b), AccessType::Read, Cost(1));
                }
                Step::Write(b) => {
                    h.access(BlockAddr(b), AccessType::Write, Cost(1));
                }
                Step::Invalidate(b) => h.invalidate(BlockAddr(b)),
            }
        }
        prop_assert_eq!(h.l2().stats().accesses, h.l1().stats().misses);
    }
}
