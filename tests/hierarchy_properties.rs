//! Randomized tests (seeded, dependency-free) of the two-level hierarchy
//! and the offline oracles against the on-line policies.
//!
//! Scripts come from the internal [`SplitMix64`] generator with fixed
//! seeds, so any failure reproduces exactly.

use cost_sensitive_cache::policies::csopt::{simulate_csopt, CsoptLimits};
use cost_sensitive_cache::policies::{Acl, Bcl, Dcl, GreedyDual, TraceEvent};
use cost_sensitive_cache::sim::{
    AccessType, BlockAddr, Cache, Cost, Geometry, InvalidateKind, Lru, ReplacementPolicy, TwoLevel,
};
use cost_sensitive_cache::trace::rng::SplitMix64;

const CASES: u64 = 32;
const SEED: u64 = 0x1E12_AC4E;

#[derive(Debug, Clone, Copy)]
enum Step {
    Read(u64),
    Write(u64),
    Invalidate(u64),
}

/// Reads, writes and invalidations over 24 blocks, weighted 4:2:1, up to
/// 250 steps.
fn random_script(case: u64) -> Vec<Step> {
    let mut rng = SplitMix64::new(SEED ^ case.wrapping_mul(0xA5A5_1234));
    let len = 1 + rng.below(250) as usize;
    (0..len)
        .map(|_| {
            let b = rng.below(24);
            match rng.below(7) {
                0..=3 => Step::Read(b),
                4..=5 => Step::Write(b),
                _ => Step::Invalidate(b),
            }
        })
        .collect()
}

fn cost_of(b: u64) -> Cost {
    if b.is_multiple_of(3) {
        Cost(9)
    } else {
        Cost(1)
    }
}

/// CSOPT is a true lower bound on the aggregate cost of every on-line
/// policy (the defining property of the offline optimum).
#[test]
fn csopt_lower_bounds_every_online_policy() {
    for case in 0..CASES {
        let script = random_script(case);
        let geom = Geometry::new(512, 64, 4); // 2 sets x 4 ways
        let mut events = Vec::new();
        for st in &script {
            match *st {
                Step::Read(b) | Step::Write(b) => {
                    events.push(TraceEvent::Access {
                        block: BlockAddr(b),
                        cost: cost_of(b),
                    });
                }
                Step::Invalidate(b) => {
                    events.push(TraceEvent::Invalidate {
                        block: BlockAddr(b),
                    });
                }
            }
        }
        let opt = simulate_csopt(&geom, &events, CsoptLimits::default())
            .expect("24 blocks / 4 ways stays tractable");

        fn run<P: ReplacementPolicy>(geom: Geometry, policy: P, script: &[Step]) -> Cost {
            let mut c = Cache::new(geom, policy);
            for st in script {
                match *st {
                    Step::Read(b) => {
                        c.access(BlockAddr(b), AccessType::Read, cost_of(b));
                    }
                    Step::Write(b) => {
                        c.access(BlockAddr(b), AccessType::Write, cost_of(b));
                    }
                    Step::Invalidate(b) => {
                        c.invalidate(BlockAddr(b), InvalidateKind::Coherence);
                    }
                }
            }
            c.stats().aggregate_cost
        }

        for (name, cost) in [
            ("LRU", run(geom, Lru::new(), &script)),
            ("GD", run(geom, GreedyDual::new(&geom), &script)),
            ("BCL", run(geom, Bcl::new(&geom), &script)),
            ("DCL", run(geom, Dcl::new(&geom), &script)),
            ("ACL", run(geom, Acl::new(&geom), &script)),
        ] {
            assert!(
                opt.aggregate_cost <= cost,
                "CSOPT {} must lower-bound {name} {cost} in case {case}",
                opt.aggregate_cost,
            );
        }
    }
}

/// Inclusion holds at every step and hierarchy hit counts are
/// self-consistent, under arbitrary scripts.
#[test]
fn hierarchy_inclusion_holds_under_arbitrary_scripts() {
    for case in 0..CASES {
        let script = random_script(case);
        let l1 = Geometry::direct_mapped(256, 64); // 4 sets
        let l2 = Geometry::new(1024, 64, 4); // 4 sets x 4 ways
        let mut h = TwoLevel::new(l1, l2, Lru::new());
        for st in &script {
            match *st {
                Step::Read(b) => {
                    h.access(BlockAddr(b), AccessType::Read, cost_of(b));
                }
                Step::Write(b) => {
                    h.access(BlockAddr(b), AccessType::Write, cost_of(b));
                }
                Step::Invalidate(b) => h.invalidate(BlockAddr(b)),
            }
            for blk in h.l1().resident_blocks() {
                assert!(
                    h.l2().contains(blk),
                    "L1 block {blk} missing from L2 in case {case}"
                );
            }
        }
        let s1 = h.l1().stats();
        assert_eq!(s1.hits + s1.misses, s1.accesses);
    }
}

/// An L1 hit must never reach the L2: L2 accesses equal L1 misses.
#[test]
fn l2_sees_exactly_the_l1_miss_stream() {
    for case in 0..CASES {
        let script = random_script(case);
        let l1 = Geometry::direct_mapped(256, 64);
        let l2 = Geometry::new(1024, 64, 4);
        let mut h = TwoLevel::new(l1, l2, Lru::new());
        for st in &script {
            match *st {
                Step::Read(b) => {
                    h.access(BlockAddr(b), AccessType::Read, Cost(1));
                }
                Step::Write(b) => {
                    h.access(BlockAddr(b), AccessType::Write, Cost(1));
                }
                Step::Invalidate(b) => h.invalidate(BlockAddr(b)),
            }
        }
        assert_eq!(
            h.l2().stats().accesses,
            h.l1().stats().misses,
            "case {case}"
        );
    }
}
