//! Execution-driven experiments (Section 4): Table 3 and Table 5.

use crate::policy_kind::PolicyKind;
use mem_trace::workloads::{BarnesLike, FftLike, LuLike, OceanLike, RadixLike, RaytraceLike};
use mem_trace::{PhasedTrace, Workload};
use numa_sim::{Clock, SimResult, System, SystemConfig, Table3Matrix};

/// Seed for NUMA workload generation.
pub const NUMA_SEED: u64 = 411;

/// A prepared execution-driven benchmark.
pub struct NumaBenchmark {
    /// Workload name.
    pub name: String,
    /// Barrier-phased per-processor streams.
    pub trace: PhasedTrace,
}

impl std::fmt::Debug for NumaBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaBenchmark")
            .field("name", &self.name)
            .field("refs", &self.trace.total_refs())
            .finish()
    }
}

/// The Section 4.2 suite at RSIM scale (reduced problem sizes, 16 procs).
#[must_use]
pub fn rsim_suite() -> Vec<NumaBenchmark> {
    suite_of(vec![
        Box::new(BarnesLike::rsim_scale()),
        Box::new(LuLike::rsim_scale()),
        Box::new(OceanLike::rsim_scale()),
        Box::new(RaytraceLike::rsim_scale()),
    ])
}

/// The rsim suite extended with the footnote-2 kernels (FFT and Radix).
#[must_use]
pub fn rsim_suite_extended() -> Vec<NumaBenchmark> {
    let mut suite = rsim_suite();
    suite.extend(suite_of(vec![
        Box::new(FftLike::rsim_scale()),
        Box::new(RadixLike::rsim_scale()),
    ]));
    suite
}

fn suite_of(workloads: Vec<Box<dyn Workload>>) -> Vec<NumaBenchmark> {
    workloads
        .into_iter()
        .map(|w| NumaBenchmark {
            name: w.name().to_owned(),
            trace: w.generate_phases(NUMA_SEED),
        })
        .collect()
}

/// Runs one benchmark on the Table 4 machine with the given policy.
#[must_use]
pub fn run_numa(trace: &PhasedTrace, clock: Clock, policy: PolicyKind) -> SimResult {
    run_numa_cfg(SystemConfig::table4(clock), trace, policy)
}

/// Runs one benchmark under an explicit machine configuration.
#[must_use]
pub fn run_numa_cfg(cfg: SystemConfig, trace: &PhasedTrace, policy: PolicyKind) -> SimResult {
    let mut sys = System::new(cfg, trace, &move |g: &cache_sim::Geometry| policy.build(g));
    sys.run()
}

/// One cell of Table 5: execution-time reduction over LRU, percent.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Cell {
    /// Benchmark name.
    pub benchmark: String,
    /// Processor clock.
    pub clock: Clock,
    /// Policy measured.
    pub policy: PolicyKind,
    /// Execution time, µs.
    pub exec_us: f64,
    /// Reduction relative to LRU, percent (positive = faster).
    pub reduction_pct: f64,
}

/// The Table 5 policy set: the four cost-sensitive policies plus the
/// 4-bit-aliased ETD variants of DCL and ACL (Section 4.3).
pub const TABLE5_POLICIES: [PolicyKind; 6] = [
    PolicyKind::Gd,
    PolicyKind::Bcl,
    PolicyKind::Dcl,
    PolicyKind::Acl,
    PolicyKind::DclAliased(4),
    PolicyKind::AclAliased(4),
];

/// Computes the Table 5 grid over `benchmarks`, `clocks` and `policies`,
/// spreading runs over `threads` OS threads.
#[must_use]
pub fn table5(
    benchmarks: &[NumaBenchmark],
    clocks: &[Clock],
    policies: &[PolicyKind],
    threads: usize,
) -> Vec<Table5Cell> {
    // Baselines first (one LRU run per benchmark and clock).
    let mut base_tasks = Vec::new();
    for (bi, _) in benchmarks.iter().enumerate() {
        for &clock in clocks {
            base_tasks.push((bi, clock));
        }
    }
    let baselines = crate::experiments::run_tasks(threads, &base_tasks, |&(bi, clock)| {
        run_numa(&benchmarks[bi].trace, clock, PolicyKind::Lru).exec_time_ps
    });
    let baseline_of = |bi: usize, clock: Clock| {
        base_tasks
            .iter()
            .position(|&(b, c)| b == bi && c == clock)
            .map(|i| baselines[i])
            .expect("baseline computed")
    };

    // Benchmark-innermost ordering spreads the heavyweight benchmarks
    // across run_tasks's contiguous thread chunks.
    let mut tasks = Vec::new();
    for &clock in clocks {
        for &policy in policies {
            for (bi, _) in benchmarks.iter().enumerate() {
                tasks.push((bi, clock, policy));
            }
        }
    }
    crate::experiments::run_tasks(threads, &tasks, |&(bi, clock, policy)| {
        let res = run_numa(&benchmarks[bi].trace, clock, policy);
        let base = baseline_of(bi, clock);
        Table5Cell {
            benchmark: benchmarks[bi].name.clone(),
            clock,
            policy,
            exec_us: res.exec_time_ps as f64 / 1e6,
            reduction_pct: cache_sim::relative_savings_pct(
                cache_sim::Cost(base),
                cache_sim::Cost(res.exec_time_ps),
            ),
        }
    })
}

/// Aggregates the Table 3 consecutive-miss matrix across the suite under
/// LRU replacement (the paper computes it "in the normal execution with
/// LRU replacement").
#[must_use]
pub fn table3(benchmarks: &[NumaBenchmark], clock: Clock, threads: usize) -> Table3Matrix {
    table3_with_hints(benchmarks, clock, threads, true)
}

/// As [`table3`], selecting whether the protocol uses replacement hints
/// (the paper's Table 3 is measured on the protocol *without* hints).
#[must_use]
pub fn table3_with_hints(
    benchmarks: &[NumaBenchmark],
    clock: Clock,
    threads: usize,
    hints: bool,
) -> Table3Matrix {
    let idx: Vec<usize> = (0..benchmarks.len()).collect();
    let per_bench = crate::experiments::run_tasks(threads, &idx, |&bi| {
        let mut cfg = SystemConfig::table4(clock);
        cfg.replacement_hints = hints;
        run_numa_cfg(cfg, &benchmarks[bi].trace, PolicyKind::Lru).table3
    });
    let mut merged = Table3Matrix::new();
    for m in &per_bench {
        merged.merge(m);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_benchmark() -> NumaBenchmark {
        let w = OceanLike {
            n: 66,
            grids: 2,
            procs: 16,
            iters: 2,
            col_stride: 2,
            reduction_points: 64,
        };
        NumaBenchmark {
            name: "tiny-ocean".into(),
            trace: w.generate_phases(3),
        }
    }

    #[test]
    fn table5_reduction_is_zero_for_lru_vs_lru() {
        let b = vec![tiny_benchmark()];
        let cells = table5(&b, &[Clock::Mhz500], &[PolicyKind::Lru], 2);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].reduction_pct.abs() < 1e-9);
    }

    #[test]
    fn table3_has_pairs_on_shared_workload() {
        let b = vec![tiny_benchmark()];
        let m = table3(&b, Clock::Mhz500, 1);
        assert!(m.total_pairs() > 0);
        // A meaningful fraction repeats latencies even on this tiny,
        // sharing-heavy configuration; the full rsim suite lands near the
        // paper's ~93 % (see EXPERIMENTS.md).
        assert!(m.same_latency_pct() > 15.0, "{}", m.same_latency_pct());
    }
}
