//! Assembly of the paper's trace-driven experiments (Table 1, Figure 3,
//! Table 2) from the substrate crates. The `csr-bench` binary formats the
//! structures produced here; integration tests assert their shapes.

use crate::policy_kind::PolicyKind;
use crate::runner::{run_sampled, LruMissProfile, TraceSimConfig};
use cache_sim::{relative_savings_pct, CostPair};
use mem_trace::cost_map::{FirstTouchCostMap, RandomCostMap};
use mem_trace::workloads::{BarnesLike, LuLike, OceanLike, RaytraceLike};
use mem_trace::{
    characterize, representative_processor, FirstTouchPlacement, ProcId, SampledTrace,
    TraceCharacteristics, Workload,
};
use std::fmt;

/// A cost ratio `r` of the two-static-cost experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostRatio {
    /// Low cost 1, high cost `r`.
    Finite(u64),
    /// Low cost 0, high cost 1 (Section 3.1's infinite ratio).
    Infinite,
}

impl CostRatio {
    /// The ratios swept in Figure 3.
    pub const FIG3: [CostRatio; 6] = [
        CostRatio::Finite(2),
        CostRatio::Finite(4),
        CostRatio::Finite(8),
        CostRatio::Finite(16),
        CostRatio::Finite(32),
        CostRatio::Infinite,
    ];

    /// The ratios swept in Table 2.
    pub const TABLE2: [CostRatio; 5] = [
        CostRatio::Finite(2),
        CostRatio::Finite(4),
        CostRatio::Finite(8),
        CostRatio::Finite(16),
        CostRatio::Finite(32),
    ];

    /// The corresponding low/high cost pair.
    #[must_use]
    pub fn pair(self) -> CostPair {
        match self {
            CostRatio::Finite(r) => CostPair::ratio(r),
            CostRatio::Infinite => CostPair::infinite_ratio(),
        }
    }
}

impl fmt::Display for CostRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostRatio::Finite(r) => write!(f, "r={r}"),
            CostRatio::Infinite => write!(f, "r=inf"),
        }
    }
}

/// Which problem sizes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for quick runs (default; preserves all shapes).
    Quick,
    /// The paper's Table-1 problem sizes (slow).
    Paper,
}

/// A prepared benchmark: its sampled trace, placement and characteristics.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Workload name ("barnes", "lu", "ocean", "raytrace").
    pub name: String,
    /// The sample processor whose cache is simulated.
    pub sample: ProcId,
    /// The sample-processor trace view.
    pub sampled: SampledTrace,
    /// Per-block first-touch placement of the full trace.
    pub placement: FirstTouchPlacement,
    /// Table-1 characteristics.
    pub characteristics: TraceCharacteristics,
}

/// Seed used for all benchmark generation (experiments are reproducible).
pub const BENCH_SEED: u64 = 2003;

/// Generates and samples the four-benchmark suite.
#[must_use]
pub fn build_benchmarks(scale: Scale) -> Vec<Benchmark> {
    let workloads: Vec<Box<dyn Workload>> = match scale {
        Scale::Quick => vec![
            Box::new(BarnesLike::default()),
            Box::new(LuLike::default()),
            Box::new(OceanLike::default()),
            Box::new(RaytraceLike::default()),
        ],
        Scale::Paper => vec![
            Box::new(BarnesLike::paper_scale()),
            Box::new(LuLike::paper_scale()),
            Box::new(OceanLike::paper_scale()),
            Box::new(RaytraceLike::paper_scale()),
        ],
    };
    workloads
        .into_iter()
        .map(|w| {
            let trace = w.generate(BENCH_SEED);
            let sample = representative_processor(&trace);
            let characteristics = characterize(w.name(), &w.problem_size(), &trace, sample);
            let placement = FirstTouchPlacement::from_trace(64, &trace);
            let sampled = SampledTrace::from_trace(&trace, sample);
            Benchmark {
                name: w.name().to_owned(),
                sample,
                sampled,
                placement,
                characteristics,
            }
        })
        .collect()
}

/// One cell of the Figure 3 grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy measured.
    pub policy: PolicyKind,
    /// Cost ratio.
    pub ratio: CostRatio,
    /// High-cost access fraction of the random mapping.
    pub haf: f64,
    /// Relative cost savings over LRU, percent.
    pub savings_pct: f64,
}

/// The HAF sweep of Figure 3: 0, 0.01, 0.05, then 0.1 … 1.0 in steps of 0.1.
#[must_use]
pub fn fig3_hafs() -> Vec<f64> {
    let mut hafs = vec![0.0, 0.01, 0.05];
    for i in 1..=10 {
        hafs.push(i as f64 / 10.0);
    }
    hafs
}

/// Computes the Figure 3 grid: relative savings of each policy over LRU
/// under random cost mapping, for every (benchmark, ratio, HAF) triple.
/// Work is spread over `threads` OS threads.
#[must_use]
pub fn fig3_grid(
    benchmarks: &[Benchmark],
    hafs: &[f64],
    ratios: &[CostRatio],
    policies: &[PolicyKind],
    cfg: TraceSimConfig,
    threads: usize,
) -> Vec<SavingsPoint> {
    // One LRU profile per benchmark covers every cost map.
    let profiles: Vec<LruMissProfile> = benchmarks
        .iter()
        .map(|b| LruMissProfile::collect(&b.sampled, cfg))
        .collect();

    let mut tasks: Vec<(usize, CostRatio, f64, PolicyKind)> = Vec::new();
    for (bi, _) in benchmarks.iter().enumerate() {
        for &ratio in ratios {
            for &haf in hafs {
                for &policy in policies {
                    tasks.push((bi, ratio, haf, policy));
                }
            }
        }
    }

    run_tasks(threads, &tasks, |&(bi, ratio, haf, policy)| {
        let bench = &benchmarks[bi];
        let map = RandomCostMap::new(haf, ratio.pair(), BENCH_SEED ^ 0x5EED);
        let baseline = profiles[bi].aggregate_cost(&map);
        let run = run_sampled(&bench.sampled, &map, policy, cfg);
        SavingsPoint {
            benchmark: bench.name.clone(),
            policy,
            ratio,
            haf,
            savings_pct: relative_savings_pct(baseline, run.aggregate_cost()),
        }
    })
}

/// One row cell of Table 2 (first-touch cost mapping).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Cell {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy measured.
    pub policy: PolicyKind,
    /// Cost ratio.
    pub ratio: CostRatio,
    /// Relative cost savings over LRU, percent.
    pub savings_pct: f64,
}

/// Computes Table 2: savings under first-touch cost mapping (remote blocks
/// are high-cost).
#[must_use]
pub fn table2(
    benchmarks: &[Benchmark],
    ratios: &[CostRatio],
    policies: &[PolicyKind],
    cfg: TraceSimConfig,
    threads: usize,
) -> Vec<Table2Cell> {
    let profiles: Vec<LruMissProfile> = benchmarks
        .iter()
        .map(|b| LruMissProfile::collect(&b.sampled, cfg))
        .collect();

    let mut tasks: Vec<(usize, CostRatio, PolicyKind)> = Vec::new();
    for (bi, _) in benchmarks.iter().enumerate() {
        for &ratio in ratios {
            for &policy in policies {
                tasks.push((bi, ratio, policy));
            }
        }
    }

    run_tasks(threads, &tasks, |&(bi, ratio, policy)| {
        let bench = &benchmarks[bi];
        let map = FirstTouchCostMap::new(
            bench.placement.clone(),
            bench.sample,
            ratio.pair(),
            cfg.l2.block_bytes(),
        );
        let baseline = profiles[bi].aggregate_cost(&map);
        let run = run_sampled(&bench.sampled, &map, policy, cfg);
        Table2Cell {
            benchmark: bench.name.clone(),
            policy,
            ratio,
            savings_pct: relative_savings_pct(baseline, run.aggregate_cost()),
        }
    })
}

/// Maps `tasks` to results over `threads` OS threads, preserving order —
/// the parallel-map building block behind every experiment sweep.
pub fn run_tasks<T: Sync, R: Send>(
    threads: usize,
    tasks: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1);
    if threads == 1 || tasks.len() <= 1 {
        return tasks.iter().map(&f).collect();
    }
    let chunk = tasks.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(tasks.len(), || None);
    let slots: Vec<&mut [Option<R>]> = out.chunks_mut(chunk).collect();
    std::thread::scope(|scope| {
        for (i, slot) in slots.into_iter().enumerate() {
            let f = &f;
            let task_chunk = &tasks[i * chunk..(i * chunk + slot.len())];
            scope.spawn(move || {
                for (s, t) in slot.iter_mut().zip(task_chunk) {
                    *s = Some(f(t));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("all task slots filled"))
        .collect()
}

/// A sensible default worker count.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::workloads::synthetic::UniformRandom;

    #[test]
    fn run_tasks_preserves_order() {
        let tasks: Vec<u64> = (0..37).collect();
        let got = run_tasks(4, &tasks, |&t| t * 2);
        let want: Vec<u64> = tasks.iter().map(|&t| t * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fig3_hafs_matches_paper_grid() {
        let hafs = fig3_hafs();
        assert_eq!(hafs.len(), 13);
        assert_eq!(hafs[0], 0.0);
        assert_eq!(hafs[1], 0.01);
        assert_eq!(hafs[2], 0.05);
        assert_eq!(*hafs.last().expect("nonempty"), 1.0);
    }

    #[test]
    fn fig3_grid_small_smoke() {
        // A miniature grid over a synthetic benchmark exercises the whole
        // pipeline quickly.
        let w = UniformRandom {
            refs: 40_000,
            blocks: 2048,
            procs: 2,
            write_fraction: 0.3,
        };
        let trace = w.generate(BENCH_SEED);
        let sample = ProcId(0);
        let bench = Benchmark {
            name: "uniform".into(),
            sample,
            sampled: SampledTrace::from_trace(&trace, sample),
            placement: FirstTouchPlacement::from_trace(64, &trace),
            characteristics: characterize("uniform", "small", &trace, sample),
        };
        let pts = fig3_grid(
            &[bench],
            &[0.2],
            &[CostRatio::Finite(8)],
            &[PolicyKind::Dcl],
            TraceSimConfig::paper_basic(),
            2,
        );
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert!(
            p.savings_pct > 0.0,
            "DCL should save at the sweet spot: {}",
            p.savings_pct
        );
        assert!(p.savings_pct < 100.0);
    }
}
