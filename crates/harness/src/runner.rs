//! The trace-driven simulation loop of Section 3.1: an L1 filter in front
//! of the L2 under study, fed with one sample processor's references plus
//! foreign writes (invalidations), charging each L2 miss its mapped cost.

use crate::policy_kind::{PolicyKind, TraceObserver};
use cache_sim::{CacheStats, Cost, Geometry, TwoLevel};
use mem_trace::cost_map::CostMap;
use mem_trace::sampled::{SampledEvent, SampledTrace};
use std::collections::HashMap;

/// Cache geometry of a trace-driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSimConfig {
    /// L1 filter geometry.
    pub l1: Geometry,
    /// L2 geometry (the cache whose policy is under study).
    pub l2: Geometry,
}

impl TraceSimConfig {
    /// The paper's basic configuration (Section 3.1): 4 KB direct-mapped L1
    /// and 16 KB 4-way L2, 64-byte blocks.
    #[must_use]
    pub fn paper_basic() -> Self {
        TraceSimConfig {
            l1: Geometry::direct_mapped(4 * 1024, 64),
            l2: Geometry::new(16 * 1024, 64, 4),
        }
    }

    /// Same L1, but an L2 with the given size and associativity.
    #[must_use]
    pub fn with_l2(l2_bytes: u64, assoc: usize) -> Self {
        TraceSimConfig {
            l1: Geometry::direct_mapped(4 * 1024, 64),
            l2: Geometry::new(l2_bytes, 64, assoc),
        }
    }
}

impl Default for TraceSimConfig {
    fn default() -> Self {
        TraceSimConfig::paper_basic()
    }
}

/// The outcome of one trace-driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Which policy ran.
    pub policy: PolicyKind,
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics; `l2.aggregate_cost` is the paper's `C(X)`.
    pub l2: CacheStats,
}

impl RunResult {
    /// The aggregate cost of the run.
    #[must_use]
    pub fn aggregate_cost(&self) -> Cost {
        self.l2.aggregate_cost
    }
}

/// Runs `policy` over a sampled trace under `costs`.
#[must_use]
pub fn run_sampled(
    sampled: &SampledTrace,
    costs: &dyn CostMap,
    policy: PolicyKind,
    cfg: TraceSimConfig,
) -> RunResult {
    let (l1, l2) = run_sampled_policy(sampled, costs, policy.build(&cfg.l2), cfg);
    RunResult { policy, l1, l2 }
}

/// Runs `policy` over a sampled trace with a decision observer attached.
///
/// Statistically identical to [`run_sampled`] — the observer only watches,
/// it never changes a replacement decision — but every hit, miss,
/// eviction, reservation and depreciation the policy makes is also
/// delivered to `obs`, so a table or figure computed from the returned
/// [`RunResult`] can carry a replayable decision trace as provenance.
/// The cost-oblivious baselines emit no events (see
/// [`PolicyKind::build_observed`]).
#[must_use]
pub fn run_sampled_observed(
    sampled: &SampledTrace,
    costs: &dyn CostMap,
    policy: PolicyKind,
    cfg: TraceSimConfig,
    obs: TraceObserver,
) -> RunResult {
    let (l1, l2) = run_sampled_policy(sampled, costs, policy.build_observed(&cfg.l2, obs), cfg);
    RunResult { policy, l1, l2 }
}

/// Runs an explicit policy *instance* over a sampled trace (the ablation
/// benches need hand-configured policies that [`PolicyKind`] cannot name).
/// Returns the L1 and L2 statistics.
#[must_use]
pub fn run_sampled_policy<P: cache_sim::ReplacementPolicy>(
    sampled: &SampledTrace,
    costs: &dyn CostMap,
    policy: P,
    cfg: TraceSimConfig,
) -> (CacheStats, CacheStats) {
    let block_bytes = cfg.l2.block_bytes();
    let mut h = TwoLevel::new(cfg.l1, cfg.l2, policy);
    for ev in sampled.events() {
        match *ev {
            SampledEvent::Own { addr, op } => {
                let block = addr.block(block_bytes);
                h.access(block, op, costs.cost_of(block));
            }
            SampledEvent::ForeignWrite { addr } => {
                h.invalidate(addr.block(block_bytes));
            }
        }
    }
    (*h.l1().stats(), *h.l2().stats())
}

/// The per-block L2 miss counts of an LRU run.
///
/// LRU's replacement decisions are cost-independent, so a single LRU run
/// per trace yields the baseline aggregate cost for *every* static cost
/// map: `C_LRU = Σ_b misses(b) · cost(b)`. This collapses the baseline
/// side of the Figure 3 sweep from hundreds of runs to one per benchmark.
#[derive(Debug, Clone)]
pub struct LruMissProfile {
    miss_counts: HashMap<u64, u64>,
    stats: CacheStats,
}

impl LruMissProfile {
    /// Runs LRU once over the sampled trace and records per-block misses.
    #[must_use]
    pub fn collect(sampled: &SampledTrace, cfg: TraceSimConfig) -> Self {
        let block_bytes = cfg.l2.block_bytes();
        let mut h = TwoLevel::new(cfg.l1, cfg.l2, cache_sim::Lru::new());
        let mut miss_counts: HashMap<u64, u64> = HashMap::new();
        for ev in sampled.events() {
            match *ev {
                SampledEvent::Own { addr, op } => {
                    let block = addr.block(block_bytes);
                    let out = h.access(block, op, Cost::ZERO);
                    if out.l2_hit == Some(false) {
                        *miss_counts.entry(block.0).or_insert(0) += 1;
                    }
                }
                SampledEvent::ForeignWrite { addr } => {
                    h.invalidate(addr.block(block_bytes));
                }
            }
        }
        LruMissProfile {
            miss_counts,
            stats: *h.l2().stats(),
        }
    }

    /// The LRU aggregate cost under `costs`.
    #[must_use]
    pub fn aggregate_cost(&self, costs: &dyn CostMap) -> Cost {
        self.miss_counts
            .iter()
            .map(|(&block, &n)| Cost(costs.cost_of(cache_sim::BlockAddr(block)).0 * n))
            .sum()
    }

    /// Total LRU misses (cost-map independent).
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.stats.misses
    }

    /// The LRU L2 statistics of the profiling run.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::CostPair;
    use mem_trace::cost_map::{RandomCostMap, UniformCostMap};
    use mem_trace::workloads::synthetic::UniformRandom;
    use mem_trace::{ProcId, Workload};

    fn sampled() -> SampledTrace {
        let w = UniformRandom {
            refs: 60_000,
            blocks: 2048,
            procs: 2,
            write_fraction: 0.3,
        };
        SampledTrace::from_trace(&w.generate(11), ProcId(0))
    }

    #[test]
    fn lru_profile_matches_direct_lru_run() {
        let s = sampled();
        let cfg = TraceSimConfig::paper_basic();
        let profile = LruMissProfile::collect(&s, cfg);
        for haf in [0.1, 0.5] {
            let map = RandomCostMap::new(haf, CostPair::ratio(8), 3);
            let direct = run_sampled(&s, &map, PolicyKind::Lru, cfg);
            assert_eq!(profile.aggregate_cost(&map), direct.aggregate_cost());
        }
    }

    #[test]
    fn uniform_costs_make_cost_sensitive_policies_match_lru() {
        // Invariant 1 of DESIGN.md: with uniform costs BCL/DCL/ACL replace
        // exactly like LRU, so miss counts and costs coincide.
        let s = sampled();
        let cfg = TraceSimConfig::paper_basic();
        let map = UniformCostMap(Cost(5));
        let lru = run_sampled(&s, &map, PolicyKind::Lru, cfg);
        for kind in [PolicyKind::Bcl, PolicyKind::Dcl, PolicyKind::Acl] {
            let r = run_sampled(&s, &map, kind, cfg);
            assert_eq!(r.l2.misses, lru.l2.misses, "{kind} misses differ from LRU");
            assert_eq!(
                r.aggregate_cost(),
                lru.aggregate_cost(),
                "{kind} cost differs"
            );
        }
    }

    #[test]
    fn cost_sensitive_policies_save_cost_on_random_map() {
        let s = sampled();
        let cfg = TraceSimConfig::paper_basic();
        let map = RandomCostMap::new(0.2, CostPair::ratio(16), 9);
        let lru = run_sampled(&s, &map, PolicyKind::Lru, cfg);
        let dcl = run_sampled(&s, &map, PolicyKind::Dcl, cfg);
        assert!(
            dcl.aggregate_cost() < lru.aggregate_cost(),
            "DCL ({}) must beat LRU ({}) at the sweet spot",
            dcl.aggregate_cost(),
            lru.aggregate_cost()
        );
    }

    #[test]
    fn observed_run_is_bit_identical_and_counts_match_stats() {
        use csr_obs::CountingObserver;
        use std::sync::Arc;
        let s = sampled();
        let cfg = TraceSimConfig::paper_basic();
        let map = RandomCostMap::new(0.2, CostPair::ratio(16), 9);
        for kind in PolicyKind::PAPER_SET {
            let plain = run_sampled(&s, &map, kind, cfg);
            let counting = Arc::new(CountingObserver::new());
            let observed = run_sampled_observed(&s, &map, kind, cfg, counting.clone());
            assert_eq!(
                plain, observed,
                "{kind}: observation must not perturb the run"
            );
            let counts = counting.counts();
            assert!(counts.evictions > 0, "{kind}: trace must evict");
            assert_eq!(counts.hits, observed.l2.hits, "{kind} hits");
            assert_eq!(counts.misses, observed.l2.misses, "{kind} misses");
            assert_eq!(counts.evictions, observed.l2.evictions, "{kind} evictions");
        }
    }

    #[test]
    fn baseline_policies_fall_back_silently() {
        use csr_obs::CountingObserver;
        use std::sync::Arc;
        let s = sampled();
        let cfg = TraceSimConfig::paper_basic();
        let map = UniformCostMap(Cost(1));
        for kind in [PolicyKind::Lru, PolicyKind::Fifo] {
            assert!(!kind.emits_events());
            let plain = run_sampled(&s, &map, kind, cfg);
            let counting = Arc::new(CountingObserver::new());
            let observed = run_sampled_observed(&s, &map, kind, cfg, counting.clone());
            assert_eq!(plain, observed);
            let counts = counting.counts();
            assert_eq!(counts.hits + counts.misses + counts.evictions, 0);
        }
    }

    #[test]
    fn foreign_writes_invalidate() {
        use cache_sim::AccessType;
        use mem_trace::{Trace, TraceRecord};
        let mut t = Trace::new(2);
        t.push(TraceRecord::read(ProcId(0), cache_sim::Addr(0)));
        t.push(TraceRecord::write(ProcId(1), cache_sim::Addr(0)));
        t.push(TraceRecord::read(ProcId(0), cache_sim::Addr(0)));
        let s = SampledTrace::from_trace(&t, ProcId(0));
        let cfg = TraceSimConfig::paper_basic();
        let r = run_sampled(&s, &UniformCostMap(Cost(1)), PolicyKind::Lru, cfg);
        assert_eq!(r.l2.misses, 2, "the foreign write must force a re-miss");
        let _ = AccessType::Read;
    }
}
