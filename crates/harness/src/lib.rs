//! # csr-harness
//!
//! Experiment machinery for the HPCA 2003 reproduction: uniform policy
//! construction ([`PolicyKind`]), the Section 3.1 trace-driven simulation
//! loop ([`runner`]), and assembly of the paper's trace-driven experiments
//! ([`experiments`]). The `csr-bench` crate's binaries format the data this
//! crate produces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod numa_exp;
pub mod policy_kind;
pub mod runner;

pub use experiments::{
    build_benchmarks, default_threads, fig3_grid, fig3_hafs, table2, Benchmark, CostRatio,
    SavingsPoint, Scale, Table2Cell,
};
pub use numa_exp::{
    rsim_suite, rsim_suite_extended, run_numa, NumaBenchmark, Table5Cell, TABLE5_POLICIES,
};
pub use policy_kind::{PolicyKind, TraceObserver};
pub use runner::{
    run_sampled, run_sampled_observed, run_sampled_policy, LruMissProfile, RunResult,
    TraceSimConfig,
};
