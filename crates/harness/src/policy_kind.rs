//! Uniform construction of replacement policies for experiment sweeps.

use cache_sim::{Fifo, Geometry, Lru, RandomEvict, ReplacementPolicy};
use csr::{Acl, Bcl, Camp, Dcl, Gdsf, GreedyDual, Lfuda, Observer, S3Fifo, Slru};
use std::fmt;
use std::sync::Arc;

/// A decision observer shareable across a run's sets (and across runs) —
/// what [`PolicyKind::build_observed`] attaches to the policy cores.
pub type TraceObserver = Arc<dyn Observer + Send + Sync>;

/// Every replacement policy the experiments can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used (the baseline).
    Lru,
    /// First-in first-out.
    Fifo,
    /// Uniform random victim.
    Random,
    /// GreedyDual (Section 2.1).
    Gd,
    /// Basic cost-sensitive LRU (Section 2.3).
    Bcl,
    /// Dynamic cost-sensitive LRU (Section 2.4).
    Dcl,
    /// DCL with `bits`-bit aliased ETD tags (Section 4.3 uses 4).
    DclAliased(u32),
    /// Adaptive cost-sensitive LRU (Section 2.5).
    Acl,
    /// ACL with `bits`-bit aliased ETD tags.
    AclAliased(u32),
    /// S3-FIFO (policy zoo: small/main/ghost FIFO queues).
    S3Fifo,
    /// Segmented LRU (policy zoo: probationary/protected segments).
    Slru,
    /// LFU with dynamic aging (policy zoo).
    Lfuda,
    /// GreedyDual-Size-Frequency (policy zoo, cost-aware).
    Gdsf,
    /// CAMP cost-adaptive multi-queue (policy zoo, cost-aware).
    Camp,
}

impl PolicyKind {
    /// The four cost-sensitive policies in the order the paper reports them.
    pub const PAPER_SET: [PolicyKind; 4] = [
        PolicyKind::Gd,
        PolicyKind::Bcl,
        PolicyKind::Dcl,
        PolicyKind::Acl,
    ];

    /// The policy-zoo additions: modern general-purpose policies run
    /// head-to-head against the paper's set.
    pub const ZOO_SET: [PolicyKind; 5] = [
        PolicyKind::S3Fifo,
        PolicyKind::Slru,
        PolicyKind::Lfuda,
        PolicyKind::Gdsf,
        PolicyKind::Camp,
    ];

    /// Builds a boxed policy instance for a cache of geometry `geom`.
    #[must_use]
    pub fn build(self, geom: &Geometry) -> Box<dyn ReplacementPolicy + Send> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Fifo => Box::new(Fifo::new(geom.num_sets())),
            PolicyKind::Random => Box::new(RandomEvict::new(0xC0FFEE)),
            PolicyKind::Gd => Box::new(GreedyDual::new(geom)),
            PolicyKind::Bcl => Box::new(Bcl::new(geom)),
            PolicyKind::Dcl => Box::new(Dcl::new(geom)),
            PolicyKind::DclAliased(bits) => Box::new(Dcl::with_aliased_tags(geom, bits)),
            PolicyKind::Acl => Box::new(Acl::new(geom)),
            PolicyKind::AclAliased(bits) => Box::new(Acl::with_aliased_tags(geom, bits)),
            PolicyKind::S3Fifo => Box::new(S3Fifo::new(geom)),
            PolicyKind::Slru => Box::new(Slru::new(geom)),
            PolicyKind::Lfuda => Box::new(Lfuda::new(geom)),
            PolicyKind::Gdsf => Box::new(Gdsf::new(geom)),
            PolicyKind::Camp => Box::new(Camp::new(geom)),
        }
    }

    /// Builds a boxed policy instance with a decision [`Observer`] attached.
    ///
    /// The cost-sensitive policies (GD, BCL, DCL, ACL and their aliased
    /// variants) emit hit/miss/evict/reserve/depreciate events to `obs`,
    /// giving every table and figure a replayable decision trace. The
    /// cost-oblivious baselines (LRU, FIFO, Random) come from `cache-sim`
    /// and have no observer support; for those this falls back to
    /// [`build`](Self::build) and `obs` sees no events.
    #[must_use]
    pub fn build_observed(
        self,
        geom: &Geometry,
        obs: TraceObserver,
    ) -> Box<dyn ReplacementPolicy + Send> {
        match self {
            PolicyKind::Lru | PolicyKind::Fifo | PolicyKind::Random => self.build(geom),
            PolicyKind::Gd => Box::new(GreedyDual::new(geom).with_observer(obs)),
            PolicyKind::Bcl => Box::new(Bcl::new(geom).with_observer(obs)),
            PolicyKind::Dcl => Box::new(Dcl::new(geom).with_observer(obs)),
            PolicyKind::DclAliased(bits) => {
                Box::new(Dcl::with_aliased_tags(geom, bits).with_observer(obs))
            }
            PolicyKind::Acl => Box::new(Acl::new(geom).with_observer(obs)),
            PolicyKind::AclAliased(bits) => {
                Box::new(Acl::with_aliased_tags(geom, bits).with_observer(obs))
            }
            PolicyKind::S3Fifo => Box::new(S3Fifo::new(geom).with_observer(obs)),
            PolicyKind::Slru => Box::new(Slru::new(geom).with_observer(obs)),
            PolicyKind::Lfuda => Box::new(Lfuda::new(geom).with_observer(obs)),
            PolicyKind::Gdsf => Box::new(Gdsf::new(geom).with_observer(obs)),
            PolicyKind::Camp => Box::new(Camp::new(geom).with_observer(obs)),
        }
    }

    /// Whether [`build_observed`](Self::build_observed) actually emits
    /// decision events for this policy (false for the `cache-sim`
    /// baselines, which ignore the observer).
    #[must_use]
    pub fn emits_events(self) -> bool {
        !matches!(
            self,
            PolicyKind::Lru | PolicyKind::Fifo | PolicyKind::Random
        )
    }

    /// Short label used in tables ("DCL alias" style).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            PolicyKind::Lru => "LRU".into(),
            PolicyKind::Fifo => "FIFO".into(),
            PolicyKind::Random => "Random".into(),
            PolicyKind::Gd => "GD".into(),
            PolicyKind::Bcl => "BCL".into(),
            PolicyKind::Dcl => "DCL".into(),
            PolicyKind::DclAliased(b) => format!("DCL alias{b}"),
            PolicyKind::Acl => "ACL".into(),
            PolicyKind::AclAliased(b) => format!("ACL alias{b}"),
            PolicyKind::S3Fifo => "S3-FIFO".into(),
            PolicyKind::Slru => "SLRU".into(),
            PolicyKind::Lfuda => "LFUDA".into(),
            PolicyKind::Gdsf => "GDSF".into(),
            PolicyKind::Camp => "CAMP".into(),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, BlockAddr, Cache, Cost};

    #[test]
    fn all_kinds_build_and_run() {
        let geom = Geometry::new(1024, 64, 4);
        let kinds = [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::Gd,
            PolicyKind::Bcl,
            PolicyKind::Dcl,
            PolicyKind::DclAliased(4),
            PolicyKind::Acl,
            PolicyKind::AclAliased(4),
            PolicyKind::S3Fifo,
            PolicyKind::Slru,
            PolicyKind::Lfuda,
            PolicyKind::Gdsf,
            PolicyKind::Camp,
        ];
        for kind in kinds {
            let mut cache = Cache::new(geom, kind.build(&geom));
            for b in 0..64u64 {
                cache.access(BlockAddr(b), AccessType::Read, Cost(1 + b % 4));
            }
            assert_eq!(cache.stats().accesses, 64, "{kind}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let kinds = [
            PolicyKind::Lru,
            PolicyKind::Gd,
            PolicyKind::Bcl,
            PolicyKind::Dcl,
            PolicyKind::DclAliased(4),
            PolicyKind::Acl,
            PolicyKind::AclAliased(4),
            PolicyKind::S3Fifo,
            PolicyKind::Slru,
            PolicyKind::Lfuda,
            PolicyKind::Gdsf,
            PolicyKind::Camp,
        ];
        let labels: std::collections::HashSet<String> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn zoo_set_builds_observed_and_emits() {
        let geom = Geometry::new(1024, 64, 4);
        for kind in PolicyKind::ZOO_SET {
            assert!(kind.emits_events(), "{kind}");
            let obs = Arc::new(csr_obs::CountingObserver::default());
            let mut cache = Cache::new(geom, kind.build_observed(&geom, obs.clone()));
            for b in 0..64u64 {
                cache.access(BlockAddr(b), AccessType::Read, Cost(1 + b % 4));
            }
            assert_eq!(obs.counts().misses, 64, "{kind}");
        }
    }
}
