//! The paper's own worked narratives, encoded as executable scenarios.
//! Each test cites the section whose prose it animates.

use cache_sim::{AccessType, BlockAddr, Cache, Cost, Geometry, InvalidateKind, SetIndex};
use csr::{Acl, Bcl, Dcl, GreedyDual};

fn one_set(assoc: usize) -> Geometry {
    Geometry::new(64 * assoc as u64, 64, assoc)
}

/// Section 2.1: "GD replaces the block with the least cost, regardless of
/// its locality... when a block is victimized, the costs of all blocks
/// remaining in the set are reduced by its cost. Whenever a block is
/// accessed, its original cost is restored."
#[test]
fn gd_narrative() {
    let geom = one_set(4);
    let mut c = Cache::new(geom, GreedyDual::new(&geom));
    // Fill with mixed costs; MRU order ends d, c, b, a.
    c.access(BlockAddr(0), AccessType::Read, Cost(7)); // a
    c.access(BlockAddr(1), AccessType::Read, Cost(3)); // b
    c.access(BlockAddr(2), AccessType::Read, Cost(5)); // c
    c.access(BlockAddr(3), AccessType::Read, Cost(2)); // d (MRU, least cost)
                                                       // GD evicts d despite it being MRU: cost dominates locality.
    c.access(BlockAddr(4), AccessType::Read, Cost(1));
    assert!(!c.contains(BlockAddr(3)));
    assert!(c.contains(BlockAddr(0)), "the costly LRU block survives");
}

/// Section 2.2: "if the next miss cost of the LRU block is greater than the
/// next miss cost of one of the non-LRU blocks in the same set, we may save
/// some cost by keeping the LRU block... while we keep a high-cost block in
/// the LRU position, we say that the block or blockframe is reserved."
#[test]
fn reservation_narrative() {
    let geom = one_set(4);
    let mut bcl = Cache::new(geom, Bcl::new(&geom));
    let mut dcl = Cache::new(geom, Dcl::new(&geom));
    for b in [(0u64, 8u64), (1, 1), (2, 1), (3, 1), (4, 1)] {
        bcl.access(BlockAddr(b.0), AccessType::Read, Cost(b.1));
        dcl.access(BlockAddr(b.0), AccessType::Read, Cost(b.1));
    }
    assert!(
        bcl.contains(BlockAddr(0)),
        "BCL: the high-cost LRU block must be reserved"
    );
    assert!(
        dcl.contains(BlockAddr(0)),
        "DCL: the high-cost LRU block must be reserved"
    );
}

/// Figure 1 scans down to i = 1, so the MRU block *can* be the victim when
/// it alone is cheaper than the reserved block (Section 2.2's "not subject
/// to reservation" is about reserving, not victimizing — reservation of
/// the MRU is structurally impossible since the scan never leaves a block
/// below it).
#[test]
fn mru_can_be_victimized_but_not_reserved() {
    let geom = one_set(3);
    let mut c = Cache::new(geom, Bcl::new(&geom));
    c.access(BlockAddr(0), AccessType::Read, Cost(9)); // LRU, expensive
    c.access(BlockAddr(1), AccessType::Read, Cost(9)); // middle, expensive
    c.access(BlockAddr(2), AccessType::Read, Cost(1)); // MRU, cheap
                                                       // Scan from second-LRU (1, cost 9 >= Acost 9) to MRU (2, cost 1 < 9).
    c.access(BlockAddr(3), AccessType::Read, Cost(1));
    assert!(c.contains(BlockAddr(0)));
    assert!(c.contains(BlockAddr(1)), "both expensive blocks reserved");
    assert!(
        !c.contains(BlockAddr(2)),
        "the cheap MRU block is the victim"
    );
}

/// Section 2.3: "Acost is reduced by twice the amount of the miss cost of
/// the block being replaced... When Acost reaches zero the reserved LRU
/// block becomes the prime replacement candidate."
#[test]
fn bcl_depreciation_schedule() {
    let geom = one_set(2);
    let mut c = Cache::new(geom, Bcl::new(&geom));
    c.access(BlockAddr(0), AccessType::Read, Cost(6));
    c.access(BlockAddr(1), AccessType::Read, Cost(1));
    // Three cheap victimizations: Acost 6 -> 4 -> 2 -> 0.
    for b in [2u64, 3, 4] {
        c.access(BlockAddr(b), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
    }
    assert_eq!(c.policy().acost_of(SetIndex(0)), 0);
    // Prime replacement candidate: the next fill takes it.
    c.access(BlockAddr(5), AccessType::Read, Cost(1));
    assert!(!c.contains(BlockAddr(0)));
}

/// Section 2.4: "In DCL, the cost of the reserved LRU block is depreciated
/// only when the non-LRU blocks victimized in its place are actually
/// accessed before the LRU block."
#[test]
fn dcl_depreciates_only_on_actual_rereference() {
    let geom = one_set(2);
    let mut bcl_cache = Cache::new(geom, Bcl::new(&geom));
    let mut dcl_cache = Cache::new(geom, Dcl::new(&geom));
    let stream: Vec<(u64, u64)> = vec![(0, 6), (1, 1), (2, 1), (3, 1), (4, 1)];
    for &(b, cost) in &stream {
        bcl_cache.access(BlockAddr(b), AccessType::Read, Cost(cost));
        dcl_cache.access(BlockAddr(b), AccessType::Read, Cost(cost));
    }
    // BCL pessimistically depreciated 3 times (6 -> 0); DCL not at all
    // (none of the victims ever returned).
    assert_eq!(bcl_cache.policy().acost_of(SetIndex(0)), 0);
    assert_eq!(dcl_cache.policy().acost_of(SetIndex(0)), 6);
    // The reserved block's fate then differs on the next fill.
    bcl_cache.access(BlockAddr(5), AccessType::Read, Cost(1));
    dcl_cache.access(BlockAddr(5), AccessType::Read, Cost(1));
    assert!(
        !bcl_cache.contains(BlockAddr(0)),
        "BCL squandered the reservation"
    );
    assert!(dcl_cache.contains(BlockAddr(0)), "DCL kept it");
}

/// Section 2.4: "when an invalidation is received for a block present in
/// the ETD (as may happen in multiprocessors), the ETD entry is
/// invalidated."
#[test]
fn etd_entries_die_with_coherence_invalidations() {
    let geom = one_set(2);
    let mut c = Cache::new(geom, Dcl::new(&geom));
    c.access(BlockAddr(0), AccessType::Read, Cost(6));
    c.access(BlockAddr(1), AccessType::Read, Cost(1));
    c.access(BlockAddr(2), AccessType::Read, Cost(1)); // 1 displaced -> ETD
    assert_eq!(c.policy().etd().len(SetIndex(0)), 1);
    c.invalidate(BlockAddr(1), InvalidateKind::Coherence); // remote write
    assert!(c.policy().etd().is_empty(SetIndex(0)));
    // Its return must now NOT depreciate the reservation.
    c.access(BlockAddr(1), AccessType::Read, Cost(1));
    assert_eq!(c.policy().acost_of(SetIndex(0)), 6);
}

/// Section 2.5: "Initially the counter is set to zero, disabling all
/// reservations... upon a hit in ETD, all ETD entries are invalidated, and
/// reservations are enabled by setting the counter value to two."
#[test]
fn acl_trigger_narrative() {
    let geom = one_set(2);
    let mut c = Cache::new(geom, Acl::new(&geom));
    assert!(!c.policy().enabled(SetIndex(0)));
    // Watch mode: LRU-evict an expensive block while a cheap one exists.
    c.access(BlockAddr(0), AccessType::Read, Cost(8));
    c.access(BlockAddr(1), AccessType::Read, Cost(1));
    c.access(BlockAddr(2), AccessType::Read, Cost(1)); // 0 evicted into watch ETD
    assert_eq!(c.policy().counter_of(SetIndex(0)), 0);
    c.access(BlockAddr(0), AccessType::Read, Cost(8)); // watch hit
    assert_eq!(c.policy().counter_of(SetIndex(0)), 2);
    assert!(
        c.policy().etd().is_empty(SetIndex(0)),
        "all entries invalidated"
    );
}

/// Section 3.1's infinite cost ratio: low = 0, high = 1; "the cost
/// depreciations of reserved blocks have no effect", so the policies
/// "systematically replace low-cost blocks instead of high-cost blocks
/// whenever low-cost blocks exist in the cache".
#[test]
fn infinite_ratio_reserves_forever() {
    let geom = one_set(4);
    let mut bcl = Cache::new(geom, Bcl::new(&geom));
    let mut dcl = Cache::new(geom, Dcl::new(&geom));
    bcl.access(BlockAddr(0), AccessType::Read, Cost(1)); // "high" = 1
    dcl.access(BlockAddr(0), AccessType::Read, Cost(1));
    for b in 1..60u64 {
        bcl.access(BlockAddr(b), AccessType::Read, Cost(0)); // "low" = 0
        dcl.access(BlockAddr(b), AccessType::Read, Cost(0));
    }
    assert!(
        bcl.contains(BlockAddr(0)),
        "BCL: high-cost block kept at r = infinity"
    );
    assert!(
        dcl.contains(BlockAddr(0)),
        "DCL: high-cost block kept at r = infinity"
    );
}

/// Section 2.3: multiple simultaneous reservations — all s-1 = 3 blocks
/// above the victim survive a fill when each is costlier than the
/// depreciating Acost (this exercises multi-reservation survival, not an
/// explicit cap, which is structural: a victim always exists).
#[test]
fn at_most_s_minus_one_reservations() {
    let geom = one_set(4);
    let mut c = Cache::new(geom, Bcl::new(&geom));
    // Three expensive blocks + one cheap MRU.
    c.access(BlockAddr(0), AccessType::Read, Cost(9));
    c.access(BlockAddr(1), AccessType::Read, Cost(9));
    c.access(BlockAddr(2), AccessType::Read, Cost(9));
    c.access(BlockAddr(3), AccessType::Read, Cost(1));
    c.access(BlockAddr(4), AccessType::Read, Cost(1));
    // All three expensive blocks (s-1 = 3) survived; the cheap one went.
    for b in [0u64, 1, 2] {
        assert!(c.contains(BlockAddr(b)), "block {b}");
    }
    assert!(!c.contains(BlockAddr(3)));
}
