//! Decision-event traces must agree exactly with the policies' own
//! statistics counters: every `reserve`/`depreciate`/`etd_hit` event
//! corresponds one-to-one to a counter increment, and hit/miss/evict
//! events mirror the simulator's [`cache_sim::CacheStats`].

use cache_sim::{AccessType, BlockAddr, Cache, Cost, Geometry};
use csr::{Acl, Bcl, Dcl, GreedyDual};
use csr_obs::{CountingObserver, DecisionEvent, EventCounts, EventTracer};
use std::sync::Arc;

/// A deterministic access stream mixing high- and low-cost blocks with
/// enough re-use to exercise reservations, ETD hits and ACL triggers.
fn reference_stream() -> Vec<(BlockAddr, Cost)> {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut step = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut out = Vec::with_capacity(20_000);
    for _ in 0..20_000 {
        let r = step();
        // 160 distinct blocks over 16 sets x 4 ways: heavy conflict with
        // frequent re-use.
        let block = BlockAddr(r % 160);
        // Every sixth block is expensive, as in the paper's bimodal setups.
        let cost = if block.0.is_multiple_of(6) { Cost(8) } else { Cost(1) };
        out.push((block, cost));
    }
    out
}

fn geom() -> Geometry {
    // 16 sets x 4 ways of 64-byte blocks.
    Geometry::new(4 * 1024, 64, 4)
}

/// Runs `cache` over the reference stream and checks the observer's
/// hit/miss/evict totals against the simulator's stats.
fn run_and_check_sim_counts<P: cache_sim::ReplacementPolicy>(
    cache: &mut Cache<P>,
    obs: &CountingObserver,
) -> EventCounts {
    for &(block, cost) in &reference_stream() {
        cache.access(block, AccessType::Read, cost);
    }
    let counts = obs.counts();
    let sim = cache.stats();
    assert_eq!(counts.hits, sim.hits, "hit events == simulator hits");
    assert_eq!(counts.misses, sim.misses, "miss events == simulator misses");
    assert_eq!(
        counts.evictions, sim.evictions,
        "evict events == simulator evictions"
    );
    counts
}

#[test]
fn gd_events_match_stats() {
    let obs = Arc::new(CountingObserver::new());
    let geom = geom();
    let mut cache = Cache::new(geom, GreedyDual::new(&geom).with_observer(Arc::clone(&obs)));
    let counts = run_and_check_sim_counts(&mut cache, &obs);
    let stats = cache.policy().stats();
    assert_eq!(counts.evictions, stats.victims);
    assert_eq!(counts.reservations, stats.non_lru_victims);
    assert_eq!(counts.reservations, cache.stats().non_lru_evictions);
    assert!(
        counts.reservations > 0,
        "stream must exercise non-LRU picks"
    );
    assert_eq!(counts.depreciations, 0, "GD never depreciates");
    assert_eq!(counts.etd_hits, 0, "GD has no ETD");
}

#[test]
fn bcl_events_match_stats() {
    let obs = Arc::new(CountingObserver::new());
    let geom = geom();
    let mut cache = Cache::new(geom, Bcl::new(&geom).with_observer(Arc::clone(&obs)));
    let counts = run_and_check_sim_counts(&mut cache, &obs);
    let stats = cache.policy().stats();
    assert_eq!(counts.reservations, stats.reservations);
    assert_eq!(
        counts.depreciations, stats.reservations,
        "BCL depreciates immediately on every reservation"
    );
    assert_eq!(
        counts.evictions,
        stats.reservations + stats.lru_evictions,
        "every victim() call is either a reservation or an LRU eviction"
    );
    assert!(counts.reservations > 0, "stream must exercise reservations");
    assert_eq!(counts.etd_hits, 0, "BCL has no ETD");
}

#[test]
fn dcl_events_match_stats() {
    let obs = Arc::new(CountingObserver::new());
    let geom = geom();
    let mut cache = Cache::new(geom, Dcl::new(&geom).with_observer(Arc::clone(&obs)));
    let counts = run_and_check_sim_counts(&mut cache, &obs);
    let stats = cache.policy().stats();
    assert_eq!(counts.reservations, stats.reservations);
    assert_eq!(counts.etd_hits, stats.depreciations);
    assert_eq!(counts.depreciations, stats.depreciations);
    assert_eq!(counts.evictions, stats.reservations + stats.lru_evictions);
    assert!(counts.reservations > 0, "stream must exercise reservations");
    assert!(counts.etd_hits > 0, "stream must exercise ETD hits");
    assert_eq!(counts.automaton_flips, 0, "DCL has no automaton");
}

#[test]
fn acl_events_match_stats() {
    // ACL needs the tracer too: `AutomatonFlip { enabled: true }` events
    // must equal the trigger counter, which a flat flip count cannot show.
    let counting = Arc::new(CountingObserver::new());
    let tracer = Arc::new(EventTracer::new(1 << 20));
    let obs = (Arc::clone(&counting), Arc::clone(&tracer));
    let geom = geom();
    let mut cache = Cache::new(geom, Acl::new(&geom).with_observer(obs));
    let counts = run_and_check_sim_counts(&mut cache, &counting);
    let stats = cache.policy().stats();
    assert_eq!(counts.reservations, stats.reservations);
    assert_eq!(counts.depreciations, stats.depreciations);
    assert_eq!(
        counts.etd_hits,
        stats.depreciations + stats.triggers,
        "enabled ETD hits depreciate; watch-mode ETD hits trigger"
    );
    assert!(counts.reservations > 0, "stream must exercise reservations");
    assert!(
        stats.triggers > 0,
        "stream must exercise watch-mode triggers"
    );

    assert_eq!(tracer.dropped(), 0, "trace capacity must hold the full run");
    let mut enabled_flips = 0;
    let mut disabled_flips = 0;
    for t in tracer.events() {
        if let DecisionEvent::AutomatonFlip { enabled } = t.event {
            if enabled {
                enabled_flips += 1;
            } else {
                disabled_flips += 1;
            }
        }
    }
    assert_eq!(
        enabled_flips, stats.triggers,
        "one enabled flip per trigger"
    );
    assert_eq!(
        enabled_flips + disabled_flips,
        counts.automaton_flips,
        "the tracer and counter see the same flip stream"
    );
}

#[test]
fn traced_events_are_densely_numbered() {
    let tracer = Arc::new(EventTracer::new(256));
    let geom = geom();
    let mut cache = Cache::new(geom, Dcl::new(&geom).with_observer(Arc::clone(&tracer)));
    for &(block, cost) in reference_stream().iter().take(2_000) {
        cache.access(block, AccessType::Read, cost);
    }
    let events = tracer.events();
    assert_eq!(events.len() as u64 + tracer.dropped(), tracer.total());
    for pair in events.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "seq numbers stay dense");
    }
}
