//! Edge cases of ACL's 2-bit automaton and the Extended Tag Directory:
//!
//! * the re-enable path: a set whose automaton has decayed to *disabled*
//!   must come back through watch mode — and only through a genuine watch
//!   hit, never through stale entries left by the failed reservations;
//! * ETD capacity is `s - 1`: the oldest record is dropped on overflow and
//!   a zero-entry directory degenerates to a no-op;
//! * depreciation fires only on an *actual* re-reference of a displaced
//!   block, not on arbitrary misses.

use cache_sim::{AccessType, BlockAddr, Cache, Cost, Geometry, SetIndex};
use csr::etd::{EtdConfig, EtdSet};
use csr::{Acl, Dcl};

const S0: SetIndex = SetIndex(0);

/// One 2-way set driven by ACL.
fn acl_cache() -> Cache<Acl> {
    let geom = Geometry::new(128, 64, 2);
    Cache::new(geom, Acl::new(&geom))
}

/// Enables reservations via a watch hit: high-cost block 0 is evicted by
/// plain LRU, watched, then re-referenced. Leaves the set as [0 (MRU), x].
fn enable_via_watch_hit(c: &mut Cache<Acl>) {
    c.access(BlockAddr(0), AccessType::Read, Cost(8));
    c.access(BlockAddr(1), AccessType::Read, Cost(1));
    c.access(BlockAddr(2), AccessType::Read, Cost(1)); // LRU 0 evicted, watched
    c.access(BlockAddr(0), AccessType::Read, Cost(8)); // watch hit: counter = 2
    assert!(c.policy().enabled(S0));
}

/// Runs one full failed reservation of block 0 (cost 8): moves 0 to the
/// LRU position, reserves it, exhausts its Acost through detected
/// re-references of the displaced cheap blocks, and finally evicts it.
fn fail_one_reservation(c: &mut Cache<Acl>, mut fresh: u64) {
    let others: Vec<u64> = c
        .recency_of(S0)
        .iter()
        .map(|b| b.0)
        .filter(|&b| b != 0)
        .collect();
    c.access(BlockAddr(others[0]), AccessType::Read, Cost(1)); // 0 to LRU
    for _ in 0..4 {
        c.access(BlockAddr(fresh), AccessType::Read, Cost(1)); // displace cheap
        let displaced: Vec<u64> = c.policy().etd().blocks_in(S0).iter().map(|b| b.0).collect();
        c.access(BlockAddr(displaced[0]), AccessType::Read, Cost(1)); // detected re-ref
        fresh += 1;
    }
    c.access(BlockAddr(fresh + 1), AccessType::Read, Cost(1)); // evicts reserved 0
    assert!(!c.contains(BlockAddr(0)));
    c.access(BlockAddr(0), AccessType::Read, Cost(8)); // bring 0 back
}

#[test]
fn disabled_set_reenables_only_through_a_watch_hit() {
    let mut c = acl_cache();
    enable_via_watch_hit(&mut c);
    fail_one_reservation(&mut c, 100);
    fail_one_reservation(&mut c, 200);
    assert!(!c.policy().enabled(S0), "two failures must disable the set");
    assert_eq!(c.policy().counter_of(S0), 0);

    // The transition into watch mode cleared the directory: entries from
    // the failed reservation are evidence reservations *hurt* and must not
    // masquerade as watch hits.
    assert!(
        c.policy().etd().is_empty(S0),
        "ETD must be flushed on disable"
    );

    // While disabled the set behaves like LRU: the expensive block is NOT
    // reserved, even though a cheaper block sits above it.
    let cheap: Vec<u64> = c
        .recency_of(S0)
        .iter()
        .map(|b| b.0)
        .filter(|&b| b != 0)
        .collect();
    c.access(BlockAddr(cheap[0]), AccessType::Read, Cost(1)); // 0 to LRU
    let watch_before = c.policy().stats().watch_inserts;
    c.access(BlockAddr(300), AccessType::Read, Cost(1));
    assert!(
        !c.contains(BlockAddr(0)),
        "disabled ACL must evict the LRU block"
    );
    assert_eq!(c.policy().stats().watch_inserts, watch_before + 1);

    // The genuine watch hit — re-referencing the block LRU just threw away
    // — re-enables reservations at the trigger value.
    let triggers_before = c.policy().stats().triggers;
    c.access(BlockAddr(0), AccessType::Read, Cost(8));
    assert!(
        c.policy().enabled(S0),
        "watch hit must re-enable reservations"
    );
    assert_eq!(c.policy().counter_of(S0), 2);
    assert_eq!(c.policy().stats().triggers, triggers_before + 1);
}

#[test]
fn watch_mode_ignores_misses_on_unwatched_blocks() {
    let mut c = acl_cache();
    // Disabled from the start. Evict expensive block 0 into the watch ETD.
    c.access(BlockAddr(0), AccessType::Read, Cost(8));
    c.access(BlockAddr(1), AccessType::Read, Cost(1));
    c.access(BlockAddr(2), AccessType::Read, Cost(1));
    assert_eq!(c.policy().stats().watch_inserts, 1);
    // Misses on blocks that were never displaced must not trigger.
    c.access(BlockAddr(7), AccessType::Read, Cost(1));
    c.access(BlockAddr(8), AccessType::Read, Cost(1));
    assert!(!c.policy().enabled(S0));
    assert_eq!(c.policy().stats().triggers, 0);
}

#[test]
fn etd_capacity_drops_oldest_entry() {
    // The paper's sizing: s - 1 = 3 entries for a 4-way set.
    let mut etd = EtdSet::new(EtdConfig::for_assoc(4));
    assert_eq!(etd.config().entries_per_set, 3);
    for b in 0..4u64 {
        etd.insert(BlockAddr(b), Cost(b + 1));
    }
    assert_eq!(etd.len(), 3, "directory must clamp at s - 1 entries");
    assert_eq!(etd.stats().capacity_evictions, 1);
    // The oldest record (block 0) was dropped; the three youngest survive.
    assert_eq!(etd.probe_and_take(BlockAddr(0)), None);
    assert_eq!(etd.probe_and_take(BlockAddr(1)), Some(Cost(2)));
    assert_eq!(etd.probe_and_take(BlockAddr(2)), Some(Cost(3)));
    assert_eq!(etd.probe_and_take(BlockAddr(3)), Some(Cost(4)));
    assert!(etd.is_empty());
}

#[test]
fn zero_entry_etd_is_inert() {
    // A 1-way region gets an s - 1 = 0-entry directory: inserts are no-ops.
    let mut etd = EtdSet::new(EtdConfig::for_assoc(1));
    assert_eq!(etd.config().entries_per_set, 0);
    etd.insert(BlockAddr(1), Cost(5));
    assert!(etd.is_empty());
    assert_eq!(etd.probe_and_take(BlockAddr(1)), None);
    assert_eq!(etd.stats().allocations, 0);
}

#[test]
fn dcl_depreciates_only_on_actual_rereference() {
    let geom = Geometry::new(128, 64, 2);
    let mut c = Cache::new(geom, Dcl::new(&geom));
    c.access(BlockAddr(0), AccessType::Read, Cost(8)); // expensive
    c.access(BlockAddr(1), AccessType::Read, Cost(1)); // cheap
    c.access(BlockAddr(2), AccessType::Read, Cost(1)); // reserves 0, displaces 1
    assert!(c.contains(BlockAddr(0)));
    assert_eq!(c.policy().acost_of(S0), 8);

    // Misses on blocks that were never displaced: no detected re-reference,
    // so the reservation keeps its full remaining cost. (Each fill evicts
    // the cheap non-LRU block again, extending the same reservation.)
    for b in [10u64, 11, 12] {
        c.access(BlockAddr(b), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert_eq!(
            c.policy().acost_of(S0),
            8,
            "miss on never-displaced block {b} must not depreciate",
        );
    }

    // A miss on a block the ETD recorded as displaced IS a detected
    // re-reference: acost drops by twice the displaced block's cost.
    let displaced: Vec<u64> = c.policy().etd().blocks_in(S0).iter().map(|b| b.0).collect();
    c.access(BlockAddr(displaced[0]), AccessType::Read, Cost(1));
    assert_eq!(
        c.policy().acost_of(S0),
        6,
        "detected re-reference must depreciate by 2x cost"
    );
}
