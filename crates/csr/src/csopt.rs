//! CSOPT: the offline *optimal* replacement schedule for caches with
//! non-uniform miss costs (Jeong & Dubois, SPAA 1999 — the paper's ref \[6\]).
//!
//! The paper's key offline insight is that with non-uniform costs the victim
//! cannot be chosen greedily at replacement time, even with full knowledge of
//! the future: the optimal schedule may *reserve* a block through several
//! replacements. CSOPT therefore searches over eviction schedules. This
//! implementation does so exactly, with a per-set dynamic program over
//! reachable cache contents:
//!
//! * state = the set of resident blocks (≤ associativity);
//! * on a hit the state is unchanged at cost 0;
//! * on a miss, the missed block is filled (demand-fill, like the on-line
//!   policies) and every possible victim — or using a free frame — branches;
//! * states are merged by minimum accumulated cost per layer.
//!
//! The layer width is bounded by C(N, s) for N distinct blocks mapping to
//! the set; [`CsoptLimits`] aborts gracefully on workloads where that
//! explodes. For the small traces used in tests and ablations it is exact,
//! which makes it a true lower-bound oracle for GD/BCL/DCL/ACL.

use crate::opt::{OfflineStats, TraceEvent};
use cache_sim::{Cost, Geometry};
use std::collections::HashMap;

/// Resource limits for the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsoptLimits {
    /// Maximum simultaneous states per set layer before giving up.
    pub max_states: usize,
}

impl Default for CsoptLimits {
    fn default() -> Self {
        CsoptLimits {
            max_states: 200_000,
        }
    }
}

/// Computes the optimal aggregate miss cost for `events` on a cache of
/// `geom`, or `None` if the state space exceeds `limits`.
///
/// The returned [`OfflineStats`] carries the optimal aggregate cost; its
/// `misses` field reports the miss count *of the optimal-cost schedule*
/// (which may exceed Belady's minimum miss count — that is the whole point
/// of cost-sensitivity).
#[must_use]
pub fn simulate_csopt(
    geom: &Geometry,
    events: &[TraceEvent],
    limits: CsoptLimits,
) -> Option<OfflineStats> {
    // Partition events by set; sets are independent.
    let mut per_set: HashMap<usize, Vec<&TraceEvent>> = HashMap::new();
    for ev in events {
        let block = match ev {
            TraceEvent::Access { block, .. } | TraceEvent::Invalidate { block } => *block,
        };
        per_set.entry(geom.set_of(block).0).or_default().push(ev);
    }

    let mut totals = OfflineStats::default();
    for (_set, evs) in per_set {
        let (stats, ok) = solve_set(geom.assoc(), &evs, limits);
        if !ok {
            return None;
        }
        totals.accesses += stats.accesses;
        totals.hits += stats.hits;
        totals.misses += stats.misses;
        totals.aggregate_cost += stats.aggregate_cost;
    }
    Some(totals)
}

/// One DP state: sorted resident block ids (small-index remapped).
type State = Vec<u16>;

fn solve_set(assoc: usize, events: &[&TraceEvent], limits: CsoptLimits) -> (OfflineStats, bool) {
    // Remap blocks to dense u16 ids.
    let mut ids: HashMap<u64, u16> = HashMap::new();
    let mut id_of = |b: u64| -> u16 {
        let next = ids.len() as u16;
        *ids.entry(b).or_insert(next)
    };

    // frontier: state -> (min aggregate cost, misses along that path, hits)
    let mut frontier: HashMap<State, (u64, u64, u64)> = HashMap::new();
    frontier.insert(Vec::new(), (0, 0, 0));
    let mut accesses = 0u64;

    for ev in events {
        match ev {
            TraceEvent::Invalidate { block } => {
                let id = id_of(block.0);
                let mut next: HashMap<State, (u64, u64, u64)> = HashMap::new();
                for (mut state, v) in frontier.drain() {
                    state.retain(|&x| x != id);
                    merge(&mut next, state, v);
                }
                frontier = next;
            }
            TraceEvent::Access { block, cost } => {
                accesses += 1;
                let id = id_of(block.0);
                let mut next: HashMap<State, (u64, u64, u64)> = HashMap::new();
                for (state, (c, m, h)) in frontier.drain() {
                    if state.binary_search(&id).is_ok() {
                        // Hit: no branching.
                        merge(&mut next, state, (c, m, h + 1));
                        continue;
                    }
                    let miss_cost = c + cost.0;
                    if state.len() < assoc {
                        let mut s = state.clone();
                        insert_sorted(&mut s, id);
                        merge(&mut next, s, (miss_cost, m + 1, h));
                    } else {
                        // Branch over every victim choice.
                        for victim_idx in 0..state.len() {
                            let mut s = state.clone();
                            s.remove(victim_idx);
                            insert_sorted(&mut s, id);
                            merge(&mut next, s, (miss_cost, m + 1, h));
                        }
                    }
                }
                frontier = next;
                if frontier.len() > limits.max_states {
                    return (OfflineStats::default(), false);
                }
            }
        }
    }

    // The optimum over all terminal states.
    let best = frontier
        .values()
        .min_by_key(|(c, _, _)| *c)
        .copied()
        .unwrap_or((0, 0, 0));
    (
        OfflineStats {
            accesses,
            hits: best.2,
            misses: best.1,
            aggregate_cost: Cost(best.0),
        },
        true,
    )
}

fn insert_sorted(state: &mut State, id: u16) {
    match state.binary_search(&id) {
        Ok(_) => {}
        Err(pos) => state.insert(pos, id),
    }
}

fn merge(map: &mut HashMap<State, (u64, u64, u64)>, state: State, v: (u64, u64, u64)) {
    map.entry(state)
        .and_modify(|cur| {
            if v.0 < cur.0 {
                *cur = v;
            }
        })
        .or_insert(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::simulate_belady;
    use cache_sim::{AccessType, BlockAddr, Cache, Lru};

    fn acc(b: u64, c: u64) -> TraceEvent {
        TraceEvent::Access {
            block: BlockAddr(b),
            cost: Cost(c),
        }
    }

    fn one_set(assoc: usize) -> Geometry {
        Geometry::new(64 * assoc as u64, 64, assoc)
    }

    #[test]
    fn matches_belady_under_uniform_costs() {
        // With uniform costs, minimum cost = minimum misses, so CSOPT's
        // aggregate cost equals Belady's miss count.
        let geom = one_set(2);
        let trace: Vec<TraceEvent> = (0..40).map(|i| acc((i * 7) % 5, 1)).collect();
        let csopt = simulate_csopt(&geom, &trace, CsoptLimits::default()).expect("small trace");
        let belady = simulate_belady(&geom, &trace);
        assert_eq!(csopt.aggregate_cost.0, belady.misses);
    }

    #[test]
    fn beats_belady_when_costs_differ() {
        // The paper's motivating example shape: an expensive block whose
        // reuse Belady sacrifices (it evicts by farthest-use only).
        let geom = one_set(2);
        let trace = vec![
            acc(0, 10), // expensive
            acc(1, 1),
            acc(2, 1), // must evict: Belady evicts by distance, CSOPT by cost
            acc(1, 1),
            acc(0, 10),
        ];
        let csopt = simulate_csopt(&geom, &trace, CsoptLimits::default()).expect("small");
        let belady = simulate_belady(&geom, &trace);
        assert!(
            csopt.aggregate_cost < belady.aggregate_cost,
            "CSOPT {} !< Belady {}",
            csopt.aggregate_cost,
            belady.aggregate_cost
        );
    }

    #[test]
    fn lower_bounds_lru() {
        let geom = one_set(4);
        let mut trace = Vec::new();
        let mut x = 12345u64;
        for _ in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) % 9;
            trace.push(acc(b, if b.is_multiple_of(3) { 8 } else { 1 }));
        }
        let csopt = simulate_csopt(&geom, &trace, CsoptLimits::default()).expect("small");
        let mut lru = Cache::new(geom, Lru::new());
        for ev in &trace {
            if let TraceEvent::Access { block, cost } = ev {
                lru.access(*block, AccessType::Read, *cost);
            }
        }
        assert!(csopt.aggregate_cost <= lru.stats().aggregate_cost);
    }

    #[test]
    fn invalidations_are_handled() {
        let geom = one_set(2);
        let trace = vec![
            acc(0, 5),
            TraceEvent::Invalidate {
                block: BlockAddr(0),
            },
            acc(0, 5),
        ];
        let s = simulate_csopt(&geom, &trace, CsoptLimits::default()).expect("small");
        assert_eq!(s.aggregate_cost, Cost(10));
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn state_limit_aborts_gracefully() {
        let geom = one_set(8);
        let trace: Vec<TraceEvent> = (0..4000).map(|i| acc((i * 37) % 64, 1)).collect();
        let tiny = CsoptLimits { max_states: 4 };
        assert!(simulate_csopt(&geom, &trace, tiny).is_none());
    }
}
