//! Set-size-agnostic eviction policies.
//!
//! The simulator's [`cache_sim::ReplacementPolicy`] addresses a policy by
//! [`SetIndex`](cache_sim::SetIndex) because a hardware cache replicates the
//! same decision logic across every set. The logic itself, however, only
//! ever concerns **one replacement region**: a recency stack, its costs, and
//! (for DCL/ACL) a shadow directory. [`EvictionPolicy`] captures exactly
//! that single-region contract, so the same cores drive both
//!
//! * the set-indexed simulator policies (`GreedyDual`, `Bcl`, `Dcl`, `Acl`
//!   each hold one core per set and delegate), and
//! * the shards of the concurrent `csr-cache` key-value cache, where a
//!   "set" is an arbitrarily large shard and no `SetIndex` exists.
//!
//! Unlike `ReplacementPolicy`, the hit/miss notifications here carry the
//! O(1) facts a policy actually consumes (block identity, cost, whether the
//! block is at the LRU end) instead of a full [`SetView`], so a linked-list
//! shard never materializes its recency order except when selecting a
//! victim.

use cache_sim::{BlockAddr, Cost, SetView, Way};
use csr_obs::{NopObserver, Observer};

/// A replacement policy for a single region (one cache set, one shard).
///
/// # Contract
///
/// * [`victim`](Self::victim) is called exactly once per replacement, only
///   on a full region, with the region's valid blocks in MRU → LRU order;
///   the returned way will be evicted.
/// * [`on_hit`](Self::on_hit) is delivered *before* the block is promoted
///   to the MRU position; `is_lru` reports whether it currently sits at the
///   LRU end.
/// * [`on_miss`](Self::on_miss) is delivered for every access that misses,
///   before victim selection or fill, together with the identity and cost
///   of the current LRU block (if any). Delivering it more than once for
///   the same missing access (as a get-then-insert key-value flow does) is
///   harmless for all cores in this crate: the first delivery consumes any
///   matching ETD entry, so repeats are no-ops.
/// * [`on_remove`](Self::on_remove) must be called when a block leaves the
///   region for any reason other than eviction chosen by
///   [`victim`](Self::victim) (coherence invalidation, explicit removal).
pub trait EvictionPolicy {
    /// A short human-readable name ("LRU", "GD", "BCL", …).
    fn name(&self) -> &'static str;

    /// Selects the way to evict from the full region.
    fn victim(&mut self, view: &SetView<'_>) -> Way;

    /// An access hit `block` on `way` (cost as loaded at fill time);
    /// `is_lru` is true when the block is currently at the LRU end.
    fn on_hit(&mut self, block: BlockAddr, way: Way, cost: Cost, is_lru: bool) {
        let _ = (block, way, cost, is_lru);
    }

    /// An access to `block` missed; `lru` is the current LRU block and its
    /// cost, if the region is non-empty.
    fn on_miss(&mut self, block: BlockAddr, lru: Option<(BlockAddr, Cost)>) {
        let _ = (block, lru);
    }

    /// `block` was filled into `way` with miss cost `cost`.
    fn on_fill(&mut self, block: BlockAddr, way: Way, cost: Cost) {
        let _ = (block, way, cost);
    }

    /// `block` left the region without being chosen by
    /// [`victim`](Self::victim).
    fn on_remove(&mut self, block: BlockAddr) {
        let _ = block;
    }
}

impl<P: EvictionPolicy + ?Sized> EvictionPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn victim(&mut self, view: &SetView<'_>) -> Way {
        (**self).victim(view)
    }
    fn on_hit(&mut self, block: BlockAddr, way: Way, cost: Cost, is_lru: bool) {
        (**self).on_hit(block, way, cost, is_lru);
    }
    fn on_miss(&mut self, block: BlockAddr, lru: Option<(BlockAddr, Cost)>) {
        (**self).on_miss(block, lru);
    }
    fn on_fill(&mut self, block: BlockAddr, way: Way, cost: Cost) {
        (**self).on_fill(block, way, cost);
    }
    fn on_remove(&mut self, block: BlockAddr) {
        (**self).on_remove(block);
    }
}

/// Plain LRU as an [`EvictionPolicy`]: evict the LRU block, keep no state
/// beyond the (default no-op) decision observer.
///
/// The cost-oblivious baseline every cost-sensitive policy is measured
/// against (and the shard baseline of `csr-cache`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LruCore<O: Observer = NopObserver> {
    obs: O,
}

impl LruCore {
    /// Creates the (stateless) LRU core.
    #[must_use]
    pub fn new() -> Self {
        LruCore { obs: NopObserver }
    }
}

impl<O: Observer> LruCore<O> {
    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> LruCore<O2> {
        LruCore { obs }
    }
}

impl<O: Observer> EvictionPolicy for LruCore<O> {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        let lru = view.lru();
        self.obs.on_evict(lru.block, lru.cost);
        lru.way
    }

    fn on_hit(&mut self, block: BlockAddr, _way: Way, cost: Cost, _is_lru: bool) {
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
    }
}

/// Extracts the `(block, cost, is_lru)` triple for a hit at `stack_pos`
/// from a materialized view (the set-indexed delegation path).
pub(crate) fn hit_args(view: &SetView<'_>, stack_pos: usize) -> (BlockAddr, Cost, bool) {
    let e = view.at(stack_pos);
    (e.block, e.cost, stack_pos + 1 == view.len())
}

/// The `(block, cost)` of the LRU entry of a materialized view, if any.
pub(crate) fn lru_of(view: &SetView<'_>) -> Option<(BlockAddr, Cost)> {
    if view.is_empty() {
        None
    } else {
        let l = view.lru();
        Some((l.block, l.cost))
    }
}

/// Implements [`cache_sim::ReplacementPolicy`] for a wrapper holding one
/// [`EvictionPolicy`] core per set in a `cores: Vec<_>` field, by pure
/// delegation. The wrapper is generic over its cores' decision observer.
macro_rules! impl_replacement_via_cores {
    ($wrapper:ident, $name:expr) => {
        impl<OBS: csr_obs::Observer> cache_sim::ReplacementPolicy for $wrapper<OBS> {
            fn name(&self) -> &'static str {
                $name
            }

            fn victim(
                &mut self,
                set: cache_sim::SetIndex,
                view: &cache_sim::SetView<'_>,
            ) -> cache_sim::Way {
                crate::eviction::EvictionPolicy::victim(&mut self.cores[set.0], view)
            }

            fn on_hit(
                &mut self,
                set: cache_sim::SetIndex,
                view: &cache_sim::SetView<'_>,
                way: cache_sim::Way,
                stack_pos: usize,
            ) {
                let (block, cost, is_lru) = crate::eviction::hit_args(view, stack_pos);
                crate::eviction::EvictionPolicy::on_hit(
                    &mut self.cores[set.0],
                    block,
                    way,
                    cost,
                    is_lru,
                );
            }

            fn on_miss(
                &mut self,
                set: cache_sim::SetIndex,
                view: &cache_sim::SetView<'_>,
                block: cache_sim::BlockAddr,
            ) {
                let lru = crate::eviction::lru_of(view);
                crate::eviction::EvictionPolicy::on_miss(&mut self.cores[set.0], block, lru);
            }

            fn on_fill(
                &mut self,
                set: cache_sim::SetIndex,
                block: cache_sim::BlockAddr,
                way: cache_sim::Way,
                cost: cache_sim::Cost,
            ) {
                crate::eviction::EvictionPolicy::on_fill(&mut self.cores[set.0], block, way, cost);
            }

            fn on_invalidate(
                &mut self,
                set: cache_sim::SetIndex,
                block: cache_sim::BlockAddr,
                _resident: Option<(cache_sim::Way, usize)>,
                _kind: cache_sim::InvalidateKind,
            ) {
                crate::eviction::EvictionPolicy::on_remove(&mut self.cores[set.0], block);
            }
        }
    };
}

pub(crate) use impl_replacement_via_cores;

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::WayView;

    fn entries(costs: &[(u64, u64)]) -> Vec<WayView> {
        costs
            .iter()
            .enumerate()
            .map(|(i, &(b, c))| WayView {
                way: Way(i),
                block: BlockAddr(b),
                cost: Cost(c),
                dirty: false,
            })
            .collect()
    }

    #[test]
    fn lru_core_picks_the_lru_way() {
        let e = entries(&[(1, 5), (2, 9), (3, 1)]);
        let mut core = LruCore::new();
        assert_eq!(core.victim(&SetView::new(&e)), Way(2));
        assert_eq!(core.name(), "LRU");
    }

    #[test]
    fn boxed_core_dispatches() {
        let e = entries(&[(1, 5), (2, 9)]);
        let mut boxed: Box<dyn EvictionPolicy> = Box::new(LruCore::new());
        assert_eq!(boxed.victim(&SetView::new(&e)), Way(1));
        // Default notifications are no-ops and must not panic.
        boxed.on_hit(BlockAddr(1), Way(0), Cost(5), false);
        boxed.on_miss(BlockAddr(7), Some((BlockAddr(2), Cost(9))));
        boxed.on_fill(BlockAddr(7), Way(1), Cost(3));
        boxed.on_remove(BlockAddr(7));
    }

    #[test]
    fn hit_args_reports_lru_position() {
        let e = entries(&[(1, 5), (2, 9)]);
        let v = SetView::new(&e);
        assert_eq!(hit_args(&v, 0), (BlockAddr(1), Cost(5), false));
        assert_eq!(hit_args(&v, 1), (BlockAddr(2), Cost(9), true));
        assert_eq!(lru_of(&v), Some((BlockAddr(2), Cost(9))));
        assert_eq!(lru_of(&SetView::new(&[])), None);
    }
}
