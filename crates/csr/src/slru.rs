//! Segmented LRU (SLRU): probationary + protected segments.
//!
//! New blocks enter a **probationary** segment; a hit promotes the block
//! into a **protected** segment sized at ~80% of the region. Victims come
//! from the probationary LRU end first, so a block must prove reuse before
//! it can displace established residents — the classic single-pass scan
//! filter. When the protected segment overflows, its LRU block is demoted
//! back to the probationary MRU end (not evicted), preserving one more
//! chance at reuse.
//!
//! Both segments are lazy-deletion queues: every enqueue carries a fresh
//! sequence number, and an entry is live only while the block's metadata
//! still names that sequence, so hits and demotions are O(1) with stale
//! entries skipped when they surface at a queue head.
//!
//! The single-region logic lives in [`SlruCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`Slru`] replicates one
//! core per set for the simulator.

use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use cache_sim::{BlockAddr, Cost, Geometry, SetView, Way};
use csr_obs::{NopObserver, Observer};
use std::collections::{HashMap, VecDeque};

/// Counters specific to [`Slru`] / [`SlruCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlruStats {
    /// Total victim selections.
    pub victims: u64,
    /// Victim selections that chose a block other than the LRU block.
    pub non_lru_victims: u64,
    /// Hits that promoted a probationary block into the protected segment.
    pub promotions: u64,
    /// Protected-segment overflows demoted back to probationary.
    pub demotions: u64,
}

impl SlruStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &SlruStats) {
        self.victims += other.victims;
        self.non_lru_victims += other.non_lru_victims;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
    }
}

#[derive(Debug, Clone, Copy)]
struct SlruMeta {
    protected: bool,
    seq: u64,
}

/// SLRU for a single replacement region of a fixed number of ways.
#[derive(Debug, Clone)]
pub struct SlruCore<O: Observer = NopObserver> {
    /// Resident blocks only; names the live queue entry per block.
    meta: HashMap<BlockAddr, SlruMeta>,
    /// LRU order front → back; entries live iff `(block, seq)` matches.
    prob: VecDeque<(BlockAddr, u64)>,
    prot: VecDeque<(BlockAddr, u64)>,
    prob_len: usize,
    prot_len: usize,
    prot_target: usize,
    next_seq: u64,
    stats: SlruStats,
    obs: O,
}

impl SlruCore {
    /// Creates a core for a region of `ways` blockframes.
    #[must_use]
    pub fn new(ways: usize) -> Self {
        SlruCore {
            meta: HashMap::new(),
            prob: VecDeque::new(),
            prot: VecDeque::new(),
            prob_len: 0,
            prot_len: 0,
            prot_target: (ways * 4 / 5).max(1),
            next_seq: 0,
            stats: SlruStats::default(),
            obs: NopObserver,
        }
    }
}

impl<O: Observer> SlruCore<O> {
    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &SlruStats {
        &self.stats
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> SlruCore<O2> {
        SlruCore {
            meta: self.meta,
            prob: self.prob,
            prot: self.prot,
            prob_len: self.prob_len,
            prot_len: self.prot_len,
            prot_target: self.prot_target,
            next_seq: self.next_seq,
            stats: self.stats,
            obs,
        }
    }

    fn seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Pops probationary heads until one is live there.
    fn pop_live_prob(&mut self) -> Option<BlockAddr> {
        while let Some((b, seq)) = self.prob.pop_front() {
            if self
                .meta
                .get(&b)
                .is_some_and(|m| !m.protected && m.seq == seq)
            {
                return Some(b);
            }
        }
        None
    }

    /// Pops protected heads until one is live there.
    fn pop_live_prot(&mut self) -> Option<BlockAddr> {
        while let Some((b, seq)) = self.prot.pop_front() {
            if self
                .meta
                .get(&b)
                .is_some_and(|m| m.protected && m.seq == seq)
            {
                return Some(b);
            }
        }
        None
    }

    /// Books the eviction of the view entry at `pos` and returns its way.
    fn finish(&mut self, view: &SetView<'_>, pos: usize) -> Way {
        self.stats.victims += 1;
        let chosen = view.at(pos);
        self.obs.on_evict(chosen.block, chosen.cost);
        if pos + 1 != view.len() {
            self.stats.non_lru_victims += 1;
            let lru = view.lru();
            self.obs.on_reserve(lru.block, chosen.block, chosen.cost);
        }
        chosen.way
    }
}

impl<O: Observer> EvictionPolicy for SlruCore<O> {
    fn name(&self) -> &'static str {
        "SLRU"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        let mut by_block = HashMap::with_capacity(view.len());
        for (pos, e) in view.iter().enumerate() {
            by_block.insert(e.block, pos);
        }
        // Probationary LRU end first, then protected LRU end; skip blocks
        // the view does not contain (a core hot-attached to a warm region).
        let mut guard = self.prob.len() + self.prot.len() + 2;
        while guard > 0 {
            guard -= 1;
            let (b, from_prob) = match self.pop_live_prob() {
                Some(b) => (b, true),
                None => {
                    self.prob_len = 0;
                    match self.pop_live_prot() {
                        Some(b) => (b, false),
                        None => break,
                    }
                }
            };
            if from_prob {
                self.prob_len = self.prob_len.saturating_sub(1);
            } else {
                self.prot_len = self.prot_len.saturating_sub(1);
            }
            self.meta.remove(&b);
            if let Some(&pos) = by_block.get(&b) {
                return self.finish(view, pos);
            }
        }
        // Fresh or desynced core: evict the LRU block.
        let lru = view.lru();
        if let Some(m) = self.meta.remove(&lru.block) {
            if m.protected {
                self.prot_len = self.prot_len.saturating_sub(1);
            } else {
                self.prob_len = self.prob_len.saturating_sub(1);
            }
        }
        self.finish(view, view.len() - 1)
    }

    fn on_hit(&mut self, block: BlockAddr, _way: Way, cost: Cost, _is_lru: bool) {
        let seq = self.seq();
        if let Some(m) = self.meta.get_mut(&block) {
            if !m.protected {
                self.prob_len = self.prob_len.saturating_sub(1);
                self.prot_len += 1;
                self.stats.promotions += 1;
            } else {
                // Re-enqueue at the protected MRU end (length unchanged).
            }
            m.protected = true;
            m.seq = seq;
            self.prot.push_back((block, seq));
            // Overflow: demote the protected LRU block to probationary MRU.
            if self.prot_len > self.prot_target {
                if let Some(d) = self.pop_live_prot() {
                    let dseq = self.seq();
                    if let Some(dm) = self.meta.get_mut(&d) {
                        dm.protected = false;
                        dm.seq = dseq;
                    }
                    self.prob.push_back((d, dseq));
                    self.prot_len -= 1;
                    self.prob_len += 1;
                    self.stats.demotions += 1;
                }
            }
        }
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
    }

    fn on_fill(&mut self, block: BlockAddr, _way: Way, _cost: Cost) {
        if self.meta.contains_key(&block) {
            // Overwrite of a resident block keeps its segment position.
            return;
        }
        let seq = self.seq();
        self.meta.insert(
            block,
            SlruMeta {
                protected: false,
                seq,
            },
        );
        self.prob.push_back((block, seq));
        self.prob_len += 1;
    }

    fn on_remove(&mut self, block: BlockAddr) {
        if let Some(m) = self.meta.remove(&block) {
            if m.protected {
                self.prot_len = self.prot_len.saturating_sub(1);
            } else {
                self.prob_len = self.prob_len.saturating_sub(1);
            }
        }
    }
}

/// The SLRU replacement policy (one [`SlruCore`] per set).
#[derive(Debug, Clone)]
pub struct Slru<O: Observer = NopObserver> {
    cores: Vec<SlruCore<O>>,
}

impl Slru {
    /// Creates an SLRU policy for the given cache geometry.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Slru {
            cores: (0..geom.num_sets())
                .map(|_| SlruCore::new(geom.assoc()))
                .collect(),
        }
    }
}

impl<O: Observer> Slru<O> {
    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> SlruStats {
        let mut total = SlruStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> Slru<O2> {
        Slru {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(Slru, "SLRU");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache};

    /// One-set, 2-way cache (protected target 1).
    fn cache2() -> Cache<Slru> {
        let geom = Geometry::new(128, 64, 2);
        Cache::new(geom, Slru::new(&geom))
    }

    #[test]
    fn protected_block_survives_probationary_churn() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(1)); // promote 0
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        // 1 is MRU but probationary: it goes, not the protected LRU 0.
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(1)));
        let s = c.policy().stats();
        assert_eq!(s.promotions, 1);
        assert_eq!(s.non_lru_victims, 1);
    }

    #[test]
    fn one_touch_stream_behaves_like_lru() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(1));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(!c.contains(BlockAddr(0)), "probationary FIFO = LRU order");
        assert!(c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().non_lru_victims, 0);
    }

    #[test]
    fn protected_overflow_demotes_to_probationary() {
        // 4 ways: protected target is 3, so promoting all four demotes the
        // protected LRU (block 0) back to probationary — and it is the next
        // victim even though blocks promoted after it were touched earlier.
        let geom = Geometry::new(256, 64, 4);
        let mut c = Cache::new(geom, Slru::new(&geom));
        for b in 0..4u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        for b in 0..4u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert_eq!(c.policy().stats().demotions, 1);
        c.access(BlockAddr(4), AccessType::Read, Cost(1));
        assert!(!c.contains(BlockAddr(0)), "demoted block is evicted first");
        for b in 1..4u64 {
            assert!(c.contains(BlockAddr(b)), "protected block {b} survived");
        }
    }

    #[test]
    fn empty_segments_fall_back_to_lru() {
        use cache_sim::WayView;
        let entries: Vec<WayView> = (0..4u64)
            .map(|b| WayView {
                way: Way(b as usize),
                block: BlockAddr(b),
                cost: Cost(1),
                dirty: false,
            })
            .collect();
        let mut core = SlruCore::new(4);
        assert_eq!(core.victim(&SetView::new(&entries)), Way(3));
        assert_eq!(core.name(), "SLRU");
    }
}
