//! Offline (clairvoyant) replacement baselines.
//!
//! Two offline references complement the on-line algorithms:
//!
//! * [`simulate_belady`] — Belady's OPT, which minimizes the **miss count**
//!   of a set-associative cache by always evicting the resident block whose
//!   next reference is farthest in the future.
//! * [`simulate_cost_greedy`] — a cost-aware clairvoyant heuristic: dead
//!   blocks (never referenced again) are evicted first; otherwise the block
//!   with the farthest next reference among the *cheapest* resident blocks
//!   is chosen.
//!
//! The second is *not* the paper's optimal CSOPT (Jeong & Dubois, SPAA
//! 1999) — CSOPT requires branch-and-bound over reservation schedules —
//! but it provides a useful clairvoyant reference point for the aggregate
//! cost, and it degenerates to Belady's OPT under uniform costs. This is an
//! extension beyond the paper, used by the benches to situate the on-line
//! algorithms.

use std::collections::HashMap;

use cache_sim::{BlockAddr, Cost, Geometry};

/// One event of an offline trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A reference to `block` whose miss (if it misses) costs `cost`.
    Access {
        /// Referenced block.
        block: BlockAddr,
        /// Cost charged if this access misses.
        cost: Cost,
    },
    /// A coherence invalidation of `block` (e.g. a remote write).
    Invalidate {
        /// Invalidated block.
        block: BlockAddr,
    },
}

/// Results of an offline simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfflineStats {
    /// Number of `Access` events.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Sum of the costs of all misses.
    pub aggregate_cost: Cost,
}

/// Which clairvoyant eviction rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    Belady,
    CostGreedy,
}

/// Simulates Belady's OPT (miss-count optimal) on `events`.
///
/// # Examples
///
/// ```
/// use cache_sim::{BlockAddr, Cost, Geometry};
/// use csr::opt::{simulate_belady, TraceEvent};
///
/// let geom = Geometry::new(128, 64, 2); // one 2-way set
/// let ev = |b: u64| TraceEvent::Access { block: BlockAddr(b), cost: Cost(1) };
/// // A B C A B: filling C evicts B (its next use is farther than A's), so
/// // B misses once more: 4 misses, versus 5 under LRU (which evicts A).
/// let stats = simulate_belady(&geom, &[ev(0), ev(1), ev(2), ev(0), ev(1)]);
/// assert_eq!(stats.misses, 4);
/// ```
#[must_use]
pub fn simulate_belady(geom: &Geometry, events: &[TraceEvent]) -> OfflineStats {
    simulate(geom, events, Rule::Belady)
}

/// Simulates the cost-aware clairvoyant heuristic on `events`.
#[must_use]
pub fn simulate_cost_greedy(geom: &Geometry, events: &[TraceEvent]) -> OfflineStats {
    simulate(geom, events, Rule::CostGreedy)
}

/// For each event index, the index of the next `Access` to the same block
/// (`usize::MAX` when there is none). `Invalidate` events get `usize::MAX`.
fn next_use_table(events: &[TraceEvent]) -> Vec<usize> {
    let mut next = vec![usize::MAX; events.len()];
    let mut last_seen: HashMap<BlockAddr, usize> = HashMap::new();
    for (i, ev) in events.iter().enumerate().rev() {
        if let TraceEvent::Access { block, .. } = ev {
            next[i] = last_seen.get(block).copied().unwrap_or(usize::MAX);
            last_seen.insert(*block, i);
        }
    }
    next
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    block: BlockAddr,
    cost: Cost,
    next_use: usize,
}

fn simulate(geom: &Geometry, events: &[TraceEvent], rule: Rule) -> OfflineStats {
    let next = next_use_table(events);
    let mut sets: Vec<Vec<Resident>> = vec![Vec::new(); geom.num_sets()];
    let mut stats = OfflineStats::default();

    for (i, ev) in events.iter().enumerate() {
        match *ev {
            TraceEvent::Invalidate { block } => {
                let set = &mut sets[geom.set_of(block).0];
                set.retain(|r| r.block != block);
            }
            TraceEvent::Access { block, cost } => {
                stats.accesses += 1;
                let set_idx = geom.set_of(block).0;
                let set = &mut sets[set_idx];
                if let Some(r) = set.iter_mut().find(|r| r.block == block) {
                    stats.hits += 1;
                    r.next_use = next[i];
                    continue;
                }
                stats.misses += 1;
                stats.aggregate_cost += cost;
                if set.len() >= geom.assoc() {
                    let victim_idx = match rule {
                        Rule::Belady => set
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, r)| r.next_use)
                            .map(|(idx, _)| idx)
                            .expect("nonempty set"),
                        Rule::CostGreedy => {
                            // Dead blocks first (free to evict); otherwise
                            // the farthest-used among the cheapest blocks.
                            if let Some((idx, _)) = set
                                .iter()
                                .enumerate()
                                .find(|(_, r)| r.next_use == usize::MAX)
                            {
                                idx
                            } else {
                                let min_cost =
                                    set.iter().map(|r| r.cost).min().expect("nonempty set");
                                set.iter()
                                    .enumerate()
                                    .filter(|(_, r)| r.cost == min_cost)
                                    .max_by_key(|(_, r)| r.next_use)
                                    .map(|(idx, _)| idx)
                                    .expect("nonempty min-cost class")
                            }
                        }
                    };
                    set.swap_remove(victim_idx);
                }
                set.push(Resident {
                    block,
                    cost,
                    next_use: next[i],
                });
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache, Lru};

    fn acc(b: u64, c: u64) -> TraceEvent {
        TraceEvent::Access {
            block: BlockAddr(b),
            cost: Cost(c),
        }
    }

    fn one_set(assoc: usize) -> Geometry {
        Geometry::new(64 * assoc as u64, 64, assoc)
    }

    #[test]
    fn belady_beats_lru_on_cyclic_pattern() {
        // Cyclic access over assoc+1 blocks: LRU misses everything, OPT does
        // not.
        let geom = one_set(2);
        let trace: Vec<TraceEvent> = (0..30).map(|i| acc(i % 3, 1)).collect();
        let opt = simulate_belady(&geom, &trace);
        let mut lru = Cache::new(geom, Lru::new());
        for ev in &trace {
            if let TraceEvent::Access { block, cost } = ev {
                lru.access(*block, AccessType::Read, *cost);
            }
        }
        assert_eq!(lru.stats().misses, 30, "LRU thrashes the cyclic pattern");
        // OPT's steady-state miss rate on m blocks over k frames is
        // (m-k)/(m-1) = 1/2 here: 2 cold + 14 steady misses = 16.
        assert_eq!(opt.misses, 16);
    }

    #[test]
    fn hit_accounting_matches() {
        let geom = one_set(2);
        let trace = vec![acc(0, 1), acc(0, 1), acc(0, 1)];
        let s = simulate_belady(&geom, &trace);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.aggregate_cost, Cost(1));
    }

    #[test]
    fn invalidation_forces_remiss() {
        let geom = one_set(2);
        let trace = vec![
            acc(0, 5),
            TraceEvent::Invalidate {
                block: BlockAddr(0),
            },
            acc(0, 5),
        ];
        let s = simulate_belady(&geom, &trace);
        assert_eq!(s.misses, 2);
        assert_eq!(s.aggregate_cost, Cost(10));
    }

    #[test]
    fn cost_greedy_prefers_cheap_victims() {
        // 2-way set: expensive A, cheap B, both re-referenced later; filling
        // C should displace B (cheap), saving cost over Belady tie.
        let geom = one_set(2);
        let trace = vec![
            acc(0, 9), // A
            acc(1, 1), // B
            acc(2, 1), // C: evict among A/B
            acc(0, 9),
            acc(1, 1),
        ];
        let s = simulate_cost_greedy(&geom, &trace);
        // Misses: A, B, C, then B only (A kept). Cost = 9+1+1+1 = 12.
        assert_eq!(s.aggregate_cost, Cost(12));
        let b = simulate_belady(&geom, &trace);
        assert!(s.aggregate_cost < b.aggregate_cost || b.misses <= s.misses);
    }

    #[test]
    fn cost_greedy_equals_belady_under_uniform_costs_here() {
        let geom = one_set(2);
        let trace: Vec<TraceEvent> = (0..40).map(|i| acc((i * 7) % 5, 1)).collect();
        let a = simulate_belady(&geom, &trace);
        let b = simulate_cost_greedy(&geom, &trace);
        // Not necessarily identical victim-by-victim (tie-breaks differ),
        // but the dead-block-first rule keeps it within OPT's miss count on
        // this small pattern.
        assert_eq!(a.accesses, b.accesses);
        assert!(b.misses >= a.misses, "Belady is the miss-count floor");
    }

    #[test]
    fn next_use_table_is_correct() {
        let trace = vec![acc(0, 1), acc(1, 1), acc(0, 1)];
        let next = next_use_table(&trace);
        assert_eq!(next, vec![2, usize::MAX, usize::MAX]);
    }
}
