//! LFU with Dynamic Aging (LFUDA, Arlitt et al.).
//!
//! Pure LFU never forgets: a block that was hot last week outranks
//! everything accessed today. LFUDA fixes that with a region-wide age `L`:
//! a block's key is `K = L + freq`, and `L` is raised to the evicted key on
//! every eviction. Long-idle blocks stop accruing frequency while `L`
//! climbs past them, so new traffic can displace stale heavyweights without
//! any periodic decay sweep.
//!
//! Cost-oblivious (see [`GdsfCore`](crate::GdsfCore) for the cost-aware
//! sibling); ties break toward the LRU end, the same locality tiebreak the
//! other cores use.
//!
//! The single-region logic lives in [`LfudaCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`Lfuda`] replicates one
//! core per set for the simulator.

use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use cache_sim::{BlockAddr, Cost, Geometry, SetView, Way};
use csr_obs::{NopObserver, Observer};

/// Counters specific to [`Lfuda`] / [`LfudaCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LfudaStats {
    /// Total victim selections.
    pub victims: u64,
    /// Victim selections that chose a block other than the LRU block.
    pub non_lru_victims: u64,
}

impl LfudaStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &LfudaStats) {
        self.victims += other.victims;
        self.non_lru_victims += other.non_lru_victims;
    }
}

/// LFUDA for a single replacement region of a fixed number of ways.
#[derive(Debug, Clone)]
pub struct LfudaCore<O: Observer = NopObserver> {
    /// Access count per way (reset on fill).
    freq: Vec<u64>,
    /// `K = L-at-last-touch + freq` per way.
    prio: Vec<u64>,
    /// The region age `L`: the key of the last evicted block.
    age: u64,
    stats: LfudaStats,
    obs: O,
}

impl LfudaCore {
    /// Creates a core for a region of `ways` blockframes.
    #[must_use]
    pub fn new(ways: usize) -> Self {
        LfudaCore {
            freq: vec![0; ways],
            prio: vec![0; ways],
            age: 0,
            stats: LfudaStats::default(),
            obs: NopObserver,
        }
    }
}

impl<O: Observer> LfudaCore<O> {
    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &LfudaStats {
        &self.stats
    }

    /// The current region age `L`.
    #[must_use]
    pub fn age(&self) -> u64 {
        self.age
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> LfudaCore<O2> {
        LfudaCore {
            freq: self.freq,
            prio: self.prio,
            age: self.age,
            stats: self.stats,
            obs,
        }
    }
}

impl<O: Observer> EvictionPolicy for LfudaCore<O> {
    fn name(&self) -> &'static str {
        "LFUDA"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        // Minimum-K block; scanning LRU -> MRU with a strict `<` makes ties
        // resolve toward the LRU end.
        let mut best: Option<(Way, usize, u64)> = None;
        for (pos, e) in view.iter().enumerate().rev() {
            let val = self.prio[e.way.0];
            match best {
                Some((_, _, b)) if b <= val => {}
                _ => best = Some((e.way, pos, val)),
            }
        }
        let (victim, pos, kmin) = best.expect("victim() requires a non-empty set");
        // Dynamic aging: the evicted key becomes the region age.
        self.age = self.age.max(kmin);
        self.stats.victims += 1;
        let chosen = view.at(pos);
        self.obs.on_evict(chosen.block, chosen.cost);
        if pos + 1 != view.len() {
            self.stats.non_lru_victims += 1;
            let lru = view.lru();
            self.obs.on_reserve(lru.block, chosen.block, chosen.cost);
        }
        victim
    }

    fn on_hit(&mut self, block: BlockAddr, way: Way, cost: Cost, _is_lru: bool) {
        let f = self.freq[way.0].saturating_add(1);
        self.freq[way.0] = f;
        self.prio[way.0] = self.age.saturating_add(f);
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
    }

    fn on_fill(&mut self, _block: BlockAddr, way: Way, _cost: Cost) {
        self.freq[way.0] = 1;
        self.prio[way.0] = self.age.saturating_add(1);
    }
}

/// The LFUDA replacement policy (one [`LfudaCore`] per set).
#[derive(Debug, Clone)]
pub struct Lfuda<O: Observer = NopObserver> {
    cores: Vec<LfudaCore<O>>,
}

impl Lfuda {
    /// Creates an LFUDA policy for the given cache geometry.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Lfuda {
            cores: (0..geom.num_sets())
                .map(|_| LfudaCore::new(geom.assoc()))
                .collect(),
        }
    }
}

impl<O: Observer> Lfuda<O> {
    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> LfudaStats {
        let mut total = LfudaStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> Lfuda<O2> {
        Lfuda {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(Lfuda, "LFUDA");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache};

    /// One-set, 2-way cache for controlled scenarios.
    fn cache2() -> Cache<Lfuda> {
        let geom = Geometry::new(128, 64, 2);
        Cache::new(geom, Lfuda::new(&geom))
    }

    #[test]
    fn frequency_outranks_recency() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(1)); // K(0) = 3
        c.access(BlockAddr(1), AccessType::Read, Cost(1)); // K(1) = 1, MRU
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().non_lru_victims, 1);
    }

    #[test]
    fn aging_eventually_displaces_stale_heavyweights() {
        let mut c = cache2();
        for _ in 0..3 {
            c.access(BlockAddr(0), AccessType::Read, Cost(1)); // K(0) = 3
        }
        // A one-touch stream: each fill enters at K = L + 1, each eviction
        // raises L, until the newcomers match the idle heavyweight.
        for b in 1..5u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(
            !c.contains(BlockAddr(0)),
            "the idle high-frequency block must age out"
        );
    }

    #[test]
    fn ties_break_toward_lru() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(1));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(!c.contains(BlockAddr(0)));
        assert_eq!(c.policy().stats().non_lru_victims, 0);
    }
}
