//! GreedyDual (GD) adapted to processor caches (Section 2.1).
//!
//! GD is *cost-centric*: the victim is always the block with the least
//! remaining value `H`, regardless of recency. On a fill `H` is set to the
//! block's miss cost; on a hit the full miss cost is restored; when a block
//! is victimized, its `H` is deducted from every remaining block in the set.
//! Ties are broken toward the LRU end of the stack, which is the only place
//! locality enters the decision.
//!
//! GD is `s`-competitive with the offline optimum (Young, 1994) and works
//! well for wide cost differentials, but the paper shows it is much less
//! effective than the locality-centric BCL/DCL/ACL when cost ratios are
//! small.
//!
//! The single-region logic lives in [`GdCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`GreedyDual`] replicates one
//! core per set for the simulator.

use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use cache_sim::{BlockAddr, Cost, Geometry, SetView, Way};
use csr_obs::{NopObserver, Observer};

/// Counters specific to [`GreedyDual`] / [`GdCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GdStats {
    /// Victim selections that chose a block other than the LRU block.
    pub non_lru_victims: u64,
    /// Total victim selections.
    pub victims: u64,
}

impl GdStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &GdStats) {
        self.non_lru_victims += other.non_lru_victims;
        self.victims += other.victims;
    }
}

/// GreedyDual for a single replacement region of a fixed number of ways.
#[derive(Debug, Clone)]
pub struct GdCore<O: Observer = NopObserver> {
    /// `H` value per way.
    h: Vec<u64>,
    stats: GdStats,
    obs: O,
}

impl GdCore {
    /// Creates a core for a region of `ways` blockframes.
    #[must_use]
    pub fn new(ways: usize) -> Self {
        GdCore {
            h: vec![0; ways],
            stats: GdStats::default(),
            obs: NopObserver,
        }
    }
}

impl<O: Observer> GdCore<O> {
    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &GdStats {
        &self.stats
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> GdCore<O2> {
        GdCore {
            h: self.h,
            stats: self.stats,
            obs,
        }
    }
}

impl<O: Observer> EvictionPolicy for GdCore<O> {
    fn name(&self) -> &'static str {
        "GD"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        // Minimum-H block; scanning LRU -> MRU with a strict `<` makes ties
        // resolve toward the LRU end.
        let mut best: Option<(Way, usize, u64)> = None;
        for (pos, e) in view.iter().enumerate().rev() {
            let val = self.h[e.way.0];
            match best {
                Some((_, _, b)) if b <= val => {}
                _ => best = Some((e.way, pos, val)),
            }
        }
        let (victim, pos, hmin) = best.expect("victim() requires a non-empty set");
        // Deduct the victim's remaining value from every surviving block.
        for e in view.iter() {
            if e.way != victim {
                self.h[e.way.0] = self.h[e.way.0].saturating_sub(hmin);
            }
        }
        self.stats.victims += 1;
        let chosen = view.at(pos);
        self.obs.on_evict(chosen.block, chosen.cost);
        if pos + 1 != view.len() {
            self.stats.non_lru_victims += 1;
            // GD has no reservation per se; report the spared LRU block so
            // non-LRU victimizations show up in decision traces.
            let lru = view.lru();
            self.obs.on_reserve(lru.block, chosen.block, chosen.cost);
        }
        victim
    }

    fn on_hit(&mut self, block: BlockAddr, way: Way, cost: Cost, _is_lru: bool) {
        // Restore the block's full miss cost (stored in its blockframe).
        self.h[way.0] = cost.0;
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
    }

    fn on_fill(&mut self, _block: BlockAddr, way: Way, cost: Cost) {
        self.h[way.0] = cost.0;
    }
}

/// The GreedyDual replacement policy (one [`GdCore`] per set).
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
/// use csr::GreedyDual;
///
/// let geom = Geometry::new(16 * 1024, 64, 4);
/// let mut cache = Cache::new(geom, GreedyDual::new(&geom));
/// cache.access(BlockAddr(1), AccessType::Read, Cost(8)); // high-cost block
/// cache.access(BlockAddr(1), AccessType::Read, Cost(8)); // hit restores H
/// ```
#[derive(Debug, Clone)]
pub struct GreedyDual<O: Observer = NopObserver> {
    cores: Vec<GdCore<O>>,
}

impl GreedyDual {
    /// Creates a GreedyDual policy for the given cache geometry.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        GreedyDual {
            cores: (0..geom.num_sets())
                .map(|_| GdCore::new(geom.assoc()))
                .collect(),
        }
    }
}

impl<O: Observer> GreedyDual<O> {
    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> GdStats {
        let mut total = GdStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> GreedyDual<O2> {
        GreedyDual {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(GreedyDual, "GD");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache};

    /// One-set, 2-way cache for controlled scenarios.
    fn cache2() -> Cache<GreedyDual> {
        let geom = Geometry::new(128, 64, 2);
        Cache::new(geom, GreedyDual::new(&geom))
    }

    #[test]
    fn victimizes_cheapest_not_lru() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // high cost
        c.access(BlockAddr(1), AccessType::Read, Cost(1)); // low cost, MRU
                                                           // Block 0 is LRU but expensive: GD evicts block 1.
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().non_lru_victims, 1);
    }

    #[test]
    fn eviction_depreciates_survivors() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(3));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // evicts 1 (H=3): H(0) = 8-3 = 5
                                                           // Next eviction: H(0)=5, H(2)=1 -> evicts 2, H(0) drops to 4.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(2)));
        // Two more cheap evictions exhaust block 0's H: 4-1=3, 3-1=2, ...
        for b in 4..8u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(!c.contains(BlockAddr(0)), "H must eventually deplete");
    }

    #[test]
    fn hit_restores_full_cost() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // evicts 1, H(0)=3
        c.access(BlockAddr(0), AccessType::Read, Cost(4)); // hit: H(0) restored to 4
                                                           // Evict: H(0)=4 vs H(2)=1 -> 2 goes.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(2)));
    }

    #[test]
    fn ties_break_toward_lru() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(5));
        c.access(BlockAddr(1), AccessType::Read, Cost(5));
        // Equal H: the LRU block (0) must be chosen.
        c.access(BlockAddr(2), AccessType::Read, Cost(5));
        assert!(!c.contains(BlockAddr(0)));
        assert!(c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().non_lru_victims, 0);
    }

    #[test]
    fn uniform_costs_behave_like_lru_on_this_sequence() {
        // With all costs equal and H restored on hits, recently-touched
        // blocks always have maximal H, so eviction falls to the LRU end.
        let geom = Geometry::new(256, 64, 4);
        let mut c = Cache::new(geom, GreedyDual::new(&geom));
        for b in [0u64, 4, 8, 12] {
            c.access(BlockAddr(b), AccessType::Read, Cost(2));
        }
        c.access(BlockAddr(0), AccessType::Read, Cost(2)); // touch 0
        c.access(BlockAddr(16), AccessType::Read, Cost(2)); // evict: LRU is 4
        assert!(!c.contains(BlockAddr(4)));
        assert!(c.contains(BlockAddr(0)));
    }

    #[test]
    fn per_set_stats_aggregate() {
        // Two sets (block line 64, 2 ways, 256 bytes): blocks 0/2 map to set
        // 0, blocks 1/3 to set 1.
        let geom = Geometry::new(256, 64, 2);
        let mut c = Cache::new(geom, GreedyDual::new(&geom));
        for b in [0u64, 2, 4, 1, 3, 5] {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert_eq!(c.policy().stats().victims, 2, "one eviction per set");
    }
}
