//! The Extended Tag Directory (ETD) of Section 2.4.
//!
//! The ETD remembers, per set, the most recently displaced blocks that were
//! victimized *instead of* the reserved LRU block (at most `s-1` of them —
//! older displacements would miss even under pure LRU, as the paper proves).
//! A later access that misses in the cache but hits in the ETD is evidence
//! the reservation caused a miss, and triggers depreciation of the reserved
//! block's cost.
//!
//! To cut hardware cost, entries may store only the low `k` bits of the tag
//! (`tag aliasing`, Section 2.4/4.3): aliasing can cause *false matches*,
//! which depreciate reservations more aggressively but never affect
//! correctness. [`EtdStats::false_matches`] measures how often that happens,
//! mirroring the false-match ratios the paper reports in Section 4.3.
//!
//! The directory of a single replacement region is an [`EtdSet`]; the
//! set-indexed [`Etd`] used by the simulator policies is a thin array of
//! them. Consumers that manage one region per policy instance (such as the
//! shards of `csr-cache`) embed an `EtdSet` directly.

use cache_sim::{BlockAddr, Cost, SetIndex};

/// Configuration of an [`Etd`] / [`EtdSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtdConfig {
    /// Valid entries kept per set; the paper uses `assoc - 1`.
    pub entries_per_set: usize,
    /// Number of low tag bits stored and compared; `None` stores the full
    /// tag (no aliasing). The paper's aliased configuration uses 4 bits.
    pub tag_bits: Option<u32>,
}

impl EtdConfig {
    /// Full-tag ETD with `assoc - 1` entries per set (the paper's DCL/ACL
    /// configuration).
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero.
    #[must_use]
    pub fn for_assoc(assoc: usize) -> Self {
        assert!(assoc > 0, "associativity must be nonzero");
        EtdConfig {
            entries_per_set: assoc.saturating_sub(1),
            tag_bits: None,
        }
    }

    /// Same, but storing only the low `bits` bits of the tag (Section 4.3
    /// uses 4 bits).
    #[must_use]
    pub fn for_assoc_aliased(assoc: usize, bits: u32) -> Self {
        assert!(assoc > 0, "associativity must be nonzero");
        assert!(
            (1..=63).contains(&bits),
            "alias tag width must be 1..=63 bits"
        );
        EtdConfig {
            entries_per_set: assoc.saturating_sub(1),
            tag_bits: Some(bits),
        }
    }
}

/// Counters accumulated by an [`Etd`] / [`EtdSet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EtdStats {
    /// Entries allocated.
    pub allocations: u64,
    /// Allocations that displaced a younger valid entry (directory full).
    pub capacity_evictions: u64,
    /// Probe hits (including false matches under tag aliasing).
    pub hits: u64,
    /// Probe hits whose full block address did not actually match — only
    /// possible with tag aliasing.
    pub false_matches: u64,
    /// Entries dropped by coherence invalidations.
    pub invalidated: u64,
    /// Whole-set flushes (on a hit to the in-cache LRU block).
    pub set_clears: u64,
}

impl EtdStats {
    /// Fraction of probe hits that were aliasing artifacts, in `[0, 1]`.
    #[must_use]
    pub fn false_match_rate(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.false_matches as f64 / self.hits as f64
        }
    }

    /// Accumulates `other` into `self` (counter-wise sum), for rolling the
    /// per-region directories of a sharded or set-indexed structure into one
    /// aggregate.
    pub fn merge(&mut self, other: &EtdStats) {
        self.allocations += other.allocations;
        self.capacity_evictions += other.capacity_evictions;
        self.hits += other.hits;
        self.false_matches += other.false_matches;
        self.invalidated += other.invalidated;
        self.set_clears += other.set_clears;
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// The stored (possibly truncated) tag that hardware would compare.
    stored_tag: u64,
    /// The full block address, kept only to *measure* false matches.
    full_block: BlockAddr,
    cost: Cost,
}

/// The Extended Tag Directory of a **single replacement region** (one cache
/// set in the simulator, one shard in `csr-cache`): shadow records of the
/// blocks most recently displaced instead of the reserved LRU block.
#[derive(Debug, Clone)]
pub struct EtdSet {
    cfg: EtdConfig,
    /// Low bits of the block address that form the set index; identical for
    /// every block mapping to this region and stripped before the (possibly
    /// truncated) tag comparison, as hardware would. Zero when the region
    /// is not set-indexed (a shard keyed by full block identity).
    stripped_bits: u32,
    /// Valid entries, oldest allocation first.
    entries: Vec<Entry>,
    stats: EtdStats,
}

impl EtdSet {
    /// Creates an empty directory whose tags are full block addresses (no
    /// set-index bits to strip) — the configuration a non-set-indexed
    /// consumer such as a cache shard wants.
    #[must_use]
    pub fn new(cfg: EtdConfig) -> Self {
        EtdSet::with_stripped_bits(cfg, 0)
    }

    /// Creates an empty directory that strips the low `bits` bits (the set
    /// index, identical for all blocks of the region) before comparing tags.
    #[must_use]
    pub fn with_stripped_bits(cfg: EtdConfig, bits: u32) -> Self {
        EtdSet {
            cfg,
            stripped_bits: bits,
            entries: Vec::new(),
            stats: EtdStats::default(),
        }
    }

    /// The configuration this directory was built with.
    #[must_use]
    pub fn config(&self) -> EtdConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &EtdStats {
        &self.stats
    }

    fn stored_tag_of(&self, block: BlockAddr) -> u64 {
        let tag = block.0 >> self.stripped_bits;
        match self.cfg.tag_bits {
            Some(bits) => tag & ((1u64 << bits) - 1),
            None => tag,
        }
    }

    /// Records that `block` (with miss cost `cost`) was displaced. Oldest
    /// entry is dropped if the directory is full.
    pub fn insert(&mut self, block: BlockAddr, cost: Cost) {
        if self.cfg.entries_per_set == 0 {
            return;
        }
        let tag = self.stored_tag_of(block);
        if self.entries.len() >= self.cfg.entries_per_set {
            self.entries.remove(0);
            self.stats.capacity_evictions += 1;
        }
        self.entries.push(Entry {
            stored_tag: tag,
            full_block: block,
            cost,
        });
        self.stats.allocations += 1;
    }

    /// Probes for `block` on a cache miss. A (possibly aliased) tag match
    /// invalidates the entry and returns its stored cost.
    ///
    /// Under tag aliasing the comparison is exactly what the narrow
    /// hardware comparator would do: the *first* entry whose stored bits
    /// match is consumed, even if a different entry was allocated for this
    /// very block — another face of the false-match behaviour Section 4.3
    /// quantifies.
    pub fn probe_and_take(&mut self, block: BlockAddr) -> Option<Cost> {
        let tag = self.stored_tag_of(block);
        let pos = self.entries.iter().position(|e| e.stored_tag == tag)?;
        let entry = self.entries.remove(pos);
        self.stats.hits += 1;
        if entry.full_block != block {
            self.stats.false_matches += 1;
        }
        Some(entry.cost)
    }

    /// Drops any entry matching `block` (coherence invalidation). Uses the
    /// same (possibly aliased) comparison the hardware would.
    pub fn invalidate(&mut self, block: BlockAddr) {
        let tag = self.stored_tag_of(block);
        let before = self.entries.len();
        self.entries.retain(|e| e.stored_tag != tag);
        self.stats.invalidated += (before - self.entries.len()) as u64;
    }

    /// Invalidates every entry (on a hit to the in-cache LRU block).
    pub fn clear(&mut self) {
        if !self.entries.is_empty() {
            self.entries.clear();
            self.stats.set_clears += 1;
        }
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory holds no valid entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `block` would (alias-)match an entry, without side effects.
    #[must_use]
    pub fn would_hit(&self, block: BlockAddr) -> bool {
        let tag = self.stored_tag_of(block);
        self.entries.iter().any(|e| e.stored_tag == tag)
    }

    /// The full block addresses currently recorded (tests).
    #[must_use]
    pub fn blocks(&self) -> Vec<BlockAddr> {
        self.entries.iter().map(|e| e.full_block).collect()
    }
}

/// The Extended Tag Directory of a set-indexed cache: one [`EtdSet`] per
/// cache set.
#[derive(Debug, Clone)]
pub struct Etd {
    cfg: EtdConfig,
    sets: Vec<EtdSet>,
}

impl Etd {
    /// Creates an empty ETD for `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two.
    #[must_use]
    pub fn new(num_sets: usize, cfg: EtdConfig) -> Self {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        let set_bits = num_sets.trailing_zeros();
        Etd {
            cfg,
            sets: (0..num_sets)
                .map(|_| EtdSet::with_stripped_bits(cfg, set_bits))
                .collect(),
        }
    }

    /// The configuration this ETD was built with.
    #[must_use]
    pub fn config(&self) -> EtdConfig {
        self.cfg
    }

    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> EtdStats {
        let mut total = EtdStats::default();
        for s in &self.sets {
            total.merge(s.stats());
        }
        total
    }

    /// The directory of one set.
    #[must_use]
    pub fn set(&self, set: SetIndex) -> &EtdSet {
        &self.sets[set.0]
    }

    /// Records that `block` (with miss cost `cost`) was displaced from `set`.
    pub fn insert(&mut self, set: SetIndex, block: BlockAddr, cost: Cost) {
        self.sets[set.0].insert(block, cost);
    }

    /// Probes `set` for `block` on a cache miss; a match is consumed.
    pub fn probe_and_take(&mut self, set: SetIndex, block: BlockAddr) -> Option<Cost> {
        self.sets[set.0].probe_and_take(block)
    }

    /// Drops any entry of `set` matching `block`.
    pub fn invalidate(&mut self, set: SetIndex, block: BlockAddr) {
        self.sets[set.0].invalidate(block);
    }

    /// Invalidates every entry of `set`.
    pub fn clear_set(&mut self, set: SetIndex) {
        self.sets[set.0].clear();
    }

    /// Number of valid entries in `set`.
    #[must_use]
    pub fn len(&self, set: SetIndex) -> usize {
        self.sets[set.0].len()
    }

    /// Whether `set` has no valid entries.
    #[must_use]
    pub fn is_empty(&self, set: SetIndex) -> bool {
        self.sets[set.0].is_empty()
    }

    /// Whether `block` would (alias-)match an entry of `set`.
    #[must_use]
    pub fn would_hit(&self, set: SetIndex, block: BlockAddr) -> bool {
        self.sets[set.0].would_hit(block)
    }

    /// The full block addresses currently recorded in `set` (tests).
    #[must_use]
    pub fn blocks_in(&self, set: SetIndex) -> Vec<BlockAddr> {
        self.sets[set.0].blocks()
    }
}

/// A read-only, set-indexed view over per-region directories that are owned
/// elsewhere (e.g. one [`EtdSet`] inside each per-set policy core). Mirrors
/// the inspection API of [`Etd`].
#[derive(Debug)]
pub struct EtdView<'a> {
    sets: Vec<&'a EtdSet>,
}

impl<'a> EtdView<'a> {
    /// Builds a view from one directory reference per set, in set order.
    #[must_use]
    pub fn new(sets: Vec<&'a EtdSet>) -> Self {
        EtdView { sets }
    }

    /// The directory of one set.
    #[must_use]
    pub fn set(&self, set: SetIndex) -> &EtdSet {
        self.sets[set.0]
    }

    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> EtdStats {
        let mut total = EtdStats::default();
        for s in &self.sets {
            total.merge(s.stats());
        }
        total
    }

    /// Number of valid entries in `set`.
    #[must_use]
    pub fn len(&self, set: SetIndex) -> usize {
        self.sets[set.0].len()
    }

    /// Whether `set` has no valid entries.
    #[must_use]
    pub fn is_empty(&self, set: SetIndex) -> bool {
        self.sets[set.0].is_empty()
    }

    /// Whether `block` would (alias-)match an entry of `set`.
    #[must_use]
    pub fn would_hit(&self, set: SetIndex, block: BlockAddr) -> bool {
        self.sets[set.0].would_hit(block)
    }

    /// The full block addresses currently recorded in `set` (tests).
    #[must_use]
    pub fn blocks_in(&self, set: SetIndex) -> Vec<BlockAddr> {
        self.sets[set.0].blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: SetIndex = SetIndex(0);

    #[test]
    fn insert_probe_take_roundtrip() {
        let mut etd = Etd::new(1, EtdConfig::for_assoc(4));
        etd.insert(S0, BlockAddr(10), Cost(3));
        assert!(etd.would_hit(S0, BlockAddr(10)));
        assert_eq!(etd.probe_and_take(S0, BlockAddr(10)), Some(Cost(3)));
        // Entry is consumed by the hit.
        assert_eq!(etd.probe_and_take(S0, BlockAddr(10)), None);
        assert_eq!(etd.stats().hits, 1);
        assert_eq!(etd.stats().false_matches, 0);
    }

    #[test]
    fn capacity_is_assoc_minus_one_oldest_evicted() {
        let mut etd = Etd::new(1, EtdConfig::for_assoc(4));
        for b in 0..5u64 {
            etd.insert(S0, BlockAddr(b), Cost(1));
        }
        assert_eq!(etd.len(S0), 3);
        // Blocks 0 and 1 (oldest) were displaced.
        assert_eq!(etd.probe_and_take(S0, BlockAddr(0)), None);
        assert_eq!(etd.probe_and_take(S0, BlockAddr(1)), None);
        assert!(etd.probe_and_take(S0, BlockAddr(2)).is_some());
        assert_eq!(etd.stats().capacity_evictions, 2);
    }

    #[test]
    fn aliasing_causes_false_matches() {
        // 4-bit tags: blocks 0x5 and 0x15 alias.
        let mut etd = Etd::new(1, EtdConfig::for_assoc_aliased(4, 4));
        etd.insert(S0, BlockAddr(0x5), Cost(7));
        let got = etd.probe_and_take(S0, BlockAddr(0x15));
        assert_eq!(got, Some(Cost(7)));
        assert_eq!(etd.stats().hits, 1);
        assert_eq!(etd.stats().false_matches, 1);
        assert!((etd.stats().false_match_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_tags_never_false_match() {
        let mut etd = Etd::new(1, EtdConfig::for_assoc(4));
        etd.insert(S0, BlockAddr(0x5), Cost(7));
        assert_eq!(etd.probe_and_take(S0, BlockAddr(0x15)), None);
        assert_eq!(etd.stats().false_matches, 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut etd = Etd::new(2, EtdConfig::for_assoc(4));
        etd.insert(S0, BlockAddr(1), Cost(1));
        etd.insert(S0, BlockAddr(2), Cost(1));
        etd.invalidate(S0, BlockAddr(1));
        assert_eq!(etd.len(S0), 1);
        etd.clear_set(S0);
        assert!(etd.is_empty(S0));
        assert_eq!(etd.stats().invalidated, 1);
        assert_eq!(etd.stats().set_clears, 1);
        // Clearing an empty set is not counted.
        etd.clear_set(S0);
        assert_eq!(etd.stats().set_clears, 1);
    }

    #[test]
    fn direct_mapped_etd_is_inert() {
        let mut etd = Etd::new(1, EtdConfig::for_assoc(1));
        etd.insert(S0, BlockAddr(1), Cost(1));
        assert!(etd.is_empty(S0));
        assert_eq!(etd.probe_and_take(S0, BlockAddr(1)), None);
    }

    #[test]
    fn sets_are_independent() {
        let mut etd = Etd::new(2, EtdConfig::for_assoc(4));
        etd.insert(SetIndex(0), BlockAddr(1), Cost(1));
        assert!(etd.is_empty(SetIndex(1)));
        assert_eq!(etd.probe_and_take(SetIndex(1), BlockAddr(1)), None);
    }

    #[test]
    fn set_index_bits_are_stripped_before_comparison() {
        // Two sets => 1 set bit. Blocks 0 and 1 differ only in that bit;
        // after stripping, their stored tags are identical — but they live
        // in different sets, so no confusion arises in a real cache.
        let etd = Etd::new(2, EtdConfig::for_assoc(4));
        assert_eq!(etd.set(SetIndex(0)).stored_tag_of(BlockAddr(0b10)), 1);
        assert_eq!(etd.set(SetIndex(1)).stored_tag_of(BlockAddr(0b11)), 1);
    }

    #[test]
    fn standalone_set_uses_full_address_as_tag() {
        let mut set = EtdSet::new(EtdConfig::for_assoc(4));
        set.insert(BlockAddr(0b10), Cost(2));
        // No bits stripped: block 0b11 does not match.
        assert!(!set.would_hit(BlockAddr(0b11)));
        assert_eq!(set.probe_and_take(BlockAddr(0b10)), Some(Cost(2)));
        assert_eq!(set.blocks(), Vec::<BlockAddr>::new());
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = EtdStats {
            allocations: 1,
            hits: 2,
            ..EtdStats::default()
        };
        let b = EtdStats {
            allocations: 3,
            false_matches: 1,
            ..EtdStats::default()
        };
        a.merge(&b);
        assert_eq!(a.allocations, 4);
        assert_eq!(a.hits, 2);
        assert_eq!(a.false_matches, 1);
    }
}
