//! The Basic Cost-sensitive LRU algorithm (BCL, Section 2.3 / Figure 1).
//!
//! BCL reserves the LRU block whenever a cheaper block sits higher in the
//! stack: the victim is the first block, scanning from the second-LRU
//! position toward the MRU, whose miss cost is below the reserved block's
//! depreciated cost `Acost`. Each such victimization immediately depreciates
//! `Acost` by **twice** the victim's cost — a pessimistic hedge that assumes
//! every displaced block will be re-referenced ("using twice the cost ...
//! accelerates the depreciation of the high cost", Section 2.3). When
//! `Acost` reaches zero the reserved block becomes the prime replacement
//! candidate.
//!
//! The single-region logic lives in [`BclCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`Bcl`] replicates one core
//! per set for the simulator.

use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use crate::reserve::{reservation_victim, AcostTracker};
use cache_sim::{BlockAddr, Cost, Geometry, SetIndex, SetView, Way};
use csr_obs::{NopObserver, Observer};

/// Counters specific to [`Bcl`] / [`BclCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BclStats {
    /// Victim selections that reserved the LRU block (victim was non-LRU).
    pub reservations: u64,
    /// Victim selections that evicted the LRU block.
    pub lru_evictions: u64,
}

impl BclStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &BclStats) {
        self.reservations += other.reservations;
        self.lru_evictions += other.lru_evictions;
    }
}

/// BCL for a single replacement region.
#[derive(Debug, Clone)]
pub struct BclCore<O: Observer = NopObserver> {
    tracker: AcostTracker,
    factor: u64,
    stats: BclStats,
    obs: O,
}

impl BclCore {
    /// Creates a core with the paper's depreciation factor of 2.
    #[must_use]
    pub fn new() -> Self {
        BclCore::with_depreciation_factor(2)
    }

    /// Creates a core with a custom depreciation factor (how many times the
    /// victim's cost is subtracted from `Acost` per reservation).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero (the reservation would never terminate for
    /// nonzero-cost victims).
    #[must_use]
    pub fn with_depreciation_factor(factor: u64) -> Self {
        assert!(factor > 0, "depreciation factor must be positive");
        BclCore {
            tracker: AcostTracker::default(),
            factor,
            stats: BclStats::default(),
            obs: NopObserver,
        }
    }
}

impl<O: Observer> BclCore<O> {
    /// The configured depreciation factor.
    #[must_use]
    pub fn depreciation_factor(&self) -> u64 {
        self.factor
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &BclStats {
        &self.stats
    }

    /// The remaining depreciated cost of the tracked LRU block.
    #[must_use]
    pub fn acost(&self) -> u64 {
        self.tracker.acost()
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> BclCore<O2> {
        BclCore {
            tracker: self.tracker,
            factor: self.factor,
            stats: self.stats,
            obs,
        }
    }
}

impl Default for BclCore {
    fn default() -> Self {
        BclCore::new()
    }
}

impl<O: Observer> EvictionPolicy for BclCore<O> {
    fn name(&self) -> &'static str {
        "BCL"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        self.tracker.sync(view);
        // Figure 1: for i = s-1 downto 1, first block with c[i] < Acost.
        if let Some((way, pos)) = reservation_victim(view, self.tracker.acost()) {
            let chosen = view.at(pos);
            let lru = view.lru();
            let amount = chosen.cost.0.saturating_mul(self.factor);
            self.tracker.depreciate(Cost(amount));
            self.stats.reservations += 1;
            self.obs.on_reserve(lru.block, chosen.block, chosen.cost);
            self.obs.on_depreciate(amount, self.tracker.acost());
            self.obs.on_evict(chosen.block, chosen.cost);
            return way;
        }
        // No cheaper block: the LRU block goes (and leaves the tracker).
        self.stats.lru_evictions += 1;
        let lru = view.lru();
        self.tracker.note_departure(lru.block);
        self.obs.on_evict(lru.block, lru.cost);
        lru.way
    }

    fn on_hit(&mut self, block: BlockAddr, _way: Way, cost: Cost, _is_lru: bool) {
        // A hit on the tracked LRU block promotes it out of the LRU
        // position; reset so the next sync reloads a fresh Acost.
        self.tracker.note_departure(block);
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
    }

    fn on_remove(&mut self, block: BlockAddr) {
        self.tracker.note_departure(block);
    }
}

/// The BCL replacement policy (one [`BclCore`] per set).
///
/// The `factor` applied when depreciating `Acost` defaults to the paper's 2
/// and can be changed with [`Bcl::with_depreciation_factor`] (an ablation
/// the paper motivates in Section 2.3).
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
/// use csr::Bcl;
///
/// let geom = Geometry::new(16 * 1024, 64, 4);
/// let mut cache = Cache::new(geom, Bcl::new(&geom));
/// cache.access(BlockAddr(1), AccessType::Read, Cost(8));
/// ```
#[derive(Debug, Clone)]
pub struct Bcl<O: Observer = NopObserver> {
    cores: Vec<BclCore<O>>,
}

impl Bcl {
    /// Creates a BCL policy for the given cache geometry with the paper's
    /// depreciation factor of 2.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Bcl::with_depreciation_factor(geom, 2)
    }

    /// Creates a BCL policy with a custom depreciation factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_depreciation_factor(geom: &Geometry, factor: u64) -> Self {
        Bcl {
            cores: (0..geom.num_sets())
                .map(|_| BclCore::with_depreciation_factor(factor))
                .collect(),
        }
    }
}

impl<O: Observer> Bcl<O> {
    /// The configured depreciation factor.
    #[must_use]
    pub fn depreciation_factor(&self) -> u64 {
        self.cores[0].depreciation_factor()
    }

    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> BclStats {
        let mut total = BclStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// The remaining depreciated cost of the tracked LRU block in `set`
    /// (tests and debugging).
    #[must_use]
    pub fn acost_of(&self, set: SetIndex) -> u64 {
        self.cores[set.0].acost()
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> Bcl<O2> {
        Bcl {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(Bcl, "BCL");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache, InvalidateKind};

    fn cache(assoc: usize) -> Cache<Bcl> {
        let geom = Geometry::new(64 * assoc as u64, 64, assoc);
        Cache::new(geom, Bcl::new(&geom))
    }

    #[test]
    fn reserves_high_cost_lru() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // becomes LRU
        c.access(BlockAddr(1), AccessType::Read, Cost(1)); // MRU, cheap
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // 1 < Acost(8): evict 1
        assert!(
            c.contains(BlockAddr(0)),
            "high-cost LRU block must be reserved"
        );
        assert!(!c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().reservations, 1);
    }

    #[test]
    fn acost_depreciates_by_twice_victim_cost() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // Acost: 8 - 2 = 6
        assert_eq!(c.policy().acost_of(SetIndex(0)), 6);
        c.access(BlockAddr(3), AccessType::Read, Cost(1)); // Acost: 6 - 2 = 4
        c.access(BlockAddr(4), AccessType::Read, Cost(1)); // 4 - 2 = 2
        c.access(BlockAddr(5), AccessType::Read, Cost(1)); // 2 - 2 = 0
        assert!(
            c.contains(BlockAddr(0)),
            "still reserved until Acost hits 0"
        );
        // Acost exhausted: next replacement takes the LRU block itself.
        c.access(BlockAddr(6), AccessType::Read, Cost(1));
        assert!(!c.contains(BlockAddr(0)));
    }

    #[test]
    fn equal_costs_fall_back_to_lru() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(4));
        c.access(BlockAddr(2), AccessType::Read, Cost(4));
        assert!(
            !c.contains(BlockAddr(0)),
            "no strictly cheaper block: plain LRU"
        );
        assert_eq!(c.policy().stats().reservations, 0);
    }

    #[test]
    fn multi_reservation_scans_toward_mru() {
        // 4-way set: LRU=A(8), then B(8), then C(1), MRU=D(9).
        let mut c = cache(4);
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // A
        c.access(BlockAddr(4), AccessType::Read, Cost(8)); // B
        c.access(BlockAddr(8), AccessType::Read, Cost(1)); // C
        c.access(BlockAddr(12), AccessType::Read, Cost(9)); // D
                                                            // Scan from second-LRU (B, cost 8 >= Acost 8) to C (1 < 8): C goes,
                                                            // reserving both A and (implicitly) B.
        c.access(BlockAddr(16), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(c.contains(BlockAddr(4)));
        assert!(!c.contains(BlockAddr(8)));
    }

    #[test]
    fn lru_hit_reloads_acost_next_time_around() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // Acost 8 -> 6
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // hit the reserved block
                                                           // Block 2 is now LRU with cost 1; block 0 MRU. Evicting prefers 2.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(2)));
    }

    #[test]
    fn zero_cost_victims_never_deplete_reservation() {
        // Infinite cost ratio: low = 0, high = 1 (Section 3.1).
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(1)); // high
        c.access(BlockAddr(1), AccessType::Read, Cost(0)); // low
        for b in 2..50u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(0));
        }
        assert!(
            c.contains(BlockAddr(0)),
            "zero-cost depreciation never releases"
        );
    }

    #[test]
    fn invalidation_of_reserved_block_resets_tracker() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // reserve 0, Acost 6
        c.invalidate(BlockAddr(0), InvalidateKind::Coherence);
        assert_eq!(c.policy().acost_of(SetIndex(0)), 0);
        // Refill 0 (uses the invalid frame; set is [0(MRU), 2]). Block 2 is
        // now LRU with cost 1: a fresh fill must evict 2, not the refilled 0.
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(2)));
    }

    #[test]
    fn reserved_block_returning_to_lru_reloads_acost() {
        // Regression for the lazy-sync hazard: the tracked LRU block is hit
        // (promoted) and later demoted back to LRU purely by hits, with no
        // replacement in between. Its Acost must reload to the full cost.
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // A
        c.access(BlockAddr(1), AccessType::Read, Cost(1)); // B
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // reserve A, Acost 8->6
        assert_eq!(c.policy().acost_of(SetIndex(0)), 6);
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // hit A -> MRU
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // hit 2 -> A back to LRU
                                                           // Replacement: Acost must be the full 8 again, then 8-2=6 after
                                                           // reserving A once more.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert_eq!(c.policy().acost_of(SetIndex(0)), 6);
    }
}
