//! CAMP: cost-adaptive multi-queue eviction (Ghandeharizadeh et al.).
//!
//! A full GreedyDual needs a priority queue over every resident block.
//! CAMP observes that rounding costs to a power of two loses almost no
//! cost fidelity but buys a crucial structural property: blocks whose
//! rounded cost is equal can live in one FIFO-of-arrival queue whose
//! priorities are *monotonically non-decreasing* (each enqueue uses the
//! current region age `L`, and `L` never decreases). The minimum-priority
//! block is therefore always at one of the bucket heads, and a victim scan
//! touches `O(#buckets)` entries instead of `O(ways)`.
//!
//! Per block the key is `K = L + rounded(cost)`; hits re-enqueue at the
//! tail of the block's bucket with a fresh key, and evicting key `K` sets
//! `L = K` (the same inflation aging as GDSF/LFUDA). The buckets are
//! lazy-deletion queues: stale entries (superseded by a re-enqueue or a
//! removal) are skipped when they surface at a head.
//!
//! The single-region logic lives in [`CampCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`Camp`] replicates one
//! core per set for the simulator.

use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use cache_sim::{BlockAddr, Cost, Geometry, SetView, Way};
use csr_obs::{NopObserver, Observer};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Counters specific to [`Camp`] / [`CampCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampStats {
    /// Total victim selections.
    pub victims: u64,
    /// Victim selections that chose a block other than the LRU block.
    pub non_lru_victims: u64,
    /// Hits that re-enqueued a block at its bucket tail.
    pub requeues: u64,
}

impl CampStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &CampStats) {
        self.victims += other.victims;
        self.non_lru_victims += other.non_lru_victims;
        self.requeues += other.requeues;
    }
}

#[derive(Debug, Clone, Copy)]
struct CampMeta {
    bucket: u32,
    seq: u64,
}

/// Rounds a cost down to a power of two: `(bucket id, rounded value)`.
fn rounded(cost: Cost) -> (u32, u64) {
    let c = cost.0.max(1);
    let exp = 63 - c.leading_zeros();
    (exp, 1u64 << exp)
}

/// CAMP for a single replacement region of a fixed number of ways.
#[derive(Debug, Clone)]
pub struct CampCore<O: Observer = NopObserver> {
    /// Resident blocks only; names the live bucket entry per block.
    meta: HashMap<BlockAddr, CampMeta>,
    /// One queue per rounded-cost class, keyed by the cost exponent.
    /// Entries are `(block, seq, key)`; live iff `seq` matches `meta`.
    buckets: BTreeMap<u32, VecDeque<(BlockAddr, u64, u64)>>,
    /// The region age `L`: the key of the last evicted block.
    age: u64,
    next_seq: u64,
    stats: CampStats,
    obs: O,
}

impl CampCore {
    /// Creates a core for a region of any number of ways.
    #[must_use]
    pub fn new(_ways: usize) -> Self {
        CampCore {
            meta: HashMap::new(),
            buckets: BTreeMap::new(),
            age: 0,
            next_seq: 0,
            stats: CampStats::default(),
            obs: NopObserver,
        }
    }
}

impl<O: Observer> CampCore<O> {
    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CampStats {
        &self.stats
    }

    /// The current region age `L`.
    #[must_use]
    pub fn age(&self) -> u64 {
        self.age
    }

    /// The number of non-empty cost buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> CampCore<O2> {
        CampCore {
            meta: self.meta,
            buckets: self.buckets,
            age: self.age,
            next_seq: self.next_seq,
            stats: self.stats,
            obs,
        }
    }

    /// Enqueues `block` at the tail of its cost bucket with a fresh key.
    fn enqueue(&mut self, block: BlockAddr, cost: Cost) {
        let (bucket, r) = rounded(cost);
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.age.saturating_add(r);
        self.meta.insert(block, CampMeta { bucket, seq });
        self.buckets
            .entry(bucket)
            .or_default()
            .push_back((block, seq, key));
    }

    /// The live head with the minimum key, if any: `(block, key)`.
    /// Stale heads are popped on the way; emptied buckets are pruned.
    fn min_head(&mut self) -> Option<(BlockAddr, u64)> {
        let mut best: Option<(BlockAddr, u64)> = None;
        for (_, q) in self.buckets.iter_mut() {
            while let Some(&(b, seq, key)) = q.front() {
                let live = self.meta.get(&b).is_some_and(|m| m.seq == seq);
                if live {
                    match best {
                        Some((_, bk)) if bk <= key => {}
                        _ => best = Some((b, key)),
                    }
                    break;
                }
                q.pop_front();
            }
        }
        self.buckets.retain(|_, q| !q.is_empty());
        best
    }

    /// Drops `block`'s live entry (head of its bucket, by construction of
    /// the callers) and its metadata.
    fn drop_block(&mut self, block: BlockAddr) {
        if let Some(m) = self.meta.remove(&block) {
            if let Some(q) = self.buckets.get_mut(&m.bucket) {
                if q.front()
                    .is_some_and(|&(b, seq, _)| b == block && seq == m.seq)
                {
                    q.pop_front();
                }
                if q.is_empty() {
                    self.buckets.remove(&m.bucket);
                }
            }
        }
    }

    /// Books the eviction of the view entry at `pos` and returns its way.
    fn finish(&mut self, view: &SetView<'_>, pos: usize) -> Way {
        self.stats.victims += 1;
        let chosen = view.at(pos);
        self.obs.on_evict(chosen.block, chosen.cost);
        if pos + 1 != view.len() {
            self.stats.non_lru_victims += 1;
            let lru = view.lru();
            self.obs.on_reserve(lru.block, chosen.block, chosen.cost);
        }
        chosen.way
    }
}

impl<O: Observer> EvictionPolicy for CampCore<O> {
    fn name(&self) -> &'static str {
        "CAMP"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        let mut by_block = HashMap::with_capacity(view.len());
        for (pos, e) in view.iter().enumerate() {
            by_block.insert(e.block, pos);
        }
        // Every pass removes one block from the structures, so this
        // terminates; blocks unknown to the view are dropped and retried.
        while let Some((b, key)) = self.min_head() {
            self.drop_block(b);
            if let Some(&pos) = by_block.get(&b) {
                self.age = self.age.max(key);
                return self.finish(view, pos);
            }
        }
        // Fresh or desynced core: evict the LRU block.
        let lru = view.lru();
        self.drop_block(lru.block);
        self.finish(view, view.len() - 1)
    }

    fn on_hit(&mut self, block: BlockAddr, _way: Way, cost: Cost, _is_lru: bool) {
        if self.meta.contains_key(&block) {
            // Supersede the old entry (it goes stale) with a tail re-enqueue
            // at the current age.
            self.enqueue(block, cost);
            self.stats.requeues += 1;
        }
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
    }

    fn on_fill(&mut self, block: BlockAddr, _way: Way, cost: Cost) {
        if self.meta.contains_key(&block) {
            // Overwrite of a resident block: the on_hit re-enqueue already
            // placed it with its new cost.
            return;
        }
        self.enqueue(block, cost);
    }

    fn on_remove(&mut self, block: BlockAddr) {
        // Not necessarily at its bucket head: just drop the metadata and
        // let the queue entry go stale.
        self.meta.remove(&block);
    }
}

/// The CAMP replacement policy (one [`CampCore`] per set).
#[derive(Debug, Clone)]
pub struct Camp<O: Observer = NopObserver> {
    cores: Vec<CampCore<O>>,
}

impl Camp {
    /// Creates a CAMP policy for the given cache geometry.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Camp {
            cores: (0..geom.num_sets())
                .map(|_| CampCore::new(geom.assoc()))
                .collect(),
        }
    }
}

impl<O: Observer> Camp<O> {
    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> CampStats {
        let mut total = CampStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> Camp<O2> {
        Camp {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(Camp, "CAMP");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache};

    /// One-set, 2-way cache for controlled scenarios.
    fn cache2() -> Cache<Camp> {
        let geom = Geometry::new(128, 64, 2);
        Cache::new(geom, Camp::new(&geom))
    }

    #[test]
    fn victimizes_cheapest_bucket_head() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // K = 8, LRU
        c.access(BlockAddr(1), AccessType::Read, Cost(1)); // K = 1, MRU
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().non_lru_victims, 1);
    }

    #[test]
    fn costs_round_to_power_of_two_classes() {
        // Costs 5 and 7 share the 4-bucket: within a class the decision is
        // pure arrival order, so the older block goes first.
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(5));
        c.access(BlockAddr(1), AccessType::Read, Cost(7));
        c.access(BlockAddr(2), AccessType::Read, Cost(6));
        assert!(!c.contains(BlockAddr(0)));
        assert!(c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().non_lru_victims, 0);
    }

    #[test]
    fn aging_erodes_an_idle_expensive_block() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(4)); // K = 4
        for b in 1..8u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(!c.contains(BlockAddr(0)), "idle expensive block ages out");
    }

    #[test]
    fn requeue_on_hit_refreshes_the_key() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(2));
        c.access(BlockAddr(1), AccessType::Read, Cost(2));
        c.access(BlockAddr(0), AccessType::Read, Cost(2)); // requeue 0
        c.access(BlockAddr(2), AccessType::Read, Cost(2)); // same class: 1 goes
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().requeues, 1);
    }

    #[test]
    fn fresh_core_falls_back_to_lru() {
        use cache_sim::WayView;
        let entries: Vec<WayView> = (0..4u64)
            .map(|b| WayView {
                way: Way(b as usize),
                block: BlockAddr(b),
                cost: Cost(1),
                dirty: false,
            })
            .collect();
        let mut core = CampCore::new(4);
        assert_eq!(core.victim(&SetView::new(&entries)), Way(3));
        assert_eq!(core.name(), "CAMP");
    }
}
