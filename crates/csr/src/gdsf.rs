//! GreedyDual-Size-Frequency (GDSF, Cherkasova 1998).
//!
//! The cost-aware member of the GreedyDual family that also counts reuse:
//! a block's key is `K = L + freq · cost / size`, with the region age `L`
//! raised to the evicted key on every eviction (the same inflation-style
//! aging as [`LFUDA`](crate::LfudaCore)). Blocks survive by being
//! expensive to refetch *or* frequently reused — a cheap block must earn
//! its keep with hits, while an expensive block gets a head start that
//! still decays as `L` climbs.
//!
//! `size` is fixed at 1 until the size-aware roadmap item lands, so the
//! key reduces to `L + freq · cost`; the division point is kept in one
//! place ([`GdsfCore::key`]) for that change.
//!
//! The single-region logic lives in [`GdsfCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`Gdsf`] replicates one
//! core per set for the simulator.

use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use cache_sim::{BlockAddr, Cost, Geometry, SetView, Way};
use csr_obs::{NopObserver, Observer};

/// Counters specific to [`Gdsf`] / [`GdsfCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GdsfStats {
    /// Total victim selections.
    pub victims: u64,
    /// Victim selections that chose a block other than the LRU block.
    pub non_lru_victims: u64,
}

impl GdsfStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &GdsfStats) {
        self.victims += other.victims;
        self.non_lru_victims += other.non_lru_victims;
    }
}

/// GDSF for a single replacement region of a fixed number of ways.
#[derive(Debug, Clone)]
pub struct GdsfCore<O: Observer = NopObserver> {
    /// Access count per way (reset on fill).
    freq: Vec<u64>,
    /// `K = L-at-last-touch + freq · cost` per way.
    prio: Vec<u64>,
    /// The region age `L`: the key of the last evicted block.
    age: u64,
    stats: GdsfStats,
    obs: O,
}

impl GdsfCore {
    /// Creates a core for a region of `ways` blockframes.
    #[must_use]
    pub fn new(ways: usize) -> Self {
        GdsfCore {
            freq: vec![0; ways],
            prio: vec![0; ways],
            age: 0,
            stats: GdsfStats::default(),
            obs: NopObserver,
        }
    }
}

impl<O: Observer> GdsfCore<O> {
    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &GdsfStats {
        &self.stats
    }

    /// The current region age `L`.
    #[must_use]
    pub fn age(&self) -> u64 {
        self.age
    }

    /// The GDSF key for a block with `freq` accesses and miss cost `cost`
    /// at the current age. Size is 1 for every block today; when sizes
    /// arrive, the division lands here.
    fn key(&self, freq: u64, cost: Cost) -> u64 {
        self.age.saturating_add(freq.saturating_mul(cost.0))
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> GdsfCore<O2> {
        GdsfCore {
            freq: self.freq,
            prio: self.prio,
            age: self.age,
            stats: self.stats,
            obs,
        }
    }
}

impl<O: Observer> EvictionPolicy for GdsfCore<O> {
    fn name(&self) -> &'static str {
        "GDSF"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        // Minimum-K block; scanning LRU -> MRU with a strict `<` makes ties
        // resolve toward the LRU end.
        let mut best: Option<(Way, usize, u64)> = None;
        for (pos, e) in view.iter().enumerate().rev() {
            let val = self.prio[e.way.0];
            match best {
                Some((_, _, b)) if b <= val => {}
                _ => best = Some((e.way, pos, val)),
            }
        }
        let (victim, pos, kmin) = best.expect("victim() requires a non-empty set");
        self.age = self.age.max(kmin);
        self.stats.victims += 1;
        let chosen = view.at(pos);
        self.obs.on_evict(chosen.block, chosen.cost);
        if pos + 1 != view.len() {
            self.stats.non_lru_victims += 1;
            let lru = view.lru();
            self.obs.on_reserve(lru.block, chosen.block, chosen.cost);
        }
        victim
    }

    fn on_hit(&mut self, block: BlockAddr, way: Way, cost: Cost, _is_lru: bool) {
        let f = self.freq[way.0].saturating_add(1);
        self.freq[way.0] = f;
        self.prio[way.0] = self.key(f, cost);
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
    }

    fn on_fill(&mut self, _block: BlockAddr, way: Way, cost: Cost) {
        self.freq[way.0] = 1;
        self.prio[way.0] = self.key(1, cost);
    }
}

/// The GDSF replacement policy (one [`GdsfCore`] per set).
#[derive(Debug, Clone)]
pub struct Gdsf<O: Observer = NopObserver> {
    cores: Vec<GdsfCore<O>>,
}

impl Gdsf {
    /// Creates a GDSF policy for the given cache geometry.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Gdsf {
            cores: (0..geom.num_sets())
                .map(|_| GdsfCore::new(geom.assoc()))
                .collect(),
        }
    }
}

impl<O: Observer> Gdsf<O> {
    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> GdsfStats {
        let mut total = GdsfStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> Gdsf<O2> {
        Gdsf {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(Gdsf, "GDSF");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache};

    /// One-set, 2-way cache for controlled scenarios.
    fn cache2() -> Cache<Gdsf> {
        let geom = Geometry::new(128, 64, 2);
        Cache::new(geom, Gdsf::new(&geom))
    }

    #[test]
    fn expensive_block_outranks_cheap_mru() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // K = 8, LRU
        c.access(BlockAddr(1), AccessType::Read, Cost(1)); // K = 1, MRU
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(1)));
        assert_eq!(c.policy().stats().non_lru_victims, 1);
    }

    #[test]
    fn frequency_compensates_for_low_cost() {
        let mut c = cache2();
        for _ in 0..8 {
            c.access(BlockAddr(0), AccessType::Read, Cost(1)); // K = 8
        }
        c.access(BlockAddr(1), AccessType::Read, Cost(4)); // K = 4
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)), "hot cheap block survives");
        assert!(!c.contains(BlockAddr(1)));
    }

    #[test]
    fn aging_erodes_an_idle_expensive_block() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(4)); // K = 4
        for b in 1..8u64 {
            // Cheap one-touch stream: L climbs one per eviction until the
            // newcomers outrank the idle expensive block.
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(!c.contains(BlockAddr(0)), "idle expensive block ages out");
    }

    #[test]
    fn uniform_costs_tie_toward_lru() {
        let mut c = cache2();
        c.access(BlockAddr(0), AccessType::Read, Cost(2));
        c.access(BlockAddr(1), AccessType::Read, Cost(2));
        c.access(BlockAddr(2), AccessType::Read, Cost(2));
        assert!(!c.contains(BlockAddr(0)));
        assert_eq!(c.policy().stats().non_lru_victims, 0);
    }
}
