//! # csr — cost-sensitive cache replacement
//!
//! The primary contribution of *Cost-Sensitive Cache Replacement
//! Algorithms* (Jeong & Dubois, HPCA 2003): replacement policies that
//! minimize the **aggregate miss cost** rather than the miss count, for
//! caches whose misses have non-uniform costs (remote vs. local latency,
//! bandwidth, power, …).
//!
//! Four on-line policies are provided, all implementing
//! [`cache_sim::ReplacementPolicy`]:
//!
//! * [`GreedyDual`] — prior-work cost-centric baseline (Section 2.1);
//! * [`Bcl`] — Basic Cost-sensitive LRU: block reservation with immediate,
//!   pessimistic cost depreciation (Section 2.3);
//! * [`Dcl`] — Dynamic Cost-sensitive LRU: depreciation only on detected
//!   re-references via the Extended Tag Directory (Section 2.4);
//! * [`Acl`] — Adaptive Cost-sensitive LRU: DCL gated by a per-set 2-bit
//!   success/failure automaton (Section 2.5).
//!
//! Each policy's decision logic is factored into a **set-size-agnostic
//! core** ([`GdCore`], [`BclCore`], [`DclCore`], [`AclCore`], plus the
//! [`LruCore`] baseline) implementing the single-region
//! [`EvictionPolicy`] trait from [`eviction`]; the set-indexed types above
//! replicate one core per set. The same cores drive the shards of the
//! concurrent `csr-cache` key-value cache.
//!
//! A **policy zoo** of modern general-purpose cores rides on the same
//! trait for head-to-head comparison and online selection: [`S3Fifo`]
//! (static small/main/ghost FIFO queues, scan-resistant), [`Slru`]
//! (probationary/protected segments), [`Lfuda`] (LFU with dynamic aging),
//! [`Gdsf`] (GreedyDual-Size-Frequency) and [`Camp`] (cost-adaptive
//! multi-queue with rounded-cost buckets).
//!
//! Supporting modules: the [`etd`] shadow directory, clairvoyant baselines
//! in [`opt`], and the Section 5 hardware-overhead model in [`hw`].
//!
//! # Observability
//!
//! Every core (and its set-indexed wrapper) is generic over a `csr-obs`
//! [`Observer`] that receives the policy's decisions — hits, misses,
//! evictions, reservations, depreciations, ETD hits and ACL automaton
//! flips — as they happen. The default [`NopObserver`] compiles to
//! nothing; attach a real one with `with_observer`:
//!
//! ```
//! use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
//! use csr::Dcl;
//! use csr_obs::CountingObserver;
//! use std::sync::Arc;
//!
//! let geom = Geometry::new(128, 64, 2);
//! let obs = Arc::new(CountingObserver::default());
//! let mut cache = Cache::new(geom, Dcl::new(&geom).with_observer(Arc::clone(&obs)));
//! cache.access(BlockAddr(0), AccessType::Read, Cost(8));
//! assert_eq!(obs.counts().misses, 1);
//! ```
//!
//! # Examples
//!
//! Reserving a high-cost block the way Section 2.2 describes:
//!
//! ```
//! use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
//! use csr::Dcl;
//!
//! let geom = Geometry::new(128, 64, 2); // one 2-way set
//! let mut cache = Cache::new(geom, Dcl::new(&geom));
//!
//! cache.access(BlockAddr(0), AccessType::Read, Cost(8)); // expensive block
//! cache.access(BlockAddr(1), AccessType::Read, Cost(1)); // cheap block
//! // A new block would evict the LRU under plain LRU; DCL instead
//! // victimizes the cheap non-LRU block, reserving the expensive one.
//! cache.access(BlockAddr(2), AccessType::Read, Cost(1));
//! assert!(cache.contains(BlockAddr(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod bcl;
pub mod camp;
pub mod csopt;
pub mod dcl;
pub mod etd;
pub mod eviction;
pub mod gd;
pub mod gdsf;
pub mod hw;
pub mod lfuda;
pub mod opt;
mod reserve;
pub mod s3fifo;
pub mod slru;

pub use acl::{Acl, AclCore, AclStats};
pub use bcl::{Bcl, BclCore, BclStats};
pub use camp::{Camp, CampCore, CampStats};
pub use csopt::{simulate_csopt, CsoptLimits};
pub use csr_obs::{NopObserver, Observer};
pub use dcl::{Dcl, DclCore, DclStats};
pub use etd::{Etd, EtdConfig, EtdSet, EtdStats, EtdView};
pub use eviction::{EvictionPolicy, LruCore};
pub use gd::{GdCore, GdStats, GreedyDual};
pub use gdsf::{Gdsf, GdsfCore, GdsfStats};
pub use hw::{CostSource, HwParams, HwPolicy};
pub use lfuda::{Lfuda, LfudaCore, LfudaStats};
pub use opt::{simulate_belady, simulate_cost_greedy, OfflineStats, TraceEvent};
pub use s3fifo::{S3Fifo, S3FifoCore, S3FifoStats};
pub use slru::{Slru, SlruCore, SlruStats};
