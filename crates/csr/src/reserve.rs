//! Shared reservation bookkeeping for the LRU-based cost-sensitive policies.
//!
//! BCL, DCL and ACL all keep one *depreciated cost* per set — the paper's
//! `Acost` field, "loaded with `c(s)` whenever a block takes the LRU
//! position" (Fig. 1) and reduced as the reservation is charged for misses
//! it caused. [`AcostTracker`] implements that lifecycle: the tracker is
//! synchronized lazily against the current LRU block and reset whenever the
//! tracked block is hit, evicted or invalidated (each of which ends its stay
//! in the LRU position).

use cache_sim::{BlockAddr, Cost, SetView, Way};

/// The Figure-1 victim scan shared by BCL, DCL and ACL: walk the LRU stack
/// from the second-LRU position toward the MRU and return the first block
/// whose miss cost is strictly below `acost` (the reserved LRU block's
/// depreciated cost), together with its stack position. `None` means no
/// reservation is possible and the LRU block itself must go.
pub(crate) fn reservation_victim(view: &SetView<'_>, acost: u64) -> Option<(Way, usize)> {
    for pos in (0..view.len().saturating_sub(1)).rev() {
        let e = view.at(pos);
        if e.cost.0 < acost {
            return Some((e.way, pos));
        }
    }
    None
}

/// Per-set `Acost` state: which block is being tracked in the LRU position
/// and its remaining (depreciated) cost.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AcostTracker {
    lru_block: Option<BlockAddr>,
    acost: u64,
}

impl AcostTracker {
    /// Reloads `Acost` from the current LRU block if the LRU identity
    /// changed since the last synchronization ("upon entering LRU position:
    /// Acost <- c(s)"). No-op while the same block stays in the LRU position,
    /// preserving accumulated depreciation.
    pub(crate) fn sync(&mut self, view: &SetView<'_>) {
        let lru = if view.is_empty() {
            None
        } else {
            let l = view.lru();
            Some((l.block, l.cost))
        };
        self.sync_to(lru);
    }

    /// [`sync`](Self::sync) from an already-known LRU identity and cost —
    /// the O(1) form consumers without a materialized [`SetView`] (e.g. a
    /// linked-list shard) use.
    pub(crate) fn sync_to(&mut self, lru: Option<(BlockAddr, Cost)>) {
        match lru {
            None => {
                self.lru_block = None;
                self.acost = 0;
            }
            Some((block, cost)) => {
                if self.lru_block != Some(block) {
                    self.lru_block = Some(block);
                    self.acost = cost.0;
                }
            }
        }
    }

    /// The remaining depreciated cost of the tracked LRU block.
    pub(crate) fn acost(&self) -> u64 {
        self.acost
    }

    /// Depreciates the tracked cost by `amount`, saturating at zero.
    pub(crate) fn depreciate(&mut self, amount: Cost) {
        self.acost = self.acost.saturating_sub(amount.0);
    }

    /// The tracked block, if any.
    pub(crate) fn tracked(&self) -> Option<BlockAddr> {
        self.lru_block
    }

    /// Forgets the tracked block; the next [`sync`](Self::sync) reloads.
    pub(crate) fn reset(&mut self) {
        self.lru_block = None;
        self.acost = 0;
    }

    /// Must be called when `block` is hit, evicted or invalidated: if it is
    /// the tracked block, the tracker resets so a later return of the same
    /// block to the LRU position reloads a fresh `Acost`.
    pub(crate) fn note_departure(&mut self, block: BlockAddr) {
        if self.lru_block == Some(block) {
            self.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Cost, Way, WayView};

    fn view_of(entries: &[WayView]) -> SetView<'_> {
        SetView::new(entries)
    }

    fn entries(costs: &[(u64, u64)]) -> Vec<WayView> {
        costs
            .iter()
            .enumerate()
            .map(|(i, &(b, c))| WayView {
                way: Way(i),
                block: BlockAddr(b),
                cost: Cost(c),
                dirty: false,
            })
            .collect()
    }

    #[test]
    fn sync_loads_lru_cost_once() {
        let e = entries(&[(1, 2), (2, 8)]); // LRU = block 2 with cost 8
        let mut t = AcostTracker::default();
        t.sync(&view_of(&e));
        assert_eq!(t.acost(), 8);
        t.depreciate(Cost(3));
        assert_eq!(t.acost(), 5);
        // Same LRU: depreciation persists across syncs.
        t.sync(&view_of(&e));
        assert_eq!(t.acost(), 5);
    }

    #[test]
    fn sync_reloads_on_lru_change() {
        let e1 = entries(&[(1, 2), (2, 8)]);
        let mut t = AcostTracker::default();
        t.sync(&view_of(&e1));
        t.depreciate(Cost(8));
        assert_eq!(t.acost(), 0);
        let e2 = entries(&[(2, 8), (3, 4)]); // new LRU = block 3
        t.sync(&view_of(&e2));
        assert_eq!(t.acost(), 4);
    }

    #[test]
    fn departure_of_tracked_block_resets() {
        let e = entries(&[(1, 2), (2, 8)]);
        let mut t = AcostTracker::default();
        t.sync(&view_of(&e));
        t.depreciate(Cost(6));
        t.note_departure(BlockAddr(2));
        assert_eq!(t.tracked(), None);
        // Same block back in LRU position: Acost reloads fully.
        t.sync(&view_of(&e));
        assert_eq!(t.acost(), 8);
    }

    #[test]
    fn departure_of_other_block_is_ignored() {
        let e = entries(&[(1, 2), (2, 8)]);
        let mut t = AcostTracker::default();
        t.sync(&view_of(&e));
        t.depreciate(Cost(1));
        t.note_departure(BlockAddr(1));
        assert_eq!(t.tracked(), Some(BlockAddr(2)));
        assert_eq!(t.acost(), 7);
    }

    #[test]
    fn depreciation_saturates() {
        let e = entries(&[(1, 2), (2, 8)]);
        let mut t = AcostTracker::default();
        t.sync(&view_of(&e));
        t.depreciate(Cost(100));
        assert_eq!(t.acost(), 0);
    }

    #[test]
    fn empty_view_clears() {
        let mut t = AcostTracker::default();
        let e = entries(&[(1, 5)]);
        t.sync(&view_of(&e));
        assert_eq!(t.acost(), 5);
        t.sync(&view_of(&[]));
        assert_eq!(t.tracked(), None);
    }
}
