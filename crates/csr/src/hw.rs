//! Hardware-overhead model of Section 5.
//!
//! Each cost-sensitive algorithm adds tag and cost fields to every cache
//! set. Section 5 counts two kinds of cost fields:
//!
//! * **fixed** cost fields holding the (predicted) cost of a block's next
//!   miss — needed once per resident block, unless costs can be looked up
//!   from a static table keyed by address;
//! * **computed** (depreciated) cost fields — `Acost` for the BCL family
//!   (one per set), or one `H` per block for GD.
//!
//! DCL adds `s-1` ETD entries per set (tag + cost + valid bit); ACL adds a
//! 2-bit counter and a reserved bit on top of DCL. The paper's headline
//! numbers (1.9 % / 2.7 % / 6.6 % / 6.7 % added storage over LRU for a
//! 4-way cache with 25-bit tags, 8-bit costs and 64-byte blocks) are
//! reproduced by the unit tests of this module.

/// Which replacement algorithm to size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwPolicy {
    /// Plain LRU (the baseline; adds nothing).
    Lru,
    /// GreedyDual.
    Gd,
    /// Basic cost-sensitive LRU.
    Bcl,
    /// Dynamic cost-sensitive LRU (with ETD).
    Dcl,
    /// Adaptive cost-sensitive LRU (DCL + automaton).
    Acl,
}

impl HwPolicy {
    /// All policies, in the order the paper reports them.
    pub const ALL: [HwPolicy; 5] = [
        HwPolicy::Lru,
        HwPolicy::Gd,
        HwPolicy::Bcl,
        HwPolicy::Dcl,
        HwPolicy::Acl,
    ];
}

/// Where fixed (next-miss) costs come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostSource {
    /// Costs are dynamic and stored per block (fixed cost fields needed).
    DynamicPerBlock,
    /// Costs are a static function of the address, looked up in a table —
    /// no fixed cost fields in the cache (Section 5's "static" variant).
    StaticTable,
}

/// Storage parameters of one cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwParams {
    /// Associativity `s`.
    pub assoc: usize,
    /// Cache tag width in bits.
    pub tag_bits: u32,
    /// Width of a fixed cost field in bits.
    pub fixed_cost_bits: u32,
    /// Width of a computed (depreciated) cost field in bits.
    pub computed_cost_bits: u32,
    /// Block size in bytes (data storage counted in the baseline).
    pub block_bytes: u32,
    /// Tag width stored in each ETD entry (full or aliased).
    pub etd_tag_bits: u32,
}

impl HwParams {
    /// The paper's Section 5 running example: 4-way, 25-bit tags, 8-bit cost
    /// fields, 64-byte blocks, full ETD tags.
    #[must_use]
    pub fn paper_example() -> Self {
        HwParams {
            assoc: 4,
            tag_bits: 25,
            fixed_cost_bits: 8,
            computed_cost_bits: 8,
            block_bytes: 64,
            etd_tag_bits: 25,
        }
    }

    /// The paper's quantized-latency example: 2-bit fixed costs (4 latency
    /// classes from Table 4), 3-bit computed costs (GCD 60 ns, max 8 units),
    /// 4-bit aliased ETD tags.
    #[must_use]
    pub fn paper_quantized_example() -> Self {
        HwParams {
            assoc: 4,
            tag_bits: 25,
            fixed_cost_bits: 2,
            computed_cost_bits: 3,
            block_bytes: 64,
            etd_tag_bits: 4,
        }
    }

    /// Per-set storage of the LRU baseline: data plus tags (state and LRU
    /// bits are common to all algorithms and cancel in the comparison).
    #[must_use]
    pub fn baseline_bits_per_set(&self) -> u64 {
        self.assoc as u64 * (u64::from(self.block_bytes) * 8 + u64::from(self.tag_bits))
    }

    /// Bits of one ETD entry: stored tag, a fixed cost field (omitted when
    /// costs are statically derivable from the address) and a valid bit.
    fn etd_entry_bits(&self, source: CostSource) -> u64 {
        let cost = match source {
            CostSource::DynamicPerBlock => u64::from(self.fixed_cost_bits),
            CostSource::StaticTable => 0,
        };
        u64::from(self.etd_tag_bits) + cost + 1
    }

    /// Bits added per set by `policy` over the LRU baseline.
    #[must_use]
    pub fn added_bits_per_set(&self, policy: HwPolicy, source: CostSource) -> u64 {
        let s = self.assoc as u64;
        let fixed = match source {
            CostSource::DynamicPerBlock => s * u64::from(self.fixed_cost_bits),
            CostSource::StaticTable => 0,
        };
        let computed = u64::from(self.computed_cost_bits);
        match policy {
            HwPolicy::Lru => 0,
            // GD: one fixed + one computed cost per block.
            HwPolicy::Gd => fixed + s * computed,
            // BCL: one fixed cost per block + a single Acost.
            HwPolicy::Bcl => fixed + computed,
            // DCL: BCL + (s-1) ETD entries.
            HwPolicy::Dcl => fixed + computed + (s - 1) * self.etd_entry_bits(source),
            // ACL: DCL + 2-bit counter + reserved bit.
            HwPolicy::Acl => fixed + computed + (s - 1) * self.etd_entry_bits(source) + 2 + 1,
        }
    }

    /// Added storage as a percentage of the LRU baseline.
    #[must_use]
    pub fn overhead_pct(&self, policy: HwPolicy, source: CostSource) -> f64 {
        100.0 * self.added_bits_per_set(policy, source) as f64 / self.baseline_bits_per_set() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dynamic_overheads() {
        // Section 5: "the added hardware costs over LRU algorithm are
        // around 1.9%, 2.7%, 6.6% and 6.7% for BCL, GD, DCL and ACL".
        let p = HwParams::paper_example();
        let pct = |pol| p.overhead_pct(pol, CostSource::DynamicPerBlock);
        assert!(
            (pct(HwPolicy::Bcl) - 1.9).abs() < 0.1,
            "BCL {}",
            pct(HwPolicy::Bcl)
        );
        assert!(
            (pct(HwPolicy::Gd) - 2.7).abs() < 0.4,
            "GD {}",
            pct(HwPolicy::Gd)
        );
        assert!(
            (pct(HwPolicy::Dcl) - 6.6).abs() < 0.2,
            "DCL {}",
            pct(HwPolicy::Dcl)
        );
        assert!(
            (pct(HwPolicy::Acl) - 6.7).abs() < 0.2,
            "ACL {}",
            pct(HwPolicy::Acl)
        );
        assert_eq!(pct(HwPolicy::Lru), 0.0);
    }

    #[test]
    fn paper_static_overheads() {
        // Section 5: "the added costs are 0.4%, 1.5%, 4.0% and 4.1%".
        let p = HwParams::paper_example();
        let pct = |pol| p.overhead_pct(pol, CostSource::StaticTable);
        assert!(
            (pct(HwPolicy::Bcl) - 0.4).abs() < 0.1,
            "BCL {}",
            pct(HwPolicy::Bcl)
        );
        assert!(
            (pct(HwPolicy::Gd) - 1.5).abs() < 0.1,
            "GD {}",
            pct(HwPolicy::Gd)
        );
        assert!(
            (pct(HwPolicy::Dcl) - 4.0).abs() < 0.1,
            "DCL {}",
            pct(HwPolicy::Dcl)
        );
        assert!(
            (pct(HwPolicy::Acl) - 4.1).abs() < 0.1,
            "ACL {}",
            pct(HwPolicy::Acl)
        );
    }

    #[test]
    fn paper_quantized_bit_counts() {
        // Section 5: "the hardware overhead per set over LRU is 11 bits in
        // BCL, 20 bits in GD, 32 bits in DCL and 35 bits in ACL".
        let p = HwParams::paper_quantized_example();
        let bits = |pol| p.added_bits_per_set(pol, CostSource::DynamicPerBlock);
        assert_eq!(bits(HwPolicy::Bcl), 11);
        assert_eq!(bits(HwPolicy::Gd), 20);
        assert_eq!(bits(HwPolicy::Dcl), 32);
        assert_eq!(bits(HwPolicy::Acl), 35);
    }

    #[test]
    fn baseline_counts_data_and_tags() {
        let p = HwParams::paper_example();
        assert_eq!(p.baseline_bits_per_set(), 4 * (512 + 25));
    }

    #[test]
    fn aliasing_shrinks_dcl() {
        let mut p = HwParams::paper_example();
        let full = p.added_bits_per_set(HwPolicy::Dcl, CostSource::DynamicPerBlock);
        p.etd_tag_bits = 4;
        let aliased = p.added_bits_per_set(HwPolicy::Dcl, CostSource::DynamicPerBlock);
        assert!(aliased < full);
        // 3 entries x 21 fewer tag bits.
        assert_eq!(full - aliased, 3 * 21);
    }
}
