//! The Adaptive Cost-sensitive LRU algorithm (ACL, Section 2.5 / Figure 2).
//!
//! ACL is DCL plus a per-set 2-bit saturating counter that enables or
//! disables reservations, exploiting the observation that reservation
//! successes and failures come in streaks that differ across sets and time:
//!
//! * the counter **increments** when a reservation succeeds (the reserved
//!   block is re-referenced while reserved) and **decrements** when one
//!   fails (the reserved block is evicted or invalidated without a hit);
//! * reservations are possible only while the counter is greater than zero;
//!   the counter starts at zero, so every set begins with reservations
//!   disabled;
//! * while disabled, the ETD watches would-be reservations: an evicted LRU
//!   block enters the ETD whenever a cheaper block was present in the set.
//!   An ETD hit means a reservation would have saved cost — all entries are
//!   invalidated and the counter jumps to two, re-enabling reservations.

use crate::etd::{Etd, EtdConfig, EtdStats};
use crate::reserve::{reservation_victim, AcostTracker};
use cache_sim::{
    BlockAddr, Cost, Geometry, InvalidateKind, ReplacementPolicy, SetIndex, SetView, Way,
};

/// Counter ceiling of the 2-bit automaton.
const COUNTER_MAX: u8 = 3;
/// Counter value installed when a disabled set observes an ETD hit.
const TRIGGER_VALUE: u8 = 2;

/// Counters specific to [`Acl`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AclStats {
    /// Reservations started (first non-LRU victimization of a streak).
    pub reservations: u64,
    /// Reservations that ended with a hit on the reserved block.
    pub successes: u64,
    /// Reservations that ended with eviction/invalidation of the reserved
    /// block.
    pub failures: u64,
    /// Disabled-to-enabled transitions triggered by watch-mode ETD hits.
    pub triggers: u64,
    /// Victim selections that evicted the LRU block.
    pub lru_evictions: u64,
    /// Depreciations triggered by ETD hits while enabled.
    pub depreciations: u64,
    /// Watch-mode ETD insertions of evicted LRU blocks.
    pub watch_inserts: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct SetAutomaton {
    counter: u8,
    reserved: bool,
}

impl SetAutomaton {
    fn enabled(&self) -> bool {
        self.counter > 0
    }
}

/// The ACL replacement policy.
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
/// use csr::Acl;
///
/// let geom = Geometry::new(16 * 1024, 64, 4);
/// let mut cache = Cache::new(geom, Acl::new(&geom));
/// cache.access(BlockAddr(1), AccessType::Read, Cost(8));
/// ```
#[derive(Debug, Clone)]
pub struct Acl {
    trackers: Vec<AcostTracker>,
    automata: Vec<SetAutomaton>,
    etd: Etd,
    factor: u64,
    stats: AclStats,
}

impl Acl {
    /// Creates an ACL policy with a full-tag, `assoc - 1`-entry ETD.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Acl::with_etd_config(geom, EtdConfig::for_assoc(geom.assoc()))
    }

    /// Creates an ACL policy whose ETD stores only the low `bits` tag bits.
    #[must_use]
    pub fn with_aliased_tags(geom: &Geometry, bits: u32) -> Self {
        Acl::with_etd_config(geom, EtdConfig::for_assoc_aliased(geom.assoc(), bits))
    }

    /// Creates an ACL policy with an explicit ETD configuration.
    #[must_use]
    pub fn with_etd_config(geom: &Geometry, cfg: EtdConfig) -> Self {
        Acl {
            trackers: vec![AcostTracker::default(); geom.num_sets()],
            automata: vec![SetAutomaton::default(); geom.num_sets()],
            etd: Etd::new(geom.num_sets(), cfg),
            factor: 2,
            stats: AclStats::default(),
        }
    }

    /// Overrides the depreciation factor (the paper's value is 2).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_depreciation_factor(mut self, factor: u64) -> Self {
        assert!(factor > 0, "depreciation factor must be positive");
        self.factor = factor;
        self
    }

    /// Accumulated policy statistics.
    #[must_use]
    pub fn stats(&self) -> &AclStats {
        &self.stats
    }

    /// Statistics of the embedded ETD.
    #[must_use]
    pub fn etd_stats(&self) -> &EtdStats {
        self.etd.stats()
    }

    /// The automaton counter of `set` (tests and debugging).
    #[must_use]
    pub fn counter_of(&self, set: SetIndex) -> u8 {
        self.automata[set.0].counter
    }

    /// Whether reservations are currently enabled in `set`.
    #[must_use]
    pub fn enabled(&self, set: SetIndex) -> bool {
        self.automata[set.0].enabled()
    }

    /// The remaining depreciated cost of the tracked LRU block in `set`.
    #[must_use]
    pub fn acost_of(&self, set: SetIndex) -> u64 {
        self.trackers[set.0].acost()
    }

    /// The embedded ETD (tests and debugging).
    #[must_use]
    pub fn etd(&self) -> &Etd {
        &self.etd
    }

    fn end_reservation_failure(&mut self, set: SetIndex) {
        let a = &mut self.automata[set.0];
        if a.reserved {
            a.counter = a.counter.saturating_sub(1);
            a.reserved = false;
            self.stats.failures += 1;
            if a.counter == 0 {
                // Transition into watch mode with a clean slate: entries
                // left over from the failed reservation must not be
                // misread as watch hits (they are evidence reservations
                // *hurt*, not that one would have helped).
                self.etd.clear_set(set);
            }
        }
    }
}

impl ReplacementPolicy for Acl {
    fn name(&self) -> &'static str {
        "ACL"
    }

    fn victim(&mut self, set: SetIndex, view: &SetView<'_>) -> Way {
        self.trackers[set.0].sync(view);
        if self.automata[set.0].enabled() {
            // DCL behaviour: reserve the LRU block if a cheaper block sits
            // above it.
            let acost = self.trackers[set.0].acost();
            if let Some((way, pos)) = reservation_victim(view, acost) {
                let e = view.at(pos);
                self.etd.insert(set, e.block, e.cost);
                let a = &mut self.automata[set.0];
                if !a.reserved {
                    a.reserved = true;
                    self.stats.reservations += 1;
                }
                return way;
            }
            // The reserved block (if any) is evicted: the reservation failed.
            self.end_reservation_failure(set);
        } else {
            // Watch mode: remember the evicted LRU block if a reservation
            // *could* have been made (a cheaper block exists in the set).
            let lru = view.lru();
            let cheaper_exists = view
                .iter()
                .take(view.len().saturating_sub(1))
                .any(|e| e.cost.0 < lru.cost.0);
            if cheaper_exists {
                self.etd.insert(set, lru.block, lru.cost);
                self.stats.watch_inserts += 1;
            }
        }
        self.stats.lru_evictions += 1;
        let lru = view.lru();
        self.trackers[set.0].note_departure(lru.block);
        lru.way
    }

    fn on_hit(&mut self, set: SetIndex, view: &SetView<'_>, _way: Way, stack_pos: usize) {
        let block = view.at(stack_pos).block;
        if stack_pos + 1 == view.len() {
            let a = &mut self.automata[set.0];
            if a.reserved {
                // The reserved block was re-referenced: success.
                a.counter = (a.counter + 1).min(COUNTER_MAX);
                a.reserved = false;
                self.stats.successes += 1;
            }
            if a.enabled() {
                self.etd.clear_set(set);
            }
        }
        self.trackers[set.0].note_departure(block);
    }

    fn on_miss(&mut self, set: SetIndex, view: &SetView<'_>, block: BlockAddr) {
        if self.automata[set.0].enabled() {
            if let Some(cost) = self.etd.probe_and_take(set, block) {
                let t = &mut self.trackers[set.0];
                t.sync(view);
                t.depreciate(Cost(cost.0.saturating_mul(self.factor)));
                self.stats.depreciations += 1;
            }
        } else if self.etd.probe_and_take(set, block).is_some() {
            // A watch hit: keeping the block would have saved its miss cost.
            // Enable reservations, hoping a streak of successes started.
            self.etd.clear_set(set);
            self.automata[set.0].counter = TRIGGER_VALUE;
            self.stats.triggers += 1;
        }
    }

    fn on_invalidate(
        &mut self,
        set: SetIndex,
        block: BlockAddr,
        _resident: Option<(Way, usize)>,
        _kind: InvalidateKind,
    ) {
        self.etd.invalidate(set, block);
        if self.trackers[set.0].tracked() == Some(block) {
            // The reserved block disappeared without a hit: failure.
            self.end_reservation_failure(set);
        }
        self.trackers[set.0].note_departure(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache};

    fn cache(assoc: usize) -> Cache<Acl> {
        let geom = Geometry::new(64 * assoc as u64, 64, assoc);
        Cache::new(geom, Acl::new(&geom))
    }

    const S0: SetIndex = SetIndex(0);

    #[test]
    fn starts_disabled_and_behaves_like_lru() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // high-cost LRU
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        // Disabled: plain LRU evicts the high-cost block 0.
        assert!(!c.contains(BlockAddr(0)));
        assert!(!c.policy().enabled(S0));
        assert_eq!(c.policy().stats().reservations, 0);
        // ...but block 0 entered the watch ETD (cheaper block 1 existed).
        assert_eq!(c.policy().stats().watch_inserts, 1);
    }

    #[test]
    fn watch_hit_enables_reservations() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // LRU 0 evicted -> watch ETD
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // watch hit!
        assert!(c.policy().enabled(S0));
        assert_eq!(c.policy().counter_of(S0), TRIGGER_VALUE);
        assert_eq!(c.policy().stats().triggers, 1);
    }

    #[test]
    fn enabled_set_reserves_like_dcl() {
        let mut c = cache(2);
        // Warm up the automaton via a watch hit.
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // enables; set = [0(MRU), 2]
        // Make 0 the LRU again, then fill: reservation protects it now.
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // set = [2(MRU), 0]...
        // (block 0 at LRU, enabled): next fill displaces 2 instead of 0.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)), "enabled ACL must reserve the high-cost LRU block");
        assert!(!c.contains(BlockAddr(2)));
        assert_eq!(c.policy().stats().reservations, 1);
    }

    #[test]
    fn success_increments_counter() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // trigger: counter = 2
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // 0 back to LRU
        c.access(BlockAddr(3), AccessType::Read, Cost(1)); // reserve 0
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // hit reserved block: success
        assert_eq!(c.policy().stats().successes, 1);
        assert_eq!(c.policy().counter_of(S0), 3);
    }

    #[test]
    fn failure_decrements_counter_until_disabled() {
        let geom = Geometry::new(128, 64, 2);
        let mut c = Cache::new(geom, Acl::new(&geom));
        // Enable via watch hit.
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // counter = 2; set [0, 2]
        // Two failed reservations in a row: 0 reserved, depreciated away by
        // ETD hits, finally evicted. Alternate accesses to 1 and 2 so the
        // displaced block always returns.
        let mut expect_counter = TRIGGER_VALUE;
        for _ in 0..2 {
            // Move 0 to LRU by touching the other resident block.
            let others: Vec<u64> =
                c.recency_of(S0).iter().map(|b| b.0).filter(|&b| b != 0).collect();
            c.access(BlockAddr(others[0]), AccessType::Read, Cost(1));
            // Reserve 0 by filling new cheap blocks and re-referencing the
            // displaced ones until Acost (8) is exhausted: each round trip
            // costs 2*1 = 2, so 4 ETD hits end the reservation.
            let mut fresh = 100 + expect_counter as u64 * 10;
            for _ in 0..4 {
                c.access(BlockAddr(fresh), AccessType::Read, Cost(1)); // displace cheap
                let displaced: Vec<u64> = c
                    .policy()
                    .etd()
                    .blocks_in(S0)
                    .iter()
                    .map(|b| b.0)
                    .collect();
                c.access(BlockAddr(displaced[0]), AccessType::Read, Cost(1)); // ETD hit
                fresh += 1;
            }
            // Acost now 0: next fill evicts the reserved block 0 => failure.
            c.access(BlockAddr(fresh + 1), AccessType::Read, Cost(1));
            assert!(!c.contains(BlockAddr(0)));
            expect_counter -= 1;
            assert_eq!(c.policy().counter_of(S0), expect_counter);
            // Bring 0 back for the next round.
            c.access(BlockAddr(0), AccessType::Read, Cost(8));
        }
        assert!(!c.policy().enabled(S0));
        assert_eq!(c.policy().stats().failures, 2);
    }

    #[test]
    fn invalidation_of_reserved_block_is_failure() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // counter = 2
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // 0 to LRU
        c.access(BlockAddr(3), AccessType::Read, Cost(1)); // reserve 0
        assert_eq!(c.policy().stats().reservations, 1);
        c.invalidate(BlockAddr(0), InvalidateKind::Coherence);
        assert_eq!(c.policy().stats().failures, 1);
        assert_eq!(c.policy().counter_of(S0), 1);
    }

    #[test]
    fn uniform_costs_reduce_to_lru() {
        let mut c = cache(4);
        for b in [0u64, 4, 8, 12, 16, 20] {
            c.access(BlockAddr(b), AccessType::Read, Cost(3));
        }
        assert!(!c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(4)));
        assert_eq!(c.policy().stats().reservations, 0);
        assert_eq!(c.policy().stats().watch_inserts, 0);
    }
}
