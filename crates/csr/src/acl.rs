//! The Adaptive Cost-sensitive LRU algorithm (ACL, Section 2.5 / Figure 2).
//!
//! ACL is DCL plus a per-set 2-bit saturating counter that enables or
//! disables reservations, exploiting the observation that reservation
//! successes and failures come in streaks that differ across sets and time:
//!
//! * the counter **increments** when a reservation succeeds (the reserved
//!   block is re-referenced while reserved) and **decrements** when one
//!   fails (the reserved block is evicted or invalidated without a hit);
//! * reservations are possible only while the counter is greater than zero;
//!   the counter starts at zero, so every set begins with reservations
//!   disabled;
//! * while disabled, the ETD watches would-be reservations: an evicted LRU
//!   block enters the ETD whenever a cheaper block was present in the set.
//!   An ETD hit means a reservation would have saved cost — all entries are
//!   invalidated and the counter jumps to two, re-enabling reservations.
//!
//! The single-region logic lives in [`AclCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`Acl`] replicates one core
//! per set for the simulator.

use crate::etd::{EtdConfig, EtdSet, EtdStats, EtdView};
use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use crate::reserve::{reservation_victim, AcostTracker};
use cache_sim::{BlockAddr, Cost, Geometry, SetIndex, SetView, Way};
use csr_obs::{NopObserver, Observer};

/// Counter ceiling of the 2-bit automaton.
const COUNTER_MAX: u8 = 3;
/// Counter value installed when a disabled set observes an ETD hit.
const TRIGGER_VALUE: u8 = 2;

/// Counters specific to [`Acl`] / [`AclCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AclStats {
    /// Reservations started (first non-LRU victimization of a streak).
    pub reservations: u64,
    /// Reservations that ended with a hit on the reserved block.
    pub successes: u64,
    /// Reservations that ended with eviction/invalidation of the reserved
    /// block.
    pub failures: u64,
    /// Disabled-to-enabled transitions triggered by watch-mode ETD hits.
    pub triggers: u64,
    /// Victim selections that evicted the LRU block.
    pub lru_evictions: u64,
    /// Depreciations triggered by ETD hits while enabled.
    pub depreciations: u64,
    /// Watch-mode ETD insertions of evicted LRU blocks.
    pub watch_inserts: u64,
}

impl AclStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &AclStats) {
        self.reservations += other.reservations;
        self.successes += other.successes;
        self.failures += other.failures;
        self.triggers += other.triggers;
        self.lru_evictions += other.lru_evictions;
        self.depreciations += other.depreciations;
        self.watch_inserts += other.watch_inserts;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SetAutomaton {
    counter: u8,
    reserved: bool,
}

impl SetAutomaton {
    fn enabled(&self) -> bool {
        self.counter > 0
    }
}

/// ACL for a single replacement region, owning its shadow directory and
/// 2-bit automaton.
#[derive(Debug, Clone)]
pub struct AclCore<O: Observer = NopObserver> {
    tracker: AcostTracker,
    automaton: SetAutomaton,
    etd: EtdSet,
    factor: u64,
    stats: AclStats,
    obs: O,
}

impl AclCore {
    /// Creates a core around the given shadow directory.
    #[must_use]
    pub fn new(etd: EtdSet) -> Self {
        AclCore {
            tracker: AcostTracker::default(),
            automaton: SetAutomaton::default(),
            etd,
            factor: 2,
            stats: AclStats::default(),
            obs: NopObserver,
        }
    }

    /// Creates a core for a region of `ways` blockframes with the paper's
    /// full-tag, `ways - 1`-entry directory.
    #[must_use]
    pub fn for_ways(ways: usize) -> Self {
        AclCore::new(EtdSet::new(EtdConfig::for_assoc(ways)))
    }
}

impl<O: Observer> AclCore<O> {
    /// Overrides the depreciation factor (the paper's value is 2).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_depreciation_factor(mut self, factor: u64) -> Self {
        assert!(factor > 0, "depreciation factor must be positive");
        self.factor = factor;
        self
    }

    /// Accumulated policy statistics.
    #[must_use]
    pub fn stats(&self) -> &AclStats {
        &self.stats
    }

    /// The embedded shadow directory.
    #[must_use]
    pub fn etd(&self) -> &EtdSet {
        &self.etd
    }

    /// The automaton counter (tests and debugging).
    #[must_use]
    pub fn counter(&self) -> u8 {
        self.automaton.counter
    }

    /// Whether reservations are currently enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.automaton.enabled()
    }

    /// The remaining depreciated cost of the tracked LRU block.
    #[must_use]
    pub fn acost(&self) -> u64 {
        self.tracker.acost()
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> AclCore<O2> {
        AclCore {
            tracker: self.tracker,
            automaton: self.automaton,
            etd: self.etd,
            factor: self.factor,
            stats: self.stats,
            obs,
        }
    }

    fn end_reservation_failure(&mut self) {
        let a = &mut self.automaton;
        if a.reserved {
            a.counter = a.counter.saturating_sub(1);
            a.reserved = false;
            self.stats.failures += 1;
            if a.counter == 0 {
                // Transition into watch mode with a clean slate: entries
                // left over from the failed reservation must not be
                // misread as watch hits (they are evidence reservations
                // *hurt*, not that one would have helped).
                self.etd.clear();
                self.obs.on_automaton_flip(false);
            }
        }
    }
}

impl<O: Observer> EvictionPolicy for AclCore<O> {
    fn name(&self) -> &'static str {
        "ACL"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        self.tracker.sync(view);
        if self.automaton.enabled() {
            // DCL behaviour: reserve the LRU block if a cheaper block sits
            // above it.
            if let Some((way, pos)) = reservation_victim(view, self.tracker.acost()) {
                let e = view.at(pos);
                self.etd.insert(e.block, e.cost);
                if !self.automaton.reserved {
                    self.automaton.reserved = true;
                    self.stats.reservations += 1;
                    let lru = view.lru();
                    self.obs.on_reserve(lru.block, e.block, e.cost);
                }
                self.obs.on_evict(e.block, e.cost);
                return way;
            }
            // The reserved block (if any) is evicted: the reservation failed.
            self.end_reservation_failure();
        } else {
            // Watch mode: remember the evicted LRU block if a reservation
            // *could* have been made (a cheaper block exists in the set).
            let lru = view.lru();
            let cheaper_exists = view
                .iter()
                .take(view.len().saturating_sub(1))
                .any(|e| e.cost.0 < lru.cost.0);
            if cheaper_exists {
                self.etd.insert(lru.block, lru.cost);
                self.stats.watch_inserts += 1;
            }
        }
        self.stats.lru_evictions += 1;
        let lru = view.lru();
        self.tracker.note_departure(lru.block);
        self.obs.on_evict(lru.block, lru.cost);
        lru.way
    }

    fn on_hit(&mut self, block: BlockAddr, _way: Way, cost: Cost, is_lru: bool) {
        if is_lru {
            if self.automaton.reserved {
                // The reserved block was re-referenced: success.
                self.automaton.counter = (self.automaton.counter + 1).min(COUNTER_MAX);
                self.automaton.reserved = false;
                self.stats.successes += 1;
            }
            if self.automaton.enabled() {
                self.etd.clear();
            }
        }
        self.tracker.note_departure(block);
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
        if self.automaton.enabled() {
            if let Some(cost) = self.etd.probe_and_take(block) {
                self.tracker.sync_to(lru);
                let amount = cost.0.saturating_mul(self.factor);
                self.tracker.depreciate(Cost(amount));
                self.stats.depreciations += 1;
                self.obs.on_etd_hit(block, cost);
                self.obs.on_depreciate(amount, self.tracker.acost());
            }
        } else if let Some(cost) = self.etd.probe_and_take(block) {
            // A watch hit: keeping the block would have saved its miss cost.
            // Enable reservations, hoping a streak of successes started.
            self.etd.clear();
            self.automaton.counter = TRIGGER_VALUE;
            self.stats.triggers += 1;
            self.obs.on_etd_hit(block, cost);
            self.obs.on_automaton_flip(true);
        }
    }

    fn on_remove(&mut self, block: BlockAddr) {
        self.etd.invalidate(block);
        if self.tracker.tracked() == Some(block) {
            // The reserved block disappeared without a hit: failure.
            self.end_reservation_failure();
        }
        self.tracker.note_departure(block);
    }
}

/// The ACL replacement policy (one [`AclCore`] per set).
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
/// use csr::Acl;
///
/// let geom = Geometry::new(16 * 1024, 64, 4);
/// let mut cache = Cache::new(geom, Acl::new(&geom));
/// cache.access(BlockAddr(1), AccessType::Read, Cost(8));
/// ```
#[derive(Debug, Clone)]
pub struct Acl<O: Observer = NopObserver> {
    cores: Vec<AclCore<O>>,
}

impl Acl {
    /// Creates an ACL policy with a full-tag, `assoc - 1`-entry ETD.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Acl::with_etd_config(geom, EtdConfig::for_assoc(geom.assoc()))
    }

    /// Creates an ACL policy whose ETD stores only the low `bits` tag bits.
    #[must_use]
    pub fn with_aliased_tags(geom: &Geometry, bits: u32) -> Self {
        Acl::with_etd_config(geom, EtdConfig::for_assoc_aliased(geom.assoc(), bits))
    }

    /// Creates an ACL policy with an explicit ETD configuration.
    #[must_use]
    pub fn with_etd_config(geom: &Geometry, cfg: EtdConfig) -> Self {
        let set_bits = geom.num_sets().trailing_zeros();
        Acl {
            cores: (0..geom.num_sets())
                .map(|_| AclCore::new(EtdSet::with_stripped_bits(cfg, set_bits)))
                .collect(),
        }
    }
}

impl<O: Observer> Acl<O> {
    /// Overrides the depreciation factor (the paper's value is 2).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_depreciation_factor(mut self, factor: u64) -> Self {
        self.cores = self
            .cores
            .into_iter()
            .map(|c| c.with_depreciation_factor(factor))
            .collect();
        self
    }

    /// Policy statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> AclStats {
        let mut total = AclStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Statistics of the embedded ETD, accumulated across all sets.
    #[must_use]
    pub fn etd_stats(&self) -> EtdStats {
        self.etd().stats()
    }

    /// The automaton counter of `set` (tests and debugging).
    #[must_use]
    pub fn counter_of(&self, set: SetIndex) -> u8 {
        self.cores[set.0].counter()
    }

    /// Whether reservations are currently enabled in `set`.
    #[must_use]
    pub fn enabled(&self, set: SetIndex) -> bool {
        self.cores[set.0].enabled()
    }

    /// The remaining depreciated cost of the tracked LRU block in `set`.
    #[must_use]
    pub fn acost_of(&self, set: SetIndex) -> u64 {
        self.cores[set.0].acost()
    }

    /// A set-indexed view of the embedded ETD (tests and debugging).
    #[must_use]
    pub fn etd(&self) -> EtdView<'_> {
        EtdView::new(self.cores.iter().map(AclCore::etd).collect())
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> Acl<O2> {
        Acl {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(Acl, "ACL");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache, InvalidateKind};

    fn cache(assoc: usize) -> Cache<Acl> {
        let geom = Geometry::new(64 * assoc as u64, 64, assoc);
        Cache::new(geom, Acl::new(&geom))
    }

    const S0: SetIndex = SetIndex(0);

    #[test]
    fn starts_disabled_and_behaves_like_lru() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // high-cost LRU
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        // Disabled: plain LRU evicts the high-cost block 0.
        assert!(!c.contains(BlockAddr(0)));
        assert!(!c.policy().enabled(S0));
        assert_eq!(c.policy().stats().reservations, 0);
        // ...but block 0 entered the watch ETD (cheaper block 1 existed).
        assert_eq!(c.policy().stats().watch_inserts, 1);
    }

    #[test]
    fn watch_hit_enables_reservations() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // LRU 0 evicted -> watch ETD
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // watch hit!
        assert!(c.policy().enabled(S0));
        assert_eq!(c.policy().counter_of(S0), TRIGGER_VALUE);
        assert_eq!(c.policy().stats().triggers, 1);
    }

    #[test]
    fn enabled_set_reserves_like_dcl() {
        let mut c = cache(2);
        // Warm up the automaton via a watch hit.
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // enables; set = [0(MRU), 2]
                                                           // Make 0 the LRU again, then fill: reservation protects it now.
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // set = [2(MRU), 0]...
                                                           // (block 0 at LRU, enabled): next fill displaces 2 instead of 0.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(
            c.contains(BlockAddr(0)),
            "enabled ACL must reserve the high-cost LRU block"
        );
        assert!(!c.contains(BlockAddr(2)));
        assert_eq!(c.policy().stats().reservations, 1);
    }

    #[test]
    fn success_increments_counter() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // trigger: counter = 2
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // 0 back to LRU
        c.access(BlockAddr(3), AccessType::Read, Cost(1)); // reserve 0
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // hit reserved block: success
        assert_eq!(c.policy().stats().successes, 1);
        assert_eq!(c.policy().counter_of(S0), 3);
    }

    #[test]
    fn failure_decrements_counter_until_disabled() {
        let geom = Geometry::new(128, 64, 2);
        let mut c = Cache::new(geom, Acl::new(&geom));
        // Enable via watch hit.
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // counter = 2; set [0, 2]
                                                           // Two failed reservations in a row: 0 reserved, depreciated away by
                                                           // ETD hits, finally evicted. Alternate accesses to 1 and 2 so the
                                                           // displaced block always returns.
        let mut expect_counter = TRIGGER_VALUE;
        for _ in 0..2 {
            // Move 0 to LRU by touching the other resident block.
            let others: Vec<u64> = c
                .recency_of(S0)
                .iter()
                .map(|b| b.0)
                .filter(|&b| b != 0)
                .collect();
            c.access(BlockAddr(others[0]), AccessType::Read, Cost(1));
            // Reserve 0 by filling new cheap blocks and re-referencing the
            // displaced ones until Acost (8) is exhausted: each round trip
            // costs 2*1 = 2, so 4 ETD hits end the reservation.
            let mut fresh = 100 + expect_counter as u64 * 10;
            for _ in 0..4 {
                c.access(BlockAddr(fresh), AccessType::Read, Cost(1)); // displace cheap
                let displaced: Vec<u64> =
                    c.policy().etd().blocks_in(S0).iter().map(|b| b.0).collect();
                c.access(BlockAddr(displaced[0]), AccessType::Read, Cost(1)); // ETD hit
                fresh += 1;
            }
            // Acost now 0: next fill evicts the reserved block 0 => failure.
            c.access(BlockAddr(fresh + 1), AccessType::Read, Cost(1));
            assert!(!c.contains(BlockAddr(0)));
            expect_counter -= 1;
            assert_eq!(c.policy().counter_of(S0), expect_counter);
            // Bring 0 back for the next round.
            c.access(BlockAddr(0), AccessType::Read, Cost(8));
        }
        assert!(!c.policy().enabled(S0));
        assert_eq!(c.policy().stats().failures, 2);
    }

    #[test]
    fn invalidation_of_reserved_block_is_failure() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(8));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(0), AccessType::Read, Cost(8)); // counter = 2
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // 0 to LRU
        c.access(BlockAddr(3), AccessType::Read, Cost(1)); // reserve 0
        assert_eq!(c.policy().stats().reservations, 1);
        c.invalidate(BlockAddr(0), InvalidateKind::Coherence);
        assert_eq!(c.policy().stats().failures, 1);
        assert_eq!(c.policy().counter_of(S0), 1);
    }

    #[test]
    fn uniform_costs_reduce_to_lru() {
        let mut c = cache(4);
        for b in [0u64, 4, 8, 12, 16, 20] {
            c.access(BlockAddr(b), AccessType::Read, Cost(3));
        }
        assert!(!c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(4)));
        assert_eq!(c.policy().stats().reservations, 0);
        assert_eq!(c.policy().stats().watch_inserts, 0);
    }
}
