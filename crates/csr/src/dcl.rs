//! The Dynamic Cost-sensitive LRU algorithm (DCL, Section 2.4).
//!
//! DCL keeps BCL's victim-selection rule but fixes its pessimistic
//! depreciation: the reserved block's `Acost` is reduced **only when a block
//! victimized in its place is actually re-referenced before the reserved
//! block** — the situation in which the reservation genuinely caused a miss.
//! Displaced blocks are remembered in the per-set Extended Tag Directory
//! ([`Etd`]); an access that misses in the cache but hits in the ETD
//! triggers the depreciation and consumes the entry. A hit on the in-cache
//! LRU block invalidates all ETD entries of the set.

use crate::etd::{Etd, EtdConfig, EtdStats};
use crate::reserve::{reservation_victim, AcostTracker};
use cache_sim::{
    BlockAddr, Cost, Geometry, InvalidateKind, ReplacementPolicy, SetIndex, SetView, Way,
};

/// Counters specific to [`Dcl`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DclStats {
    /// Victim selections that reserved the LRU block (victim was non-LRU).
    pub reservations: u64,
    /// Victim selections that evicted the LRU block.
    pub lru_evictions: u64,
    /// Depreciations triggered by ETD hits.
    pub depreciations: u64,
}

/// The DCL replacement policy.
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
/// use csr::Dcl;
///
/// let geom = Geometry::new(16 * 1024, 64, 4);
/// let mut cache = Cache::new(geom, Dcl::new(&geom));
/// cache.access(BlockAddr(1), AccessType::Read, Cost(8));
/// ```
#[derive(Debug, Clone)]
pub struct Dcl {
    trackers: Vec<AcostTracker>,
    etd: Etd,
    factor: u64,
    stats: DclStats,
}

impl Dcl {
    /// Creates a DCL policy with a full-tag, `assoc - 1`-entry ETD and the
    /// paper's depreciation factor of 2.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Dcl::with_etd_config(geom, EtdConfig::for_assoc(geom.assoc()))
    }

    /// Creates a DCL policy whose ETD stores only the low `bits` tag bits
    /// (Section 4.3 evaluates 4-bit aliased tags).
    #[must_use]
    pub fn with_aliased_tags(geom: &Geometry, bits: u32) -> Self {
        Dcl::with_etd_config(geom, EtdConfig::for_assoc_aliased(geom.assoc(), bits))
    }

    /// Creates a DCL policy with an explicit ETD configuration.
    #[must_use]
    pub fn with_etd_config(geom: &Geometry, cfg: EtdConfig) -> Self {
        Dcl {
            trackers: vec![AcostTracker::default(); geom.num_sets()],
            etd: Etd::new(geom.num_sets(), cfg),
            factor: 2,
            stats: DclStats::default(),
        }
    }

    /// Overrides the depreciation factor (the paper's value is 2).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_depreciation_factor(mut self, factor: u64) -> Self {
        assert!(factor > 0, "depreciation factor must be positive");
        self.factor = factor;
        self
    }

    /// Accumulated policy statistics.
    #[must_use]
    pub fn stats(&self) -> &DclStats {
        &self.stats
    }

    /// Statistics of the embedded ETD.
    #[must_use]
    pub fn etd_stats(&self) -> &EtdStats {
        self.etd.stats()
    }

    /// The embedded ETD (tests and debugging).
    #[must_use]
    pub fn etd(&self) -> &Etd {
        &self.etd
    }

    /// The remaining depreciated cost of the tracked LRU block in `set`.
    #[must_use]
    pub fn acost_of(&self, set: SetIndex) -> u64 {
        self.trackers[set.0].acost()
    }
}

impl ReplacementPolicy for Dcl {
    fn name(&self) -> &'static str {
        "DCL"
    }

    fn victim(&mut self, set: SetIndex, view: &SetView<'_>) -> Way {
        let t = &mut self.trackers[set.0];
        t.sync(view);
        if let Some((way, pos)) = reservation_victim(view, t.acost()) {
            // Unlike BCL, no depreciation here: the displaced block is
            // recorded in the ETD and charged only if re-referenced.
            let e = view.at(pos);
            self.etd.insert(set, e.block, e.cost);
            self.stats.reservations += 1;
            return way;
        }
        // The LRU block itself goes. Any ETD entries for the ended
        // reservation are deliberately kept (hardware would not sweep
        // them); they age out of the s-1-entry directory naturally.
        self.stats.lru_evictions += 1;
        let lru = view.lru();
        t.note_departure(lru.block);
        lru.way
    }

    fn on_hit(&mut self, set: SetIndex, view: &SetView<'_>, _way: Way, stack_pos: usize) {
        let block = view.at(stack_pos).block;
        if stack_pos + 1 == view.len() {
            // A hit on the in-cache LRU block: the reservation (if any)
            // paid off; all ETD entries are invalidated (Section 2.4).
            self.etd.clear_set(set);
        }
        self.trackers[set.0].note_departure(block);
    }

    fn on_miss(&mut self, set: SetIndex, view: &SetView<'_>, block: BlockAddr) {
        if let Some(cost) = self.etd.probe_and_take(set, block) {
            // The reservation displaced this block and it came back:
            // depreciate the reserved block's cost, as in BCL.
            let t = &mut self.trackers[set.0];
            t.sync(view);
            t.depreciate(Cost(cost.0.saturating_mul(self.factor)));
            self.stats.depreciations += 1;
        }
    }

    fn on_invalidate(
        &mut self,
        set: SetIndex,
        block: BlockAddr,
        _resident: Option<(Way, usize)>,
        _kind: InvalidateKind,
    ) {
        self.etd.invalidate(set, block);
        self.trackers[set.0].note_departure(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache};

    fn cache(assoc: usize) -> Cache<Dcl> {
        let geom = Geometry::new(64 * assoc as u64, 64, assoc);
        Cache::new(geom, Dcl::new(&geom))
    }

    #[test]
    fn reservation_without_rereference_never_depreciates() {
        // Unlike BCL, victimizing never-again-referenced cheap blocks keeps
        // the reservation alive indefinitely.
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4)); // high-cost, becomes LRU
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        for b in 2..40u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(c.contains(BlockAddr(0)), "no ETD hits => no depreciation");
        assert_eq!(c.policy().acost_of(SetIndex(0)), 4);
        assert_eq!(c.policy().stats().depreciations, 0);
    }

    #[test]
    fn etd_hit_depreciates_reservation() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // displace 1 -> ETD
        assert_eq!(c.policy().acost_of(SetIndex(0)), 4);
        // Re-reference the displaced block: ETD hit, Acost 4 - 2*1 = 2.
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        assert_eq!(c.policy().acost_of(SetIndex(0)), 2);
        assert_eq!(c.policy().stats().depreciations, 1);
        // Again: 2 was displaced by the fill of 1 (ETD), bring 2 back.
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert_eq!(c.policy().acost_of(SetIndex(0)), 0);
        // Acost exhausted: the reserved block is the next victim.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(!c.contains(BlockAddr(0)));
    }

    #[test]
    fn displaced_blocks_are_recorded_in_etd() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert_eq!(c.policy().etd().blocks_in(SetIndex(0)), vec![BlockAddr(1)]);
    }

    #[test]
    fn lru_hit_clears_etd() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // ETD: {1}
        assert_eq!(c.policy().etd().len(SetIndex(0)), 1);
        c.access(BlockAddr(0), AccessType::Read, Cost(4)); // hit on LRU block
        assert!(c.policy().etd().is_empty(SetIndex(0)));
    }

    #[test]
    fn coherence_invalidation_drops_etd_entry() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // ETD: {1}
        c.invalidate(BlockAddr(1), InvalidateKind::Coherence);
        assert!(c.policy().etd().is_empty(SetIndex(0)));
        // A later access to 1 must not depreciate the reservation.
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        assert_eq!(c.policy().acost_of(SetIndex(0)), 4);
    }

    #[test]
    fn cache_and_etd_tags_stay_mutually_exclusive() {
        let mut c = cache(4);
        // Build up reservations and displacements, then check exclusivity
        // after every access.
        let pattern: Vec<(u64, u64)> = vec![
            (0, 9),
            (4, 1),
            (8, 1),
            (12, 1),
            (16, 1),
            (4, 1),
            (20, 9),
            (8, 1),
            (0, 9),
            (24, 1),
            (4, 1),
        ];
        for (b, cost) in pattern {
            c.access(BlockAddr(b), AccessType::Read, Cost(cost));
            let etd_blocks = c.policy().etd().blocks_in(SetIndex(0));
            for eb in etd_blocks {
                assert!(
                    !c.contains(eb),
                    "block {eb} is both resident and in the ETD"
                );
            }
        }
    }

    #[test]
    fn uniform_costs_reduce_to_lru() {
        let mut c = cache(4);
        // All costs equal: DCL must evict exactly the LRU block every time.
        for b in [0u64, 4, 8, 12, 16, 20] {
            c.access(BlockAddr(b), AccessType::Read, Cost(3));
        }
        assert!(!c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(4)));
        assert!(c.contains(BlockAddr(8)));
        assert_eq!(c.policy().stats().reservations, 0);
    }
}
