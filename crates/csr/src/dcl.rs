//! The Dynamic Cost-sensitive LRU algorithm (DCL, Section 2.4).
//!
//! DCL keeps BCL's victim-selection rule but fixes its pessimistic
//! depreciation: the reserved block's `Acost` is reduced **only when a block
//! victimized in its place is actually re-referenced before the reserved
//! block** — the situation in which the reservation genuinely caused a miss.
//! Displaced blocks are remembered in the per-set Extended Tag Directory
//! ([`EtdSet`]); an access that misses in the cache but hits in the ETD
//! triggers the depreciation and consumes the entry. A hit on the in-cache
//! LRU block invalidates all ETD entries of the set.
//!
//! The single-region logic lives in [`DclCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`Dcl`] replicates one core
//! per set for the simulator.

use crate::etd::{EtdConfig, EtdSet, EtdStats, EtdView};
use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use crate::reserve::{reservation_victim, AcostTracker};
use cache_sim::{BlockAddr, Cost, Geometry, SetIndex, SetView, Way};
use csr_obs::{NopObserver, Observer};

/// Counters specific to [`Dcl`] / [`DclCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DclStats {
    /// Victim selections that reserved the LRU block (victim was non-LRU).
    pub reservations: u64,
    /// Victim selections that evicted the LRU block.
    pub lru_evictions: u64,
    /// Depreciations triggered by ETD hits.
    pub depreciations: u64,
}

impl DclStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &DclStats) {
        self.reservations += other.reservations;
        self.lru_evictions += other.lru_evictions;
        self.depreciations += other.depreciations;
    }
}

/// DCL for a single replacement region, owning its shadow directory.
#[derive(Debug, Clone)]
pub struct DclCore<O: Observer = NopObserver> {
    tracker: AcostTracker,
    etd: EtdSet,
    factor: u64,
    stats: DclStats,
    obs: O,
}

impl DclCore {
    /// Creates a core around the given shadow directory with the paper's
    /// depreciation factor of 2.
    #[must_use]
    pub fn new(etd: EtdSet) -> Self {
        DclCore {
            tracker: AcostTracker::default(),
            etd,
            factor: 2,
            stats: DclStats::default(),
            obs: NopObserver,
        }
    }

    /// Creates a core for a region of `ways` blockframes with the paper's
    /// full-tag, `ways - 1`-entry directory.
    #[must_use]
    pub fn for_ways(ways: usize) -> Self {
        DclCore::new(EtdSet::new(EtdConfig::for_assoc(ways)))
    }
}

impl<O: Observer> DclCore<O> {
    /// Overrides the depreciation factor (the paper's value is 2).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_depreciation_factor(mut self, factor: u64) -> Self {
        assert!(factor > 0, "depreciation factor must be positive");
        self.factor = factor;
        self
    }

    /// Accumulated policy statistics.
    #[must_use]
    pub fn stats(&self) -> &DclStats {
        &self.stats
    }

    /// The embedded shadow directory.
    #[must_use]
    pub fn etd(&self) -> &EtdSet {
        &self.etd
    }

    /// The remaining depreciated cost of the tracked LRU block.
    #[must_use]
    pub fn acost(&self) -> u64 {
        self.tracker.acost()
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> DclCore<O2> {
        DclCore {
            tracker: self.tracker,
            etd: self.etd,
            factor: self.factor,
            stats: self.stats,
            obs,
        }
    }
}

impl<O: Observer> EvictionPolicy for DclCore<O> {
    fn name(&self) -> &'static str {
        "DCL"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        self.tracker.sync(view);
        if let Some((way, pos)) = reservation_victim(view, self.tracker.acost()) {
            // Unlike BCL, no depreciation here: the displaced block is
            // recorded in the ETD and charged only if re-referenced.
            let e = view.at(pos);
            self.etd.insert(e.block, e.cost);
            self.stats.reservations += 1;
            let lru = view.lru();
            self.obs.on_reserve(lru.block, e.block, e.cost);
            self.obs.on_evict(e.block, e.cost);
            return way;
        }
        // The LRU block itself goes. Any ETD entries for the ended
        // reservation are deliberately kept (hardware would not sweep
        // them); they age out of the s-1-entry directory naturally.
        self.stats.lru_evictions += 1;
        let lru = view.lru();
        self.tracker.note_departure(lru.block);
        self.obs.on_evict(lru.block, lru.cost);
        lru.way
    }

    fn on_hit(&mut self, block: BlockAddr, _way: Way, cost: Cost, is_lru: bool) {
        if is_lru {
            // A hit on the in-cache LRU block: the reservation (if any)
            // paid off; all ETD entries are invalidated (Section 2.4).
            self.etd.clear();
        }
        self.tracker.note_departure(block);
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, lru: Option<(BlockAddr, Cost)>) {
        self.obs.on_miss(block);
        if let Some(cost) = self.etd.probe_and_take(block) {
            // The reservation displaced this block and it came back:
            // depreciate the reserved block's cost, as in BCL.
            self.tracker.sync_to(lru);
            let amount = cost.0.saturating_mul(self.factor);
            self.tracker.depreciate(Cost(amount));
            self.stats.depreciations += 1;
            self.obs.on_etd_hit(block, cost);
            self.obs.on_depreciate(amount, self.tracker.acost());
        }
    }

    fn on_remove(&mut self, block: BlockAddr) {
        self.etd.invalidate(block);
        self.tracker.note_departure(block);
    }
}

/// The DCL replacement policy (one [`DclCore`] per set).
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, Geometry, AccessType, Cost, BlockAddr};
/// use csr::Dcl;
///
/// let geom = Geometry::new(16 * 1024, 64, 4);
/// let mut cache = Cache::new(geom, Dcl::new(&geom));
/// cache.access(BlockAddr(1), AccessType::Read, Cost(8));
/// ```
#[derive(Debug, Clone)]
pub struct Dcl<O: Observer = NopObserver> {
    cores: Vec<DclCore<O>>,
}

impl Dcl {
    /// Creates a DCL policy with a full-tag, `assoc - 1`-entry ETD and the
    /// paper's depreciation factor of 2.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        Dcl::with_etd_config(geom, EtdConfig::for_assoc(geom.assoc()))
    }

    /// Creates a DCL policy whose ETD stores only the low `bits` tag bits
    /// (Section 4.3 evaluates 4-bit aliased tags).
    #[must_use]
    pub fn with_aliased_tags(geom: &Geometry, bits: u32) -> Self {
        Dcl::with_etd_config(geom, EtdConfig::for_assoc_aliased(geom.assoc(), bits))
    }

    /// Creates a DCL policy with an explicit ETD configuration.
    #[must_use]
    pub fn with_etd_config(geom: &Geometry, cfg: EtdConfig) -> Self {
        let set_bits = geom.num_sets().trailing_zeros();
        Dcl {
            cores: (0..geom.num_sets())
                .map(|_| DclCore::new(EtdSet::with_stripped_bits(cfg, set_bits)))
                .collect(),
        }
    }
}

impl<O: Observer> Dcl<O> {
    /// Overrides the depreciation factor (the paper's value is 2).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_depreciation_factor(mut self, factor: u64) -> Self {
        self.cores = self
            .cores
            .into_iter()
            .map(|c| c.with_depreciation_factor(factor))
            .collect();
        self
    }

    /// Policy statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> DclStats {
        let mut total = DclStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Statistics of the embedded ETD, accumulated across all sets.
    #[must_use]
    pub fn etd_stats(&self) -> EtdStats {
        self.etd().stats()
    }

    /// A set-indexed view of the embedded ETD (tests and debugging).
    #[must_use]
    pub fn etd(&self) -> EtdView<'_> {
        EtdView::new(self.cores.iter().map(DclCore::etd).collect())
    }

    /// The remaining depreciated cost of the tracked LRU block in `set`.
    #[must_use]
    pub fn acost_of(&self, set: SetIndex) -> u64 {
        self.cores[set.0].acost()
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> Dcl<O2> {
        Dcl {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(Dcl, "DCL");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache, InvalidateKind};

    fn cache(assoc: usize) -> Cache<Dcl> {
        let geom = Geometry::new(64 * assoc as u64, 64, assoc);
        Cache::new(geom, Dcl::new(&geom))
    }

    #[test]
    fn reservation_without_rereference_never_depreciates() {
        // Unlike BCL, victimizing never-again-referenced cheap blocks keeps
        // the reservation alive indefinitely.
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4)); // high-cost, becomes LRU
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        for b in 2..40u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(c.contains(BlockAddr(0)), "no ETD hits => no depreciation");
        assert_eq!(c.policy().acost_of(SetIndex(0)), 4);
        assert_eq!(c.policy().stats().depreciations, 0);
    }

    #[test]
    fn etd_hit_depreciates_reservation() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // displace 1 -> ETD
        assert_eq!(c.policy().acost_of(SetIndex(0)), 4);
        // Re-reference the displaced block: ETD hit, Acost 4 - 2*1 = 2.
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        assert_eq!(c.policy().acost_of(SetIndex(0)), 2);
        assert_eq!(c.policy().stats().depreciations, 1);
        // Again: 2 was displaced by the fill of 1 (ETD), bring 2 back.
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert_eq!(c.policy().acost_of(SetIndex(0)), 0);
        // Acost exhausted: the reserved block is the next victim.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(!c.contains(BlockAddr(0)));
    }

    #[test]
    fn displaced_blocks_are_recorded_in_etd() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert_eq!(c.policy().etd().blocks_in(SetIndex(0)), vec![BlockAddr(1)]);
    }

    #[test]
    fn lru_hit_clears_etd() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // ETD: {1}
        assert_eq!(c.policy().etd().len(SetIndex(0)), 1);
        c.access(BlockAddr(0), AccessType::Read, Cost(4)); // hit on LRU block
        assert!(c.policy().etd().is_empty(SetIndex(0)));
    }

    #[test]
    fn coherence_invalidation_drops_etd_entry() {
        let mut c = cache(2);
        c.access(BlockAddr(0), AccessType::Read, Cost(4));
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1)); // ETD: {1}
        c.invalidate(BlockAddr(1), InvalidateKind::Coherence);
        assert!(c.policy().etd().is_empty(SetIndex(0)));
        // A later access to 1 must not depreciate the reservation.
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        assert_eq!(c.policy().acost_of(SetIndex(0)), 4);
    }

    #[test]
    fn cache_and_etd_tags_stay_mutually_exclusive() {
        let mut c = cache(4);
        // Build up reservations and displacements, then check exclusivity
        // after every access.
        let pattern: Vec<(u64, u64)> = vec![
            (0, 9),
            (4, 1),
            (8, 1),
            (12, 1),
            (16, 1),
            (4, 1),
            (20, 9),
            (8, 1),
            (0, 9),
            (24, 1),
            (4, 1),
        ];
        for (b, cost) in pattern {
            c.access(BlockAddr(b), AccessType::Read, Cost(cost));
            let etd_blocks = c.policy().etd().blocks_in(SetIndex(0));
            for eb in etd_blocks {
                assert!(
                    !c.contains(eb),
                    "block {eb} is both resident and in the ETD"
                );
            }
        }
    }

    #[test]
    fn uniform_costs_reduce_to_lru() {
        let mut c = cache(4);
        // All costs equal: DCL must evict exactly the LRU block every time.
        for b in [0u64, 4, 8, 12, 16, 20] {
            c.access(BlockAddr(b), AccessType::Read, Cost(3));
        }
        assert!(!c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(4)));
        assert!(c.contains(BlockAddr(8)));
        assert_eq!(c.policy().stats().reservations, 0);
    }
}
