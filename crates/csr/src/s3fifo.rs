//! S3-FIFO: static small/main/ghost FIFO queues (Qiu et al., SOSP'23).
//!
//! Three plain FIFO queues replace recency tracking entirely. New blocks
//! enter a **small** probationary queue (≈10% of the region). When the
//! small queue is over target, its head is examined: blocks that were hit
//! at least once while probationary are promoted to the **main** queue;
//! one-hit wonders are evicted and their *key* recorded in a bounded
//! **ghost** FIFO. A refill of a ghosted key goes straight to main — the
//! block proved it has reuse beyond a single scan pass. Main evicts with
//! lazy second-chance: a head with non-zero frequency is decremented and
//! reinserted at the tail.
//!
//! The design is scan-resistant by construction (a sequential scan flows
//! through the small queue and the ghost without ever displacing main) and
//! needs no per-access pointer surgery, which is why it beats LRU-family
//! policies on scan-heavy traffic. It is cost-*oblivious*; the adaptive
//! selector in `csr-cache` exists precisely to pick it only when locality
//! patterns (not cost skew) dominate.
//!
//! The single-region logic lives in [`S3FifoCore`] (an
//! [`EvictionPolicy`](crate::EvictionPolicy)); [`S3Fifo`] replicates one
//! core per set for the simulator.

use crate::eviction::{impl_replacement_via_cores, EvictionPolicy};
use cache_sim::{BlockAddr, Cost, Geometry, SetView, Way};
use csr_obs::{NopObserver, Observer};
use std::collections::{HashMap, HashSet, VecDeque};

/// Hit-count saturation point (the paper's 2-bit counter).
const FREQ_CAP: u8 = 3;

/// Counters specific to [`S3Fifo`] / [`S3FifoCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct S3FifoStats {
    /// Total victim selections.
    pub victims: u64,
    /// Victim selections that chose a block other than the LRU block.
    pub non_lru_victims: u64,
    /// Evictions taken from the small (probationary) queue.
    pub small_evictions: u64,
    /// Evictions taken from the main queue.
    pub main_evictions: u64,
    /// Small-queue heads promoted to main instead of being evicted.
    pub promotions: u64,
    /// Fills that went straight to main because the key was in the ghost.
    pub ghost_rescues: u64,
}

impl S3FifoStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &S3FifoStats) {
        self.victims += other.victims;
        self.non_lru_victims += other.non_lru_victims;
        self.small_evictions += other.small_evictions;
        self.main_evictions += other.main_evictions;
        self.promotions += other.promotions;
        self.ghost_rescues += other.ghost_rescues;
    }
}

#[derive(Debug, Clone, Copy)]
struct S3Meta {
    freq: u8,
    in_small: bool,
}

/// S3-FIFO for a single replacement region of a fixed number of ways.
#[derive(Debug, Clone)]
pub struct S3FifoCore<O: Observer = NopObserver> {
    /// Resident blocks only; absence means the block is not tracked.
    meta: HashMap<BlockAddr, S3Meta>,
    small: VecDeque<BlockAddr>,
    main: VecDeque<BlockAddr>,
    /// Ghost keys, FIFO order. Entries may be stale (rescued keys stay in
    /// the deque until they reach the front); `ghost_set` is authoritative.
    ghost_fifo: VecDeque<BlockAddr>,
    ghost_set: HashSet<BlockAddr>,
    /// Live (non-stale) block counts per queue.
    small_len: usize,
    main_len: usize,
    small_target: usize,
    ghost_cap: usize,
    ways: usize,
    stats: S3FifoStats,
    obs: O,
}

impl S3FifoCore {
    /// Creates a core for a region of `ways` blockframes.
    #[must_use]
    pub fn new(ways: usize) -> Self {
        S3FifoCore {
            meta: HashMap::new(),
            small: VecDeque::new(),
            main: VecDeque::new(),
            ghost_fifo: VecDeque::new(),
            ghost_set: HashSet::new(),
            small_len: 0,
            main_len: 0,
            small_target: (ways / 10).max(1),
            ghost_cap: ways.max(1),
            ways,
            stats: S3FifoStats::default(),
            obs: NopObserver,
        }
    }
}

impl<O: Observer> S3FifoCore<O> {
    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &S3FifoStats {
        &self.stats
    }

    /// Attaches a decision observer, replacing any existing one.
    #[must_use]
    pub fn with_observer<O2: Observer>(self, obs: O2) -> S3FifoCore<O2> {
        S3FifoCore {
            meta: self.meta,
            small: self.small,
            main: self.main,
            ghost_fifo: self.ghost_fifo,
            ghost_set: self.ghost_set,
            small_len: self.small_len,
            main_len: self.main_len,
            small_target: self.small_target,
            ghost_cap: self.ghost_cap,
            ways: self.ways,
            stats: self.stats,
            obs,
        }
    }

    /// Pops small-queue heads until one is live in the small queue.
    fn pop_live_small(&mut self) -> Option<BlockAddr> {
        while let Some(b) = self.small.pop_front() {
            if self.meta.get(&b).is_some_and(|m| m.in_small) {
                return Some(b);
            }
        }
        None
    }

    /// Pops main-queue heads until one is live in the main queue.
    fn pop_live_main(&mut self) -> Option<BlockAddr> {
        while let Some(b) = self.main.pop_front() {
            if self.meta.get(&b).is_some_and(|m| !m.in_small) {
                return Some(b);
            }
        }
        None
    }

    /// Records an evicted key in the bounded ghost FIFO.
    fn ghost_insert(&mut self, b: BlockAddr) {
        if self.ghost_set.insert(b) {
            self.ghost_fifo.push_back(b);
        }
        while self.ghost_set.len() > self.ghost_cap {
            match self.ghost_fifo.pop_front() {
                Some(f) => {
                    self.ghost_set.remove(&f);
                }
                None => break,
            }
        }
        // Stale (rescued) entries are dropped here too, so the deque stays
        // within a constant factor of the live ghost.
        while self.ghost_fifo.len() > 2 * self.ghost_cap {
            if let Some(f) = self.ghost_fifo.pop_front() {
                self.ghost_set.remove(&f);
            }
        }
    }

    /// Books the eviction of the view entry at `pos` and returns its way.
    fn finish(&mut self, view: &SetView<'_>, pos: usize) -> Way {
        self.stats.victims += 1;
        let chosen = view.at(pos);
        self.obs.on_evict(chosen.block, chosen.cost);
        if pos + 1 != view.len() {
            self.stats.non_lru_victims += 1;
            let lru = view.lru();
            self.obs.on_reserve(lru.block, chosen.block, chosen.cost);
        }
        chosen.way
    }
}

impl<O: Observer> EvictionPolicy for S3FifoCore<O> {
    fn name(&self) -> &'static str {
        "S3-FIFO"
    }

    fn victim(&mut self, view: &SetView<'_>) -> Way {
        let mut by_block = HashMap::with_capacity(view.len());
        for (pos, e) in view.iter().enumerate() {
            by_block.insert(e.block, pos);
        }
        // Every pass either evicts, promotes a small head (at most once per
        // live block), or decrements a main head's frequency (at most
        // FREQ_CAP times per block), so the bound below is generous.
        let mut guard = self.small.len() + self.main.len() + 4 * self.ways + 8;
        while guard > 0 {
            guard -= 1;
            let from_small = self.small_len > self.small_target || self.main_len == 0;
            if from_small {
                let Some(b) = self.pop_live_small() else {
                    self.small_len = 0;
                    if self.main_len == 0 {
                        break;
                    }
                    continue;
                };
                let freq = self.meta.get(&b).map_or(0, |m| m.freq);
                if freq > 0 {
                    // Hit at least once while probationary: promote.
                    if let Some(m) = self.meta.get_mut(&b) {
                        m.in_small = false;
                    }
                    self.main.push_back(b);
                    self.small_len -= 1;
                    self.main_len += 1;
                    self.stats.promotions += 1;
                    continue;
                }
                self.small_len -= 1;
                self.meta.remove(&b);
                if let Some(&pos) = by_block.get(&b) {
                    self.ghost_insert(b);
                    self.stats.small_evictions += 1;
                    return self.finish(view, pos);
                }
            } else {
                let Some(b) = self.pop_live_main() else {
                    self.main_len = 0;
                    if self.small_len == 0 {
                        break;
                    }
                    continue;
                };
                let freq = self.meta.get(&b).map_or(0, |m| m.freq);
                if freq > 0 {
                    // Second chance: spend one frequency unit, go to tail.
                    if let Some(m) = self.meta.get_mut(&b) {
                        m.freq -= 1;
                    }
                    self.main.push_back(b);
                    continue;
                }
                self.main_len -= 1;
                self.meta.remove(&b);
                if let Some(&pos) = by_block.get(&b) {
                    self.stats.main_evictions += 1;
                    return self.finish(view, pos);
                }
            }
        }
        // The queues know nothing about this view (fresh core, or one hot-
        // attached to a warm region): fall back to the LRU block.
        let lru = view.lru();
        if let Some(m) = self.meta.remove(&lru.block) {
            if m.in_small {
                self.small_len = self.small_len.saturating_sub(1);
            } else {
                self.main_len = self.main_len.saturating_sub(1);
            }
        }
        self.finish(view, view.len() - 1)
    }

    fn on_hit(&mut self, block: BlockAddr, _way: Way, cost: Cost, _is_lru: bool) {
        if let Some(m) = self.meta.get_mut(&block) {
            m.freq = (m.freq + 1).min(FREQ_CAP);
        }
        self.obs.on_hit(block, cost);
    }

    fn on_miss(&mut self, block: BlockAddr, _lru: Option<(BlockAddr, Cost)>) {
        // The ghost is consulted (and consumed) in `on_fill`, so the double
        // miss delivery of a get-then-insert flow is harmless here.
        self.obs.on_miss(block);
    }

    fn on_fill(&mut self, block: BlockAddr, _way: Way, _cost: Cost) {
        if self.meta.contains_key(&block) {
            // Overwrite of a resident block keeps its queue position.
            return;
        }
        if self.ghost_set.remove(&block) {
            self.stats.ghost_rescues += 1;
            self.meta.insert(
                block,
                S3Meta {
                    freq: 0,
                    in_small: false,
                },
            );
            self.main.push_back(block);
            self.main_len += 1;
        } else {
            self.meta.insert(
                block,
                S3Meta {
                    freq: 0,
                    in_small: true,
                },
            );
            self.small.push_back(block);
            self.small_len += 1;
        }
    }

    fn on_remove(&mut self, block: BlockAddr) {
        if let Some(m) = self.meta.remove(&block) {
            if m.in_small {
                self.small_len = self.small_len.saturating_sub(1);
            } else {
                self.main_len = self.main_len.saturating_sub(1);
            }
        }
    }
}

/// The S3-FIFO replacement policy (one [`S3FifoCore`] per set).
#[derive(Debug, Clone)]
pub struct S3Fifo<O: Observer = NopObserver> {
    cores: Vec<S3FifoCore<O>>,
}

impl S3Fifo {
    /// Creates an S3-FIFO policy for the given cache geometry.
    #[must_use]
    pub fn new(geom: &Geometry) -> Self {
        S3Fifo {
            cores: (0..geom.num_sets())
                .map(|_| S3FifoCore::new(geom.assoc()))
                .collect(),
        }
    }
}

impl<O: Observer> S3Fifo<O> {
    /// Statistics accumulated across all sets.
    #[must_use]
    pub fn stats(&self) -> S3FifoStats {
        let mut total = S3FifoStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }

    /// Attaches a decision observer; every set's core receives a clone.
    #[must_use]
    pub fn with_observer<O2: Observer + Clone>(self, obs: O2) -> S3Fifo<O2> {
        S3Fifo {
            cores: self
                .cores
                .into_iter()
                .map(|c| c.with_observer(obs.clone()))
                .collect(),
        }
    }
}

impl_replacement_via_cores!(S3Fifo, "S3-FIFO");

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessType, Cache, WayView};

    /// One-set, 8-way cache (small target 1).
    fn cache8() -> Cache<S3Fifo> {
        let geom = Geometry::new(512, 64, 8);
        Cache::new(geom, S3Fifo::new(&geom))
    }

    #[test]
    fn scan_does_not_displace_promoted_blocks() {
        let mut c = cache8();
        for b in 0..8u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        // Blocks 0 and 1 are hot: hit them twice each while probationary.
        for _ in 0..2 {
            c.access(BlockAddr(0), AccessType::Read, Cost(1));
            c.access(BlockAddr(1), AccessType::Read, Cost(1));
        }
        // A long one-touch scan flows through the small queue.
        for b in 100..150u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(c.contains(BlockAddr(0)), "hot block survived the scan");
        assert!(c.contains(BlockAddr(1)), "hot block survived the scan");
        let s = c.policy().stats();
        assert!(s.promotions >= 2, "hot blocks were promoted: {s:?}");
        assert!(s.small_evictions >= 40, "scan was absorbed by small: {s:?}");
        assert_eq!(s.main_evictions, 0, "main was never touched: {s:?}");
    }

    #[test]
    fn ghosted_key_is_rescued_to_main() {
        let mut c = cache8();
        for b in 0..9u64 {
            // Block 0 reaches the small head and is evicted into the ghost.
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(!c.contains(BlockAddr(0)));
        // Refill of the ghosted key goes straight to main.
        c.access(BlockAddr(0), AccessType::Read, Cost(1));
        assert!(c.contains(BlockAddr(0)));
        assert_eq!(c.policy().stats().ghost_rescues, 1);
        // Another long scan: the rescued block rides out main.
        for b in 200..230u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert!(c.contains(BlockAddr(0)), "rescued block survived the scan");
    }

    #[test]
    fn fresh_core_falls_back_to_lru() {
        // A core with empty queues (nothing ever filled) must still return
        // a valid way: the LRU fallback.
        let entries: Vec<WayView> = (0..4u64)
            .map(|b| WayView {
                way: Way(b as usize),
                block: BlockAddr(b),
                cost: Cost(1),
                dirty: false,
            })
            .collect();
        let mut core = S3FifoCore::new(4);
        assert_eq!(core.victim(&SetView::new(&entries)), Way(3));
        assert_eq!(core.name(), "S3-FIFO");
    }

    #[test]
    fn one_hit_wonders_leave_through_the_ghost() {
        let mut c = cache8();
        for b in 0..32u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        let s = c.policy().stats();
        assert_eq!(s.victims, 24);
        assert_eq!(s.small_evictions, 24, "every eviction was probationary");
        assert_eq!(s.promotions, 0);
    }
}
