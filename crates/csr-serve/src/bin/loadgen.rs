//! Closed-loop load generator for `csr-serve`.
//!
//! Spawns `--conns` worker threads, each owning one connection and
//! issuing requests back-to-back (closed loop: the next request waits for
//! the previous response). Keys are drawn from a Zipf distribution over
//! `--keys` distinct keys, the classic skew of cache workloads; a
//! configurable fraction of requests are `SET`s. Per-request latency goes
//! into a shared log-bucketed histogram, and the run ends with a summary
//! table plus, with `--json <dir>`, a `BENCH_serve.json` report combining
//! client-side latency percentiles with the server's own `STATS` numbers
//! (hit rate, aggregate measured miss cost, coalesced fetches).

use csr_obs::{Histogram, Json};
use csr_serve::{Client, OriginError};
use mem_trace::rng::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

fn usage() -> ! {
    println!(
        "loadgen: closed-loop Zipf load generator for csr-serve

USAGE: loadgen [OPTIONS]

  --addr HOST:PORT   server address (default 127.0.0.1:11311)
  --conns N          worker connections (default 8)
  --secs N           measured run duration in seconds (default 5)
  --warmup N         warm-up seconds before measurement starts (default 0):
                     load runs but latency/totals reset when it ends
  --keys N           distinct keys (default 2048)
  --zipf THETA       Zipf skew; 0 = uniform (default 0.9)
  --set-ratio F      fraction of requests that are SETs (default 0.05)
  --value-len N      SET payload length in bytes (default 128)
  --seed N           PRNG seed (default 42)
  --json DIR         write BENCH_serve.json into DIR
  -h, --help         this text"
    );
    std::process::exit(0);
}

struct Opts {
    addr: String,
    conns: usize,
    secs: u64,
    warmup: u64,
    keys: usize,
    zipf: f64,
    set_ratio: f64,
    value_len: usize,
    seed: u64,
    json_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        addr: "127.0.0.1:11311".to_owned(),
        conns: 8,
        secs: 5,
        warmup: 0,
        keys: 2048,
        zipf: 0.9,
        set_ratio: 0.05,
        value_len: 128,
        seed: 42,
        json_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--addr" => opts.addr = val("--addr"),
            "--conns" => opts.conns = parse_num(&val("--conns"), "--conns"),
            "--secs" => opts.secs = parse_num(&val("--secs"), "--secs"),
            "--warmup" => opts.warmup = parse_num(&val("--warmup"), "--warmup"),
            "--keys" => opts.keys = parse_num(&val("--keys"), "--keys"),
            "--zipf" => opts.zipf = parse_num(&val("--zipf"), "--zipf"),
            "--set-ratio" => opts.set_ratio = parse_num(&val("--set-ratio"), "--set-ratio"),
            "--value-len" => opts.value_len = parse_num(&val("--value-len"), "--value-len"),
            "--seed" => opts.seed = parse_num(&val("--seed"), "--seed"),
            "--json" => opts.json_dir = Some(val("--json").into()),
            "-h" | "--help" => usage(),
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    if opts.conns == 0 || opts.keys == 0 {
        die("--conns and --keys must be positive");
    }
    opts
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: bad number '{s}'")))
}

/// Cumulative Zipf distribution over ranks `1..=n` with skew `theta`
/// (`theta = 0` degenerates to uniform). Sampling is a binary search for
/// a uniform draw in the CDF.
fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        total += (rank as f64).powf(-theta);
        cdf.push(total);
    }
    for p in &mut cdf {
        *p /= total;
    }
    cdf
}

fn sample(cdf: &[f64], rng: &mut SplitMix64) -> usize {
    let r = rng.next_f64();
    cdf.partition_point(|&p| p < r).min(cdf.len() - 1)
}

struct Totals {
    ops: AtomicU64,
    sets: AtomicU64,
    empty_gets: AtomicU64,
    stale_gets: AtomicU64,
    origin_errors: AtomicU64,
    errors: AtomicU64,
}

impl Totals {
    fn reset(&self) {
        self.ops.store(0, Ordering::Relaxed);
        self.sets.store(0, Ordering::Relaxed);
        self.empty_gets.store(0, Ordering::Relaxed);
        self.stale_gets.store(0, Ordering::Relaxed);
        self.origin_errors.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
    }
}

fn main() {
    let opts = parse_args();
    let cdf = Arc::new(zipf_cdf(opts.keys, opts.zipf));
    let latency = Arc::new(Histogram::new());
    let totals = Arc::new(Totals {
        ops: AtomicU64::new(0),
        sets: AtomicU64::new(0),
        empty_gets: AtomicU64::new(0),
        stale_gets: AtomicU64::new(0),
        origin_errors: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });

    let launched = Instant::now();
    let deadline = launched + Duration::from_secs(opts.warmup + opts.secs);
    let workers: Vec<_> = (0..opts.conns)
        .map(|i| {
            let cdf = Arc::clone(&cdf);
            let latency = Arc::clone(&latency);
            let totals = Arc::clone(&totals);
            let addr = opts.addr.clone();
            let mut rng = SplitMix64::new(opts.seed ^ (0x9e37 + i as u64));
            let (set_ratio, value_len) = (opts.set_ratio, opts.value_len);
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr.as_str()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("worker {i}: connect failed: {e}");
                        totals.errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let payload = vec![b'v'; value_len];
                while Instant::now() < deadline {
                    let key = format!("key:{}", sample(&cdf, &mut rng));
                    let is_set = rng.chance(set_ratio);
                    let t0 = Instant::now();
                    let outcome = if is_set {
                        totals.sets.fetch_add(1, Ordering::Relaxed);
                        client.set(&key, &payload)
                    } else {
                        match client.get_value(&key) {
                            Ok(None) => {
                                totals.empty_gets.fetch_add(1, Ordering::Relaxed);
                                Ok(())
                            }
                            Ok(Some(v)) => {
                                if v.stale {
                                    totals.stale_gets.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    };
                    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                    match outcome {
                        Ok(()) => {
                            totals.ops.fetch_add(1, Ordering::Relaxed);
                            latency.record(us.max(1));
                        }
                        // A degraded origin is part of the workload under
                        // test, not a loadgen failure: the round-trip
                        // completed, so count it and keep going.
                        Err(e) if e.get_ref().is_some_and(|inner| inner.is::<OriginError>()) => {
                            totals.origin_errors.fetch_add(1, Ordering::Relaxed);
                            totals.ops.fetch_add(1, Ordering::Relaxed);
                            latency.record(us.max(1));
                        }
                        Err(e) => {
                            eprintln!("worker {i}: request failed: {e}");
                            totals.errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                let _ = client.quit();
            })
        })
        .collect();
    // Warm-up phase: the load runs but nothing it measured is kept — when
    // the phase ends, the shared histogram and totals reset and the clock
    // restarts. Workers mid-request contribute a straggling sample each
    // across the boundary: noise, not bias, and no coordination barrier.
    let mut measured_from = launched;
    if opts.warmup > 0 {
        std::thread::sleep(Duration::from_secs(opts.warmup));
        latency.reset();
        totals.reset();
        measured_from = Instant::now();
        eprintln!("loadgen: warmup over ({}s), measuring", opts.warmup);
    }
    for w in workers {
        let _ = w.join();
    }
    let elapsed = measured_from.elapsed().as_secs_f64();

    let ops = totals.ops.load(Ordering::Relaxed);
    let hist = latency.snapshot();
    let throughput = ops as f64 / elapsed.max(f64::EPSILON);
    println!("loadgen: {} -> {}", opts.conns, opts.addr);
    println!(
        "  ops {ops} ({:.0} ops/s over {elapsed:.2}s), sets {}, empty gets {}, stale gets {}, origin errors {}, errors {}",
        throughput,
        totals.sets.load(Ordering::Relaxed),
        totals.empty_gets.load(Ordering::Relaxed),
        totals.stale_gets.load(Ordering::Relaxed),
        totals.origin_errors.load(Ordering::Relaxed),
        totals.errors.load(Ordering::Relaxed),
    );
    println!(
        "  latency us: mean {:.0}  p50 {}  p90 {}  p99 {}  max {}",
        hist.mean(),
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.max(),
    );

    // Pull the server's own accounting: the measured miss costs the
    // policies optimized live here, not in the client.
    let server_stats = match Client::connect(opts.addr.as_str()).and_then(|mut c| c.stats()) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("loadgen: STATS fetch failed: {e}");
            Vec::new()
        }
    };
    let lookup = |name: &str| {
        server_stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    };
    let s_uint = |name: &str| Json::uint(lookup(name).parse().unwrap_or(0));
    let s_float = |name: &str| Json::Float(lookup(name).parse().unwrap_or(0.0));
    if !server_stats.is_empty() {
        println!(
            "  server: policy {} hit_rate {} aggregate_miss_cost {} coalesced {}",
            lookup("policy"),
            lookup("hit_rate"),
            lookup("aggregate_miss_cost"),
            lookup("coalesced_fetches"),
        );
    }

    if let Some(dir) = &opts.json_dir {
        let report = Json::obj([
            ("experiment", Json::str("serve_loadgen")),
            ("addr", Json::str(opts.addr.clone())),
            ("conns", Json::uint(opts.conns as u64)),
            ("secs", Json::uint(opts.secs)),
            ("warmup", Json::uint(opts.warmup)),
            ("keys", Json::uint(opts.keys as u64)),
            ("zipf", Json::Float(opts.zipf)),
            ("set_ratio", Json::Float(opts.set_ratio)),
            ("seed", Json::uint(opts.seed)),
            (
                "data",
                Json::obj([
                    ("ops", Json::uint(ops)),
                    ("sets", Json::uint(totals.sets.load(Ordering::Relaxed))),
                    (
                        "empty_gets",
                        Json::uint(totals.empty_gets.load(Ordering::Relaxed)),
                    ),
                    (
                        "stale_gets",
                        Json::uint(totals.stale_gets.load(Ordering::Relaxed)),
                    ),
                    (
                        "origin_errors",
                        Json::uint(totals.origin_errors.load(Ordering::Relaxed)),
                    ),
                    ("errors", Json::uint(totals.errors.load(Ordering::Relaxed))),
                    ("elapsed_s", Json::Float(elapsed)),
                    ("throughput_ops_per_s", Json::Float(throughput)),
                    (
                        "latency_us",
                        Json::obj([
                            ("mean", Json::Float(hist.mean())),
                            ("p50", Json::uint(hist.quantile(0.50))),
                            ("p90", Json::uint(hist.quantile(0.90))),
                            ("p99", Json::uint(hist.quantile(0.99))),
                            ("max", Json::uint(hist.max())),
                        ]),
                    ),
                    (
                        "server",
                        Json::obj([
                            ("policy", Json::str(lookup("policy"))),
                            ("lookups", s_uint("lookups")),
                            ("hits", s_uint("hits")),
                            ("misses", s_uint("misses")),
                            ("hit_rate", s_float("hit_rate")),
                            ("aggregate_miss_cost", s_uint("aggregate_miss_cost")),
                            ("mean_miss_cost", s_float("mean_miss_cost")),
                            ("coalesced_fetches", s_uint("coalesced_fetches")),
                            ("evictions", s_uint("evictions")),
                            ("resident", s_uint("resident")),
                            ("connections_shed", s_uint("connections_shed")),
                            ("requests_get", s_uint("requests_get")),
                            ("requests_set", s_uint("requests_set")),
                        ]),
                    ),
                ]),
            ),
        ]);
        let text = report.render();
        Json::parse(&text).expect("rendered report must re-parse");
        std::fs::create_dir_all(dir).expect("create --json directory");
        let path = dir.join("BENCH_serve.json");
        std::fs::write(&path, text + "\n").expect("write JSON report");
        eprintln!("wrote {}", path.display());
    }
}
