//! Closed-loop load generator for `csr-serve`.
//!
//! Spawns `--conns` worker threads, each owning one self-healing
//! [`FailoverClient`] and issuing requests back-to-back (closed loop: the
//! next request waits for the previous response). Keys are drawn from a
//! Zipf distribution over `--keys` distinct keys, the classic skew of
//! cache workloads; a configurable fraction of requests are `SET`s.
//! Per-request latency goes into a shared log-bucketed histogram, and the
//! run ends with a summary table plus, with `--json <dir>`, a
//! `BENCH_serve.json` report combining client-side latency percentiles
//! and healing counters with the server's own `STATS` numbers.
//!
//! # Chaos mode
//!
//! Any `--chaos-*` flag interposes an in-process [`ChaosProxy`] between
//! the workers and `--addr`, injecting seeded resets, corruption,
//! truncation, stalls, and (with `--chaos-partition-at-s`) one scripted
//! full partition. The run then doubles as a robustness check: every GET
//! value is validated, and the process exits nonzero on any wrong value
//! or any worker giving up — corrupted bytes must surface as detected
//! malformed frames (reconnect), never as data.
//!
//! # Open-loop / scaling-curve mode
//!
//! `--rate R` switches to an open-loop arrival process: requests are
//! *scheduled* at a fixed aggregate rate and spread round-robin over
//! `--conns` connections, so most connections sit idle — the C10K shape
//! a thread-per-connection server cannot hold. Latency is measured from
//! each request's **scheduled** send time, so a server that falls behind
//! accrues the queueing delay in its percentiles instead of silently
//! slowing the generator down (no coordinated omission). Connections are
//! multiplexed over a small thread pool (`--curve-threads`), not one
//! thread each, so the generator itself stays cheap at five-digit conn
//! counts. `--curve N,N,...` runs one open-loop stage per connection
//! count and prints a `curve:` line for each; `--compare-addr` repeats
//! the whole curve against a second server (e.g. `--io blocking` vs
//! `--io event`) so one run emits a comparable scaling curve for both
//! engines, tagged with each server's self-reported `io_mode`.

use csr_obs::{Histogram, Json, Registry, TraceContext};
use csr_serve::chaos::{ChaosConfig, ChaosProxy};
use csr_serve::client::{ClientMetrics, ConnectionError, FailoverClient, FailoverConfig, Timeouts};
use csr_serve::cluster::{parse_nodes, ClusterClient, ClusterClientConfig, ClusterMetrics};
use csr_serve::{Client, ClusterNode, OriginError, Value};
use mem_trace::rng::SplitMix64;
use std::io;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

fn usage() -> ! {
    println!(
        "loadgen: closed-loop Zipf load generator for csr-serve

USAGE: loadgen [OPTIONS]

  --addr HOST:PORT          server address (default 127.0.0.1:11311)
  --cluster LIST            cluster mode: comma-separated membership ('id=addr' or bare
                            'addr'); keys route by consistent hashing with hot-key
                            fan-out and re-routing, and the report becomes
                            BENCH_cluster.json with per-node STATS aggregated
  --hot-keys N              skew mode: the N lowest-ranked keys absorb --hot-frac of
                            the traffic on top of the Zipf draw (default 0 = off)
  --hot-frac F              traffic fraction aimed at the hot keys (default 0.5)
  --conns N                 worker connections (default 8)
  --secs N                  measured run duration in seconds (default 5)
  --warmup N                warm-up seconds before measurement starts (default 0):
                            load runs but latency/totals reset when it ends
  --keys N                  distinct keys (default 2048)
  --zipf THETA              Zipf skew; 0 = uniform (default 0.9)
  --scan-frac F             fraction of requests that sequentially scan a disjoint
                            one-touch key range instead of the Zipf draw (default 0)
  --scan-len N              per-worker scan cycle length in keys (default 4096)
  --phase-shift             three-act workload: Zipf, then scan-heavy (the --scan-frac
                            fraction, or 0.9 if unset), then Zipf again — each act a
                            third of the run; exercises adaptive policy selection
  --set-ratio F             fraction of requests that are SETs (default 0.05)
  --value-len N             SET payload length in bytes (default 128)
  --seed N                  PRNG seed (default 42)
  --json DIR                write BENCH_serve.json into DIR
  --connect-timeout-ms N    client connect deadline (default 5000)
  --op-timeout-ms N         client read/write deadline per socket op (default 10000)
  --max-attempts N          reconnect+replay attempts per op before giving up (default 64)
  --trace-sample N          attach a trace context to 1 in N GETs; after the run,
                            fetch TRACES from every node, merge the per-node
                            fragments by trace id (TRACES.jsonl with --json), and
                            report per-phase percentiles (default 0 = off)

Open-loop / scaling curve (incompatible with --cluster and --chaos):
  --rate N                  open-loop mode: schedule N requests/sec in aggregate,
                            spread round-robin over --conns mostly-idle
                            connections; latency is measured from the scheduled
                            send time (default 0 = closed loop)
  --curve LIST              comma-separated connection counts; runs one open-loop
                            stage of --secs per count and prints a 'curve:' line
                            each (implies --rate; default rate 2000 if unset)
  --compare-addr HOST:PORT  run the same curve against a second server and tag
                            each stage with the server's io_mode from STATS
  --curve-threads N         generator threads multiplexing the connections
                            (default 32, capped at the stage's conn count)

Chaos (any flag interposes a seeded ChaosProxy in front of --addr):
  --chaos-seed N            fault-plan seed (default 1)
  --chaos-reset-rate F      immediate connection resets (default 0)
  --chaos-mid-reset-rate F  mid-reply connection resets (default 0)
  --chaos-corrupt-rate F    single-byte corruption (default 0)
  --chaos-truncate-rate F   mid-reply truncation (default 0)
  --chaos-stall-rate F      mid-stream stalls (default 0)
  --chaos-stall-ms N        stall duration (default 100)
  --chaos-throttle-bps N    bandwidth cap, bytes/sec; 0 = off (default 0)
  --chaos-partial-write-rate F  relay replies in 1-7 byte writes (default 0)
  --chaos-partition-at-s N  start a full partition N seconds into the run
  --chaos-partition-secs N  partition duration (default 2)
  --chaos-node I            cluster mode: which node the proxy fronts (default 0)
  -h, --help                this text"
    );
    std::process::exit(0);
}

struct Opts {
    addr: String,
    cluster: Vec<ClusterNode>,
    hot_keys: usize,
    hot_frac: f64,
    conns: usize,
    secs: u64,
    warmup: u64,
    keys: usize,
    zipf: f64,
    scan_frac: f64,
    scan_len: u64,
    phase_shift: bool,
    set_ratio: f64,
    value_len: usize,
    seed: u64,
    json_dir: Option<std::path::PathBuf>,
    connect_timeout: Duration,
    op_timeout: Duration,
    max_attempts: u32,
    trace_sample: u64,
    rate: f64,
    curve: Vec<usize>,
    compare_addr: Option<String>,
    curve_threads: usize,
    chaos: bool,
    chaos_config: ChaosConfig,
    partition_at: Option<u64>,
    partition_secs: u64,
    chaos_node: usize,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        addr: "127.0.0.1:11311".to_owned(),
        cluster: Vec::new(),
        hot_keys: 0,
        hot_frac: 0.5,
        conns: 8,
        secs: 5,
        warmup: 0,
        keys: 2048,
        zipf: 0.9,
        scan_frac: 0.0,
        scan_len: 4096,
        phase_shift: false,
        set_ratio: 0.05,
        value_len: 128,
        seed: 42,
        json_dir: None,
        connect_timeout: Duration::from_millis(5000),
        op_timeout: Duration::from_millis(10_000),
        max_attempts: 64,
        trace_sample: 0,
        rate: 0.0,
        curve: Vec::new(),
        compare_addr: None,
        curve_threads: 32,
        chaos: false,
        chaos_config: ChaosConfig {
            seed: 1,
            ..ChaosConfig::default()
        },
        partition_at: None,
        partition_secs: 2,
        chaos_node: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        if a.starts_with("--chaos-") {
            opts.chaos = true;
        }
        match a.as_str() {
            "--addr" => opts.addr = val("--addr"),
            "--cluster" => opts.cluster = parse_nodes(&val("--cluster")),
            "--hot-keys" => opts.hot_keys = parse_num(&val("--hot-keys"), "--hot-keys"),
            "--hot-frac" => opts.hot_frac = parse_num(&val("--hot-frac"), "--hot-frac"),
            "--conns" => opts.conns = parse_num(&val("--conns"), "--conns"),
            "--secs" => opts.secs = parse_num(&val("--secs"), "--secs"),
            "--warmup" => opts.warmup = parse_num(&val("--warmup"), "--warmup"),
            "--keys" => opts.keys = parse_num(&val("--keys"), "--keys"),
            "--zipf" => opts.zipf = parse_num(&val("--zipf"), "--zipf"),
            "--scan-frac" => opts.scan_frac = parse_num(&val("--scan-frac"), "--scan-frac"),
            "--scan-len" => opts.scan_len = parse_num(&val("--scan-len"), "--scan-len"),
            "--phase-shift" => opts.phase_shift = true,
            "--set-ratio" => opts.set_ratio = parse_num(&val("--set-ratio"), "--set-ratio"),
            "--value-len" => opts.value_len = parse_num(&val("--value-len"), "--value-len"),
            "--seed" => opts.seed = parse_num(&val("--seed"), "--seed"),
            "--json" => opts.json_dir = Some(val("--json").into()),
            "--connect-timeout-ms" => {
                opts.connect_timeout = Duration::from_millis(parse_num(
                    &val("--connect-timeout-ms"),
                    "--connect-timeout-ms",
                ))
            }
            "--op-timeout-ms" => {
                opts.op_timeout =
                    Duration::from_millis(parse_num(&val("--op-timeout-ms"), "--op-timeout-ms"))
            }
            "--max-attempts" => {
                opts.max_attempts = parse_num(&val("--max-attempts"), "--max-attempts")
            }
            "--trace-sample" => {
                opts.trace_sample = parse_num(&val("--trace-sample"), "--trace-sample")
            }
            "--rate" => opts.rate = parse_num(&val("--rate"), "--rate"),
            "--curve" => {
                opts.curve = val("--curve")
                    .split(',')
                    .map(|s| parse_num(s.trim(), "--curve"))
                    .collect()
            }
            "--compare-addr" => opts.compare_addr = Some(val("--compare-addr")),
            "--curve-threads" => {
                opts.curve_threads = parse_num(&val("--curve-threads"), "--curve-threads")
            }
            "--chaos-seed" => {
                opts.chaos_config.seed = parse_num(&val("--chaos-seed"), "--chaos-seed")
            }
            "--chaos-reset-rate" => {
                opts.chaos_config.reset_rate =
                    parse_num(&val("--chaos-reset-rate"), "--chaos-reset-rate")
            }
            "--chaos-mid-reset-rate" => {
                opts.chaos_config.mid_reset_rate =
                    parse_num(&val("--chaos-mid-reset-rate"), "--chaos-mid-reset-rate")
            }
            "--chaos-corrupt-rate" => {
                opts.chaos_config.corrupt_rate =
                    parse_num(&val("--chaos-corrupt-rate"), "--chaos-corrupt-rate")
            }
            "--chaos-truncate-rate" => {
                opts.chaos_config.truncate_rate =
                    parse_num(&val("--chaos-truncate-rate"), "--chaos-truncate-rate")
            }
            "--chaos-stall-rate" => {
                opts.chaos_config.stall_rate =
                    parse_num(&val("--chaos-stall-rate"), "--chaos-stall-rate")
            }
            "--chaos-stall-ms" => {
                opts.chaos_config.stall =
                    Duration::from_millis(parse_num(&val("--chaos-stall-ms"), "--chaos-stall-ms"))
            }
            "--chaos-throttle-bps" => {
                opts.chaos_config.throttle_bytes_per_sec =
                    parse_num(&val("--chaos-throttle-bps"), "--chaos-throttle-bps")
            }
            "--chaos-partial-write-rate" => {
                opts.chaos_config.partial_write_rate = parse_num(
                    &val("--chaos-partial-write-rate"),
                    "--chaos-partial-write-rate",
                )
            }
            "--chaos-partition-at-s" => {
                opts.partition_at = Some(parse_num(
                    &val("--chaos-partition-at-s"),
                    "--chaos-partition-at-s",
                ))
            }
            "--chaos-partition-secs" => {
                opts.partition_secs =
                    parse_num(&val("--chaos-partition-secs"), "--chaos-partition-secs")
            }
            "--chaos-node" => opts.chaos_node = parse_num(&val("--chaos-node"), "--chaos-node"),
            "-h" | "--help" => usage(),
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    if opts.conns == 0 || opts.keys == 0 {
        die("--conns and --keys must be positive");
    }
    if !(0.0..=1.0).contains(&opts.hot_frac) {
        die("--hot-frac must be within 0..=1");
    }
    if !(0.0..=1.0).contains(&opts.scan_frac) {
        die("--scan-frac must be within 0..=1");
    }
    if opts.scan_len == 0 {
        die("--scan-len must be positive");
    }
    if !opts.cluster.is_empty() && opts.chaos_node >= opts.cluster.len() {
        die("--chaos-node is out of range for the --cluster list");
    }
    let open_loop = opts.rate > 0.0 || !opts.curve.is_empty();
    if open_loop && (!opts.cluster.is_empty() || opts.chaos) {
        die("--rate/--curve are incompatible with --cluster and --chaos");
    }
    if opts.compare_addr.is_some() && !open_loop {
        die("--compare-addr needs --rate or --curve");
    }
    if open_loop {
        if opts.rate <= 0.0 {
            opts.rate = 2000.0;
        }
        if opts.curve.is_empty() {
            opts.curve = vec![opts.conns];
        }
        if opts.curve.contains(&0) {
            die("--curve stages must be positive");
        }
        if opts.curve_threads == 0 {
            die("--curve-threads must be positive");
        }
    }
    opts
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: bad number '{s}'")))
}

/// Cumulative Zipf distribution over ranks `1..=n` with skew `theta`
/// (`theta = 0` degenerates to uniform). Sampling is a binary search for
/// a uniform draw in the CDF.
fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        total += (rank as f64).powf(-theta);
        cdf.push(total);
    }
    for p in &mut cdf {
        *p /= total;
    }
    cdf
}

fn sample(cdf: &[f64], rng: &mut SplitMix64) -> usize {
    let r = rng.next_f64();
    cdf.partition_point(|&p| p < r).min(cdf.len() - 1)
}

struct Totals {
    ops: AtomicU64,
    sets: AtomicU64,
    scan_ops: AtomicU64,
    empty_gets: AtomicU64,
    stale_gets: AtomicU64,
    forwarded_gets: AtomicU64,
    traced_gets: AtomicU64,
    origin_errors: AtomicU64,
    maybe_applied: AtomicU64,
    unavailable_writes: AtomicU64,
    /// GETs that returned a SET-shaped payload (all `b'v'`) for a key
    /// this run never SET: evidence of a previous run's write surviving
    /// a server restart through the persistence layer.
    restart_survivor_hits: AtomicU64,
    wrong_values: AtomicU64,
    errors: AtomicU64,
}

impl Totals {
    fn reset(&self) {
        self.ops.store(0, Ordering::Relaxed);
        self.sets.store(0, Ordering::Relaxed);
        self.scan_ops.store(0, Ordering::Relaxed);
        self.empty_gets.store(0, Ordering::Relaxed);
        self.stale_gets.store(0, Ordering::Relaxed);
        self.forwarded_gets.store(0, Ordering::Relaxed);
        self.traced_gets.store(0, Ordering::Relaxed);
        self.origin_errors.store(0, Ordering::Relaxed);
        self.maybe_applied.store(0, Ordering::Relaxed);
        self.unavailable_writes.store(0, Ordering::Relaxed);
        // wrong_values, errors, and restart_survivor_hits are *verdict*
        // counters, not load counters: never reset, even across the
        // warm-up boundary.
    }
}

/// The two client shapes a worker can drive: one failover client aimed
/// at a single server (possibly via the chaos proxy), or the
/// cluster-routing client over the full membership.
enum Bench {
    Single(Box<FailoverClient>),
    Cluster(Box<ClusterClient>),
}

impl Bench {
    fn get_value(&mut self, key: &str, trace: Option<TraceContext>) -> io::Result<Option<Value>> {
        match self {
            Bench::Single(c) => c.get_value_traced(key, trace),
            Bench::Cluster(c) => c.get_value_traced(key, trace),
        }
    }

    fn set(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        match self {
            Bench::Single(c) => c.set(key, value),
            Bench::Cluster(c) => c.set(key, value),
        }
    }

    fn close(&mut self) {
        match self {
            Bench::Single(c) => c.close(),
            Bench::Cluster(c) => c.close(),
        }
    }
}

/// The span names loadgen pools into per-phase percentiles — the request
/// phases the server instruments (see `csr_serve_phase_us`).
const PHASES: [&str; 6] = ["request", "parse", "cache", "origin", "forward", "stale"];

struct TraceReport {
    /// Merged JSONL: one line per trace, spans pooled across nodes.
    jsonl: String,
    /// Distinct trace ids seen across all nodes' TRACES dumps.
    unique: u64,
    /// Traces whose spans come from more than one node (forwarded hops).
    multi_node: u64,
    /// Traces any node flagged slow.
    slow: u64,
    /// Sorted span durations pooled by phase name.
    phases: Vec<(&'static str, Vec<u64>)>,
}

/// Merges per-node TRACES dumps. A forwarded request leaves one fragment
/// on each node it touched, all sharing the trace id minted by the
/// client; re-keying by that id reassembles the distributed trace.
fn merge_traces(dumps: &[String]) -> TraceReport {
    let mut ids: Vec<String> = Vec::new();
    let mut spans: Vec<Vec<Json>> = Vec::new();
    let mut nodes: Vec<Vec<String>> = Vec::new();
    let mut slow: Vec<bool> = Vec::new();
    let mut phases: Vec<(&'static str, Vec<u64>)> =
        PHASES.iter().map(|p| (*p, Vec::new())).collect();
    for dump in dumps {
        for line in dump.lines() {
            let Ok(entry) = Json::parse(line) else {
                continue;
            };
            let id = entry
                .get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned();
            let idx = ids.iter().position(|i| *i == id).unwrap_or_else(|| {
                ids.push(id.clone());
                spans.push(Vec::new());
                nodes.push(Vec::new());
                slow.push(false);
                ids.len() - 1
            });
            if entry.get("slow") == Some(&Json::Bool(true)) {
                slow[idx] = true;
            }
            for sp in entry.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
                if let Some(node) = sp.get("node").and_then(Json::as_str) {
                    if !nodes[idx].iter().any(|n| n == node) {
                        nodes[idx].push(node.to_owned());
                    }
                }
                if let (Some(name), Some(dur)) = (
                    sp.get("name").and_then(Json::as_str),
                    sp.get("dur_us").and_then(Json::as_i64),
                ) {
                    if let Some((_, v)) = phases.iter_mut().find(|(p, _)| *p == name) {
                        v.push(dur.max(0) as u64);
                    }
                }
                spans[idx].push(sp.clone());
            }
        }
    }
    let mut jsonl = String::new();
    let mut multi_node = 0u64;
    let mut slow_count = 0u64;
    for i in 0..ids.len() {
        if nodes[i].len() > 1 {
            multi_node += 1;
        }
        if slow[i] {
            slow_count += 1;
        }
        let merged = Json::obj([
            ("trace_id", Json::str(ids[i].clone())),
            ("nodes", Json::uint(nodes[i].len() as u64)),
            ("slow", Json::Bool(slow[i])),
            ("spans", Json::Arr(std::mem::take(&mut spans[i]))),
        ]);
        jsonl.push_str(&merged.render());
        jsonl.push('\n');
    }
    for (_, v) in &mut phases {
        v.sort_unstable();
    }
    TraceReport {
        jsonl,
        unique: ids.len() as u64,
        multi_node,
        slow: slow_count,
        phases,
    }
}

/// Exact percentile over a sorted sample (nearest-rank).
fn pctl(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A GET value is plausible iff it is one of the two things this run can
/// produce: a loadgen SET payload (all `b'v'`) or a SimBacking synthesis
/// (the key itself, `#`-padded). Anything else means corruption reached
/// the application — the one thing the chaos run must never allow.
fn plausible_value(key: &str, data: &[u8]) -> bool {
    data.starts_with(key.as_bytes()) || data.iter().all(|&b| b == b'v')
}

/// One measured point on the connections-vs-latency scaling curve.
struct StagePoint {
    mode: String,
    conns: usize,
    rate: f64,
    ops: u64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    shed: u64,
    errors: u64,
}

/// The target server's self-reported engine (`io_mode` in STATS).
fn io_mode_of(addr: &str) -> String {
    Client::connect(addr)
        .and_then(|mut c| c.stats())
        .ok()
        .and_then(|stats| stats.into_iter().find(|(n, _)| n == "io_mode"))
        .map(|(_, v)| v)
        .unwrap_or_else(|| "unknown".to_owned())
}

/// One open-loop stage: `conns` connections multiplexed over a small
/// thread pool, requests scheduled at `rate`/sec in aggregate and dealt
/// round-robin across the connections (each one mostly idle). Latency is
/// measured from the scheduled send time, so server-side queueing delay
/// lands in the percentiles instead of throttling the generator.
fn run_stage(addr: &str, conns: usize, opts: &Opts, wrong: &Arc<AtomicU64>) -> StagePoint {
    let threads = opts.curve_threads.min(conns);
    let latency = Arc::new(Histogram::new());
    let errors = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let ops = Arc::new(AtomicU64::new(0));
    let timeouts = Timeouts {
        connect: opts.connect_timeout,
        read: opts.op_timeout,
        write: opts.op_timeout,
    };
    let cdf = Arc::new(zipf_cdf(opts.keys, opts.zipf));
    // All threads aim at one shared epoch so the aggregate arrival
    // process is a clean fixed-rate schedule, interleaved per thread.
    // The epoch is set only after every thread has finished connecting
    // (the barrier): otherwise a slow connect storm at high `conns`
    // leaves the early schedule far in the past and the first ticks
    // charge the connect time to the server's latency.
    let interval = Duration::from_secs_f64(f64::from(u32::try_from(threads).unwrap()) / opts.rate);
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let epoch: Arc<std::sync::OnceLock<Instant>> = Arc::new(std::sync::OnceLock::new());

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let latency = Arc::clone(&latency);
            let errors = Arc::clone(&errors);
            let shed = Arc::clone(&shed);
            let ops = Arc::clone(&ops);
            let wrong = Arc::clone(wrong);
            let cdf = Arc::clone(&cdf);
            let barrier = Arc::clone(&barrier);
            let epoch = Arc::clone(&epoch);
            let addr = addr.to_owned();
            let mut rng = SplitMix64::new(opts.seed ^ (0x0c1e ^ t as u64));
            let my_conns = conns / threads + usize::from(t < conns % threads);
            let (set_ratio, value_len, secs) = (opts.set_ratio, opts.value_len, opts.secs);
            let offset = interval.mul_f64(t as f64 / threads as f64);
            std::thread::Builder::new()
                .name(format!("curve-{t}"))
                // Thousands of connections ride few threads, but keep
                // each one lean anyway: nothing here needs a deep stack.
                .stack_size(256 * 1024)
                .spawn(move || {
                    // Connect this thread's share of the stage's
                    // connections. A couple of retries absorb accept
                    // bursts when thousands connect at once.
                    let mut clients: Vec<Client> = Vec::with_capacity(my_conns);
                    for c in 0..my_conns {
                        let mut attempt = 0;
                        let connected = loop {
                            match Client::connect_with(addr.as_str(), &timeouts) {
                                Ok(cl) => break Some(cl),
                                Err(_) if attempt < 3 => {
                                    attempt += 1;
                                    std::thread::sleep(Duration::from_millis(25 << attempt));
                                }
                                Err(e) => {
                                    eprintln!("curve worker {t}: connect {c} failed: {e}");
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    break None;
                                }
                            }
                        };
                        if let Some(cl) = connected {
                            clients.push(cl);
                        }
                    }
                    // Every thread reaches the barrier, connected or not
                    // — an early return here would strand the others.
                    barrier.wait();
                    let start = *epoch.get_or_init(|| Instant::now() + Duration::from_millis(50));
                    let deadline = start + Duration::from_secs(secs);
                    if clients.is_empty() {
                        return;
                    }
                    let payload = vec![b'v'; value_len];
                    let mut tick = 0u64;
                    loop {
                        let scheduled =
                            start + offset + interval * u32::try_from(tick).unwrap_or(u32::MAX);
                        if scheduled >= deadline {
                            break;
                        }
                        // Open loop: sleep *until* the schedule, never
                        // stretch it. Falling behind means the next send
                        // happens late and its latency says so.
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let slot = usize::try_from(tick).unwrap_or(usize::MAX) % clients.len();
                        let key = format!("key:{}", sample(&cdf, &mut rng));
                        let is_set = rng.chance(set_ratio);
                        let client = &mut clients[slot];
                        let outcome = if is_set {
                            client.set(&key, &payload).map(|()| None)
                        } else {
                            client.get(&key)
                        };
                        let us = u64::try_from(scheduled.elapsed().as_micros()).unwrap_or(u64::MAX);
                        match outcome {
                            Ok(value) => {
                                if let Some(v) = value {
                                    if !plausible_value(&key, &v) {
                                        eprintln!("curve worker {t}: WRONG VALUE for {key}");
                                        wrong.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                ops.fetch_add(1, Ordering::Relaxed);
                                latency.record(us.max(1));
                            }
                            Err(e) => {
                                // `SERVER_BUSY` is the server's load-shed
                                // policy talking, not a malfunction: count
                                // it as its own curve column so shedding
                                // engines chart honestly without failing
                                // the generator's verdict.
                                if e.to_string().contains("SERVER_BUSY") {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    eprintln!("curve worker {t}: {key} failed: {e}");
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                                // The connection is suspect; replace it so
                                // one bad socket doesn't fail every later
                                // tick that lands on its slot.
                                match Client::connect_with(addr.as_str(), &timeouts) {
                                    Ok(fresh) => clients[slot] = fresh,
                                    Err(_) => {
                                        clients.swap_remove(slot);
                                        if clients.is_empty() {
                                            return;
                                        }
                                    }
                                }
                            }
                        }
                        tick += 1;
                    }
                })
                .expect("spawn curve worker")
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let hist = latency.snapshot();
    StagePoint {
        mode: io_mode_of(addr),
        conns,
        rate: opts.rate,
        ops: ops.load(Ordering::Relaxed),
        p50_us: hist.quantile(0.50),
        p99_us: hist.quantile(0.99),
        max_us: hist.max(),
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
    }
}

/// Open-loop scaling-curve mode: one stage per `--curve` count against
/// `--addr` (and `--compare-addr`, when given), a printed `curve:` line
/// per stage, and with `--json` a BENCH_serve.json whose data is the
/// scaling curve itself. Exits the process.
fn curve_main(opts: &Opts) -> ! {
    let wrong = Arc::new(AtomicU64::new(0));
    let mut points: Vec<StagePoint> = Vec::new();
    let targets: Vec<&str> = std::iter::once(opts.addr.as_str())
        .chain(opts.compare_addr.as_deref())
        .collect();
    for addr in &targets {
        for &conns in &opts.curve {
            let point = run_stage(addr, conns, opts, &wrong);
            println!(
                "curve: mode={} conns={} rate={:.0} ops={} p50_us={} p99_us={} max_us={} shed={} errors={}",
                point.mode,
                point.conns,
                point.rate,
                point.ops,
                point.p50_us,
                point.p99_us,
                point.max_us,
                point.shed,
                point.errors,
            );
            points.push(point);
        }
    }

    let errors: u64 = points.iter().map(|p| p.errors).sum();
    if let Some(dir) = &opts.json_dir {
        let curve: Vec<Json> = points
            .iter()
            .map(|p| {
                Json::obj([
                    ("mode", Json::str(p.mode.clone())),
                    ("conns", Json::uint(p.conns as u64)),
                    ("rate", Json::Float(p.rate)),
                    ("ops", Json::uint(p.ops)),
                    ("p50_us", Json::uint(p.p50_us)),
                    ("p99_us", Json::uint(p.p99_us)),
                    ("max_us", Json::uint(p.max_us)),
                    ("shed", Json::uint(p.shed)),
                    ("errors", Json::uint(p.errors)),
                ])
            })
            .collect();
        let meta = Json::obj([
            ("tool", Json::str("loadgen")),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            ("seed", Json::uint(opts.seed)),
            ("rate", Json::Float(opts.rate)),
            ("secs_per_stage", Json::uint(opts.secs)),
            ("keys", Json::uint(opts.keys as u64)),
            ("zipf", Json::Float(opts.zipf)),
            ("set_ratio", Json::Float(opts.set_ratio)),
            ("curve_threads", Json::uint(opts.curve_threads as u64)),
            ("targets", Json::uint(targets.len() as u64)),
        ]);
        let report = Json::obj([
            ("experiment", Json::str("serve_scaling_curve")),
            ("addr", Json::str(opts.addr.clone())),
            (
                "compare_addr",
                Json::str(opts.compare_addr.clone().unwrap_or_default()),
            ),
            ("meta", meta),
            (
                "data",
                Json::obj([
                    ("scaling_curve", Json::Arr(curve)),
                    ("wrong_values", Json::uint(wrong.load(Ordering::Relaxed))),
                    ("errors", Json::uint(errors)),
                ]),
            ),
        ]);
        let text = report.render();
        Json::parse(&text).expect("rendered report must re-parse");
        std::fs::create_dir_all(dir).expect("create --json directory");
        let path = dir.join("BENCH_serve.json");
        std::fs::write(&path, text + "\n").expect("write JSON report");
        eprintln!("wrote {}", path.display());
    }
    let wrong = wrong.load(Ordering::Relaxed);
    if wrong > 0 || errors > 0 {
        eprintln!("loadgen: FAILED ({wrong} wrong values, {errors} errors)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let opts = parse_args();
    if !opts.curve.is_empty() {
        curve_main(&opts);
    }
    let cdf = Arc::new(zipf_cdf(opts.keys, opts.zipf));
    let latency = Arc::new(Histogram::new());
    let totals = Arc::new(Totals {
        ops: AtomicU64::new(0),
        sets: AtomicU64::new(0),
        scan_ops: AtomicU64::new(0),
        empty_gets: AtomicU64::new(0),
        stale_gets: AtomicU64::new(0),
        forwarded_gets: AtomicU64::new(0),
        traced_gets: AtomicU64::new(0),
        origin_errors: AtomicU64::new(0),
        maybe_applied: AtomicU64::new(0),
        unavailable_writes: AtomicU64::new(0),
        restart_survivor_hits: AtomicU64::new(0),
        wrong_values: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    // One bit per Zipf-namespace key: set when any worker SETs it this
    // run. A SET-shaped GET value on an unmarked key can only have come
    // from a previous run, recovered across a restart.
    let set_keys: Arc<Vec<AtomicU64>> = Arc::new(
        (0..opts.keys.div_ceil(64))
            .map(|_| AtomicU64::new(0))
            .collect(),
    );
    let registry = Registry::new();
    let client_metrics = ClientMetrics::new(&registry);
    let cluster_metrics = ClusterMetrics::new(&registry);
    // Latency observed while the scripted partition is active — the
    // "bounded p99 blip" the cluster bench report pins down.
    let latency_part = Arc::new(Histogram::new());
    let in_partition = Arc::new(AtomicBool::new(false));

    // Chaos mode: interpose the proxy — in front of --addr, or, in
    // cluster mode, in front of the --chaos-node member. Only the dialed
    // address changes; the ring keeps hashing the node's stable id, so
    // ownership is unaffected.
    let chaos_upstream = if opts.cluster.is_empty() {
        opts.addr.clone()
    } else {
        opts.cluster[opts.chaos_node].addr.clone()
    };
    let proxy = if opts.chaos {
        let upstream = chaos_upstream
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .unwrap_or_else(|| die(&format!("chaos upstream {chaos_upstream}: cannot resolve")));
        let proxy = ChaosProxy::start(upstream, opts.chaos_config.clone())
            .unwrap_or_else(|e| die(&format!("chaos proxy failed to start: {e}")));
        eprintln!(
            "loadgen: chaos proxy on {} -> {} (seed {})",
            proxy.addr(),
            upstream,
            opts.chaos_config.seed
        );
        Some(Arc::new(proxy))
    } else {
        None
    };
    let target = proxy
        .as_ref()
        .map_or_else(|| opts.addr.clone(), |p| p.addr().to_string());
    // The membership workers dial: in cluster chaos, the fronted node's
    // address is swapped for the proxy's.
    let mut client_nodes = opts.cluster.clone();
    if let (Some(p), false) = (&proxy, client_nodes.is_empty()) {
        client_nodes[opts.chaos_node].addr = p.addr().to_string();
    }
    // The scripted partition: one thread flips the proxy off and back on.
    if let (Some(proxy), Some(at)) = (proxy.clone(), opts.partition_at) {
        let secs = opts.partition_secs;
        let flag = Arc::clone(&in_partition);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(at));
            eprintln!("loadgen: chaos partition begins ({secs}s)");
            flag.store(true, Ordering::Relaxed);
            proxy.set_partitioned(true);
            std::thread::sleep(Duration::from_secs(secs));
            proxy.set_partitioned(false);
            flag.store(false, Ordering::Relaxed);
            eprintln!("loadgen: chaos partition healed");
        });
    }

    let failover_config = FailoverConfig {
        timeouts: Timeouts {
            connect: opts.connect_timeout,
            read: opts.op_timeout,
            write: opts.op_timeout,
        },
        max_attempts: opts.max_attempts,
        ..FailoverConfig::default()
    };

    let launched = Instant::now();
    let deadline = launched + Duration::from_secs(opts.warmup + opts.secs);
    let workers: Vec<_> = (0..opts.conns)
        .map(|i| {
            let cdf = Arc::clone(&cdf);
            let latency = Arc::clone(&latency);
            let latency_part = Arc::clone(&latency_part);
            let in_partition = Arc::clone(&in_partition);
            let totals = Arc::clone(&totals);
            let set_keys = Arc::clone(&set_keys);
            let target = target.clone();
            let metrics = client_metrics.clone();
            let cluster_metrics = cluster_metrics.clone();
            let client_nodes = client_nodes.clone();
            let mut rng = SplitMix64::new(opts.seed ^ (0x9e37 + i as u64));
            let (set_ratio, value_len) = (opts.set_ratio, opts.value_len);
            let (hot_keys, hot_frac) = (opts.hot_keys, opts.hot_frac);
            let (keys, scan_len, phase_shift) = (opts.keys as u64, opts.scan_len, opts.phase_shift);
            // Under --phase-shift the scan fraction applies only in the
            // middle act (defaulting to a heavy 0.9 when --scan-frac is
            // unset); otherwise it applies to the whole run.
            let scan_frac = if phase_shift && opts.scan_frac == 0.0 {
                0.9
            } else {
                opts.scan_frac
            };
            let total_run = Duration::from_secs(opts.warmup + opts.secs);
            let trace_sample = opts.trace_sample;
            let config = FailoverConfig {
                seed: opts.seed.wrapping_add(i as u64),
                ..failover_config
            };
            std::thread::spawn(move || {
                let mut client = if client_nodes.is_empty() {
                    Bench::Single(Box::new(
                        FailoverClient::new(vec![target], config).with_metrics(metrics),
                    ))
                } else {
                    let cc = ClusterClientConfig {
                        failover: FailoverConfig {
                            // Cross-node re-routing is the cluster's
                            // healing path: per-node retries stay tight
                            // so a dead node costs one bounded timeout,
                            // not a retry storm.
                            max_attempts: config.max_attempts.min(2),
                            ..config
                        },
                        ..ClusterClientConfig::default()
                    };
                    Bench::Cluster(Box::new(
                        ClusterClient::new(client_nodes, cc).with_metrics(cluster_metrics),
                    ))
                };
                let is_cluster = matches!(client, Bench::Cluster(_));
                let payload = vec![b'v'; value_len];
                let mut gets = 0u64;
                let mut scan_pos = 0u64;
                let scan_base = keys + i as u64 * scan_len;
                while Instant::now() < deadline {
                    // --phase-shift: the scan act is the middle third of
                    // the whole run (warmup included).
                    let scanning_now = scan_frac > 0.0
                        && (!phase_shift || {
                            let f = launched.elapsed().as_secs_f64()
                                / total_run.as_secs_f64().max(f64::EPSILON);
                            (1.0 / 3.0..2.0 / 3.0).contains(&f)
                        });
                    let is_scan = scanning_now && rng.chance(scan_frac);
                    let key_idx = if is_scan {
                        // One-touch sequential sweep over a per-worker
                        // key range disjoint from the Zipf namespace.
                        let k = scan_base + scan_pos % scan_len;
                        scan_pos += 1;
                        totals.scan_ops.fetch_add(1, Ordering::Relaxed);
                        k
                    } else if hot_keys > 0 && rng.chance(hot_frac) {
                        // Hot-key skew: the N lowest ranks soak up a
                        // tunable traffic fraction on top of the Zipf
                        // draw (same namespace, so verification is
                        // unchanged).
                        rng.below(hot_keys as u64)
                    } else {
                        sample(&cdf, &mut rng) as u64
                    };
                    let key = format!("key:{key_idx}");
                    let is_set = !is_scan && rng.chance(set_ratio);
                    // 1-in-N GETs carry a fresh client-minted trace
                    // context; the server honors it unconditionally, so
                    // the client controls exactly what gets traced.
                    let trace_ctx = if !is_set && trace_sample > 0 {
                        gets += 1;
                        gets.is_multiple_of(trace_sample).then(|| TraceContext {
                            trace_id: rng.next_u64() | 1,
                            span_id: rng.next_u64() | 1,
                            sampled: true,
                        })
                    } else {
                        None
                    };
                    if trace_ctx.is_some() {
                        totals.traced_gets.fetch_add(1, Ordering::Relaxed);
                    }
                    let in_part = in_partition.load(Ordering::Relaxed);
                    let record = |us: u64| {
                        latency.record(us);
                        if in_part {
                            latency_part.record(us);
                        }
                    };
                    let t0 = Instant::now();
                    let outcome = if is_set {
                        totals.sets.fetch_add(1, Ordering::Relaxed);
                        // Mark before sending: an ambiguous SET (cut
                        // mid-flight, maybe applied) must still disqualify
                        // the key from counting as a restart survivor.
                        if let Some(word) = set_keys.get(key_idx as usize / 64) {
                            word.fetch_or(1 << (key_idx % 64), Ordering::Relaxed);
                        }
                        client.set(&key, &payload)
                    } else {
                        match client.get_value(&key, trace_ctx) {
                            Ok(None) => {
                                totals.empty_gets.fetch_add(1, Ordering::Relaxed);
                                Ok(())
                            }
                            Ok(Some(v)) => {
                                if v.stale {
                                    totals.stale_gets.fetch_add(1, Ordering::Relaxed);
                                }
                                if v.forwarded {
                                    totals.forwarded_gets.fetch_add(1, Ordering::Relaxed);
                                }
                                if !plausible_value(&key, &v.data) {
                                    eprintln!("worker {i}: WRONG VALUE for {key}");
                                    totals.wrong_values.fetch_add(1, Ordering::Relaxed);
                                } else if v.data.iter().all(|&b| b == b'v')
                                    && set_keys.get(key_idx as usize / 64).is_some_and(|word| {
                                        word.load(Ordering::Relaxed) & (1 << (key_idx % 64)) == 0
                                    })
                                {
                                    // A SET payload this run never wrote:
                                    // a previous run's write served back
                                    // across a restart.
                                    totals.restart_survivor_hits.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    };
                    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                    match outcome {
                        Ok(()) => {
                            totals.ops.fetch_add(1, Ordering::Relaxed);
                            record(us.max(1));
                        }
                        // A degraded origin is part of the workload under
                        // test, not a loadgen failure: the round-trip
                        // completed, so count it and keep going.
                        Err(e) if e.get_ref().is_some_and(|inner| inner.is::<OriginError>()) => {
                            totals.origin_errors.fetch_add(1, Ordering::Relaxed);
                            totals.ops.fetch_add(1, Ordering::Relaxed);
                            record(us.max(1));
                        }
                        // A SET/DEL cut mid-flight: the client refuses to
                        // replay it (it may have applied). Under chaos
                        // that is correct behavior, not a failure.
                        Err(e) if ConnectionError::is_maybe_applied(&e) => {
                            totals.maybe_applied.fetch_add(1, Ordering::Relaxed);
                            record(us.max(1));
                        }
                        // A cluster write whose owner is unreachable fails
                        // cleanly (the owner is the only legal target for
                        // a SET): explicit write unavailability during a
                        // partition, not a loadgen failure. Reads keep
                        // their strict verdict — they re-route.
                        Err(e)
                            if is_cluster
                                && is_set
                                && matches!(
                                    ConnectionError::from_io(&e),
                                    Some(ConnectionError::Unavailable { .. })
                                ) =>
                        {
                            totals.unavailable_writes.fetch_add(1, Ordering::Relaxed);
                            record(us.max(1));
                        }
                        Err(e) => {
                            eprintln!("worker {i}: request failed: {e}");
                            totals.errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                client.close();
            })
        })
        .collect();
    // Warm-up phase: the load runs but nothing it measured is kept — when
    // the phase ends, the shared histogram and totals reset and the clock
    // restarts. Workers mid-request contribute a straggling sample each
    // across the boundary: noise, not bias, and no coordination barrier.
    let mut measured_from = launched;
    if opts.warmup > 0 {
        std::thread::sleep(Duration::from_secs(opts.warmup));
        latency.reset();
        totals.reset();
        measured_from = Instant::now();
        eprintln!("loadgen: warmup over ({}s), measuring", opts.warmup);
    }
    for w in workers {
        let _ = w.join();
    }
    let elapsed = measured_from.elapsed().as_secs_f64();

    let ops = totals.ops.load(Ordering::Relaxed);
    let hist = latency.snapshot();
    let throughput = ops as f64 / elapsed.max(f64::EPSILON);
    if opts.cluster.is_empty() {
        println!("loadgen: {} -> {}", opts.conns, opts.addr);
    } else {
        println!(
            "loadgen: {} -> cluster of {} nodes",
            opts.conns,
            opts.cluster.len()
        );
    }
    println!(
        "  ops {ops} ({:.0} ops/s over {elapsed:.2}s), sets {}, scans {}, empty gets {}, stale gets {}, origin errors {}, errors {}",
        throughput,
        totals.sets.load(Ordering::Relaxed),
        totals.scan_ops.load(Ordering::Relaxed),
        totals.empty_gets.load(Ordering::Relaxed),
        totals.stale_gets.load(Ordering::Relaxed),
        totals.origin_errors.load(Ordering::Relaxed),
        totals.errors.load(Ordering::Relaxed),
    );
    println!(
        "  latency us: mean {:.0}  p50 {}  p90 {}  p99 {}  max {}",
        hist.mean(),
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.max(),
    );
    println!(
        "  client: reconnects {}  replays {}  failovers {}  deadline timeouts {}  maybe-applied {}  restart survivors {}  wrong values {}",
        client_metrics.reconnects.get(),
        client_metrics.replays.get(),
        client_metrics.failovers.get(),
        client_metrics.deadline_timeouts.get(),
        totals.maybe_applied.load(Ordering::Relaxed),
        totals.restart_survivor_hits.load(Ordering::Relaxed),
        totals.wrong_values.load(Ordering::Relaxed),
    );
    let chaos_snapshot = proxy.as_ref().map(|p| p.counters());
    if let Some(snap) = &chaos_snapshot {
        println!(
            "  chaos: conns {}  resets {}  mid-resets {}  truncations {}  corruptions {}  stalls {}  partition rejects {}  partition cuts {}",
            snap.connections,
            snap.resets,
            snap.mid_resets,
            snap.truncations,
            snap.corruptions,
            snap.stalls,
            snap.partition_rejects,
            snap.partition_cuts,
        );
    }

    // Pull the server's own accounting — directly from --addr, not
    // through the chaos proxy: the verdict below must not depend on one
    // more coin flip.
    let server_stats = if opts.cluster.is_empty() {
        match Client::connect(opts.addr.as_str()).and_then(|mut c| c.stats()) {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("loadgen: STATS fetch failed: {e}");
                Vec::new()
            }
        }
    } else {
        Vec::new()
    };
    // Cluster mode: every node's own STATS, dialed at its real address
    // (`opts.cluster`, not the proxy-patched membership) so a healed
    // partition cannot hide a node from the report.
    let node_stats: Vec<(String, Vec<(String, String)>)> = opts
        .cluster
        .iter()
        .filter_map(
            |n| match Client::connect(n.addr.as_str()).and_then(|mut c| c.stats()) {
                Ok(stats) => Some((n.id.clone(), stats)),
                Err(e) => {
                    eprintln!("loadgen: STATS fetch from node {} failed: {e}", n.id);
                    None
                }
            },
        )
        .collect();
    let sum_stat = |name: &str| -> u64 {
        node_stats
            .iter()
            .map(|(_, stats)| {
                stats
                    .iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or(0)
            })
            .sum()
    };
    // Traced runs: pull every node's retained traces (again at the real
    // addresses, never through the proxy) and reassemble the fragments.
    let trace_report = if opts.trace_sample > 0 {
        let mut dumps = Vec::new();
        if opts.cluster.is_empty() {
            match Client::connect(opts.addr.as_str()).and_then(|mut c| c.traces()) {
                Ok(t) => dumps.push(t),
                Err(e) => eprintln!("loadgen: TRACES fetch failed: {e}"),
            }
        } else {
            for n in &opts.cluster {
                match Client::connect(n.addr.as_str()).and_then(|mut c| c.traces()) {
                    Ok(t) => dumps.push(t),
                    Err(e) => eprintln!("loadgen: TRACES fetch from node {} failed: {e}", n.id),
                }
            }
        }
        Some(merge_traces(&dumps))
    } else {
        None
    };
    if let Some(tr) = &trace_report {
        println!(
            "  traces: sent {}  retained {}  multi-node {}  slow {}",
            totals.traced_gets.load(Ordering::Relaxed),
            tr.unique,
            tr.multi_node,
            tr.slow,
        );
        for (name, v) in &tr.phases {
            if !v.is_empty() {
                println!(
                    "    phase {name}: p50 {}us  p99 {}us  ({} spans)",
                    pctl(v, 0.50),
                    pctl(v, 0.99),
                    v.len()
                );
            }
        }
    }
    let part_hist = latency_part.snapshot();
    if !opts.cluster.is_empty() {
        println!(
            "  cluster: nodes {}/{}  forwards {}  fallbacks {}  moved {}  reroutes {}  hot promotions {}  ring flips {}  forwarded gets {}  unavailable writes {}",
            node_stats.len(),
            opts.cluster.len(),
            sum_stat("cluster_forwards"),
            sum_stat("cluster_forward_fallbacks"),
            sum_stat("cluster_moved"),
            cluster_metrics.reroutes.get(),
            cluster_metrics.hot_key_promotions.get(),
            cluster_metrics.ring_flips.get(),
            totals.forwarded_gets.load(Ordering::Relaxed),
            totals.unavailable_writes.load(Ordering::Relaxed),
        );
        if part_hist.count() > 0 {
            println!(
                "  partition-window latency us: p50 {}  p99 {}  max {}  ({} samples)",
                part_hist.quantile(0.50),
                part_hist.quantile(0.99),
                part_hist.max(),
                part_hist.count(),
            );
        }
    }
    let lookup = |name: &str| {
        server_stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    };
    let s_uint = |name: &str| Json::uint(lookup(name).parse().unwrap_or(0));
    let s_float = |name: &str| Json::Float(lookup(name).parse().unwrap_or(0.0));
    if !server_stats.is_empty() {
        println!(
            "  server: policy {} hit_rate {} aggregate_miss_cost {} coalesced {}",
            lookup("policy"),
            lookup("hit_rate"),
            lookup("aggregate_miss_cost"),
            lookup("coalesced_fetches"),
        );
    }

    if let Some(dir) = &opts.json_dir {
        let mut data = vec![
            ("ops", Json::uint(ops)),
            ("sets", Json::uint(totals.sets.load(Ordering::Relaxed))),
            (
                "scan_ops",
                Json::uint(totals.scan_ops.load(Ordering::Relaxed)),
            ),
            (
                "empty_gets",
                Json::uint(totals.empty_gets.load(Ordering::Relaxed)),
            ),
            (
                "stale_gets",
                Json::uint(totals.stale_gets.load(Ordering::Relaxed)),
            ),
            (
                "forwarded_gets",
                Json::uint(totals.forwarded_gets.load(Ordering::Relaxed)),
            ),
            (
                "unavailable_writes",
                Json::uint(totals.unavailable_writes.load(Ordering::Relaxed)),
            ),
            (
                "origin_errors",
                Json::uint(totals.origin_errors.load(Ordering::Relaxed)),
            ),
            (
                "restart_survivor_hits",
                Json::uint(totals.restart_survivor_hits.load(Ordering::Relaxed)),
            ),
            ("errors", Json::uint(totals.errors.load(Ordering::Relaxed))),
            ("elapsed_s", Json::Float(elapsed)),
            ("throughput_ops_per_s", Json::Float(throughput)),
            (
                "latency_us",
                Json::obj([
                    ("mean", Json::Float(hist.mean())),
                    ("p50", Json::uint(hist.quantile(0.50))),
                    ("p90", Json::uint(hist.quantile(0.90))),
                    ("p99", Json::uint(hist.quantile(0.99))),
                    ("max", Json::uint(hist.max())),
                ]),
            ),
            (
                "client",
                Json::obj([
                    ("reconnects", Json::uint(client_metrics.reconnects.get())),
                    ("replays", Json::uint(client_metrics.replays.get())),
                    ("failovers", Json::uint(client_metrics.failovers.get())),
                    (
                        "deadline_timeouts",
                        Json::uint(client_metrics.deadline_timeouts.get()),
                    ),
                    (
                        "maybe_applied",
                        Json::uint(totals.maybe_applied.load(Ordering::Relaxed)),
                    ),
                    (
                        "wrong_values",
                        Json::uint(totals.wrong_values.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "server",
                Json::obj([
                    ("policy", Json::str(lookup("policy"))),
                    ("lookups", s_uint("lookups")),
                    ("hits", s_uint("hits")),
                    ("misses", s_uint("misses")),
                    ("hit_rate", s_float("hit_rate")),
                    ("aggregate_miss_cost", s_uint("aggregate_miss_cost")),
                    ("mean_miss_cost", s_float("mean_miss_cost")),
                    ("coalesced_fetches", s_uint("coalesced_fetches")),
                    ("evictions", s_uint("evictions")),
                    ("resident", s_uint("resident")),
                    ("connections_shed", s_uint("connections_shed")),
                    ("conn_limit_rejects", s_uint("conn_limit_rejects")),
                    ("conn_slowloris_drops", s_uint("conn_slowloris_drops")),
                    ("requests_get", s_uint("requests_get")),
                    ("requests_set", s_uint("requests_set")),
                    ("selector_flips", s_uint("selector_flips")),
                    ("selector_epochs", s_uint("selector_epochs")),
                    (
                        "persist_recovered_entries",
                        s_uint("persist_recovered_entries"),
                    ),
                    ("persist_appends", s_uint("persist_appends")),
                    ("persist_degraded", s_uint("persist_degraded")),
                ]),
            ),
        ];
        if !opts.cluster.is_empty() {
            data.push((
                "cluster",
                Json::obj([
                    ("nodes", Json::uint(opts.cluster.len() as u64)),
                    ("nodes_reporting", Json::uint(node_stats.len() as u64)),
                    ("forwards", Json::uint(sum_stat("cluster_forwards"))),
                    (
                        "forward_fallbacks",
                        Json::uint(sum_stat("cluster_forward_fallbacks")),
                    ),
                    ("moved", Json::uint(sum_stat("cluster_moved"))),
                    ("reroutes", Json::uint(cluster_metrics.reroutes.get())),
                    (
                        "hot_key_promotions",
                        Json::uint(cluster_metrics.hot_key_promotions.get()),
                    ),
                    ("ring_flips", Json::uint(cluster_metrics.ring_flips.get())),
                    (
                        "forwarded_gets",
                        Json::uint(totals.forwarded_gets.load(Ordering::Relaxed)),
                    ),
                    (
                        "unavailable_writes",
                        Json::uint(totals.unavailable_writes.load(Ordering::Relaxed)),
                    ),
                    ("lookups", Json::uint(sum_stat("lookups"))),
                    ("hits", Json::uint(sum_stat("hits"))),
                    ("misses", Json::uint(sum_stat("misses"))),
                    ("evictions", Json::uint(sum_stat("evictions"))),
                    (
                        "aggregate_miss_cost",
                        Json::uint(sum_stat("aggregate_miss_cost")),
                    ),
                ]),
            ));
            data.push((
                "latency_partition_us",
                Json::obj([
                    ("count", Json::uint(part_hist.count())),
                    ("p50", Json::uint(part_hist.quantile(0.50))),
                    ("p99", Json::uint(part_hist.quantile(0.99))),
                    ("max", Json::uint(part_hist.max())),
                ]),
            ));
        }
        if let Some(tr) = &trace_report {
            let phase_objs: Vec<(&'static str, Json)> = tr
                .phases
                .iter()
                .map(|(name, v)| {
                    (
                        *name,
                        Json::obj([
                            ("count", Json::uint(v.len() as u64)),
                            ("p50_us", Json::uint(pctl(v, 0.50))),
                            ("p99_us", Json::uint(pctl(v, 0.99))),
                        ]),
                    )
                })
                .collect();
            data.push(("phases", Json::obj(phase_objs)));
            data.push((
                "traces",
                Json::obj([
                    ("sample_every", Json::uint(opts.trace_sample)),
                    (
                        "sampled_gets",
                        Json::uint(totals.traced_gets.load(Ordering::Relaxed)),
                    ),
                    ("unique", Json::uint(tr.unique)),
                    ("multi_node", Json::uint(tr.multi_node)),
                    ("slow_traces", Json::uint(tr.slow)),
                ]),
            ));
        }
        if let Some(snap) = &chaos_snapshot {
            data.push((
                "chaos",
                Json::obj([
                    ("seed", Json::uint(opts.chaos_config.seed)),
                    ("connections", Json::uint(snap.connections)),
                    ("resets", Json::uint(snap.resets)),
                    ("mid_resets", Json::uint(snap.mid_resets)),
                    ("truncations", Json::uint(snap.truncations)),
                    ("corruptions", Json::uint(snap.corruptions)),
                    ("stalls", Json::uint(snap.stalls)),
                    ("shaped_chunks", Json::uint(snap.shaped_chunks)),
                    ("partition_rejects", Json::uint(snap.partition_rejects)),
                    ("partition_cuts", Json::uint(snap.partition_cuts)),
                    ("upstream_failures", Json::uint(snap.upstream_failures)),
                    ("injected_total", Json::uint(snap.injected_total())),
                ]),
            ));
        }
        // Run metadata, self-describing: a BENCH file found cold still
        // says what produced it, with which knobs, against how many nodes.
        let meta = Json::obj([
            ("tool", Json::str("loadgen")),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            ("seed", Json::uint(opts.seed)),
            ("node_count", Json::uint(opts.cluster.len().max(1) as u64)),
            ("conns", Json::uint(opts.conns as u64)),
            ("keys", Json::uint(opts.keys as u64)),
            ("zipf", Json::Float(opts.zipf)),
            ("set_ratio", Json::Float(opts.set_ratio)),
            ("hot_keys", Json::uint(opts.hot_keys as u64)),
            ("hot_frac", Json::Float(opts.hot_frac)),
            ("scan_frac", Json::Float(opts.scan_frac)),
            ("scan_len", Json::uint(opts.scan_len)),
            ("phase_shift", Json::Bool(opts.phase_shift)),
            ("secs", Json::uint(opts.secs)),
            ("warmup", Json::uint(opts.warmup)),
            ("chaos", Json::Bool(opts.chaos)),
        ]);
        let (experiment, filename) = if opts.cluster.is_empty() {
            ("serve_loadgen", "BENCH_serve.json")
        } else {
            ("cluster_loadgen", "BENCH_cluster.json")
        };
        let report = Json::obj([
            ("experiment", Json::str(experiment)),
            ("addr", Json::str(opts.addr.clone())),
            ("conns", Json::uint(opts.conns as u64)),
            ("secs", Json::uint(opts.secs)),
            ("warmup", Json::uint(opts.warmup)),
            ("keys", Json::uint(opts.keys as u64)),
            ("zipf", Json::Float(opts.zipf)),
            ("set_ratio", Json::Float(opts.set_ratio)),
            ("seed", Json::uint(opts.seed)),
            ("meta", meta),
            ("data", Json::obj(data)),
        ]);
        let text = report.render();
        Json::parse(&text).expect("rendered report must re-parse");
        std::fs::create_dir_all(dir).expect("create --json directory");
        let path = dir.join(filename);
        std::fs::write(&path, text + "\n").expect("write JSON report");
        eprintln!("wrote {}", path.display());
        if let Some(tr) = &trace_report {
            let tpath = dir.join("TRACES.jsonl");
            std::fs::write(&tpath, &tr.jsonl).expect("write TRACES.jsonl");
            eprintln!("wrote {}", tpath.display());
        }
    }

    // The verdict: wrong values or workers that gave up fail the run —
    // the exit code is what CI's chaos smoke asserts on.
    let wrong = totals.wrong_values.load(Ordering::Relaxed);
    let errors = totals.errors.load(Ordering::Relaxed);
    if wrong > 0 || errors > 0 {
        eprintln!("loadgen: FAILED ({wrong} wrong values, {errors} worker errors)");
        std::process::exit(1);
    }
}
