//! The `csr-serve` daemon: binds a TCP cache server and runs until
//! SIGTERM/SIGINT, then shuts down gracefully (drain in-flight requests,
//! flush the final metrics report).
//!
//! ```text
//! csr-serve --addr 127.0.0.1:11311 --policy dcl --capacity 65536 \
//!           --backing sim --slow-us 800 --metrics-file metrics.prom
//! ```

use csr_cache::{Policy, SelectorConfig};
use csr_obs::ReportFormat;
use csr_serve::server::{serve, ReportSink, ServerConfig};
use csr_serve::{
    parse_nodes, Backing, FaultBacking, FsyncPolicy, IoMode, NoBacking, PeerConfig, PersistConfig,
    SimBacking, Timeouts,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: a single atomic store.
    SHUTDOWN.store(true, Ordering::Release);
}

/// Installs `on_signal` for SIGINT and SIGTERM via the C `signal(2)`
/// entry point — the one piece of FFI in the workspace, confined to this
/// binary so the library crates keep `#![forbid(unsafe_code)]`.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

fn usage() -> ! {
    // The accept-list is generated from Policy::ALL so this text can
    // never drift from what --policy actually accepts.
    let policies = Policy::ALL
        .iter()
        .map(|p| p.name().to_ascii_lowercase())
        .collect::<Vec<_>>()
        .join(" | ");
    println!(
        "csr-serve: cost-sensitive network cache server

USAGE: csr-serve [OPTIONS]

  --addr HOST:PORT        listen address (default 127.0.0.1:11311; port 0 picks a free port)
  --capacity N            cache capacity in entries (default 65536)
  --shards N              shard count (default: one per hardware thread)
  --policy NAME           {policies} (default dcl)
  --adaptive A,B          per-shard adaptive selection between policies A and B
                          (overrides --policy; shards start on A)
  --selector-sample N     adaptive: shadow 1 in N keys (default 8)
  --selector-epoch N      adaptive: sampled lookups per scoring epoch (default 256)
  --selector-hysteresis N adaptive: consecutive epochs to win before a flip (default 2)
  --selector-flip-gap N   adaptive: minimum epochs between flips (default 4)
  --io ENGINE             blocking | event (default blocking)
                          blocking: thread-per-connection via the worker pool
                          event: epoll/kqueue reactors; workers become the
                          request-execution pool, connections are unbounded
                          by thread count (the C10K/C100K path)
  --reactors N            event engine: reactor (event-loop) threads
                          (default: one per hardware thread, capped at 8)
  --max-conns N           event engine: connection ceiling; past it new
                          connections get SERVER_BUSY (default 0 = unbounded)
  --workers N             worker threads = max concurrent connections (default 64)
  --backlog N             queued connections before SERVER_BUSY shedding (default 64)
  --idle-timeout-ms N     close idle connections after N ms (default 30000)
  --partial-deadline-ms N deadline for reading one request once started (slowloris cutoff, default 10000)
  --backing KIND          sim | none | fault (default sim; fault = sim + fault injection)
  --fast-us N             sim backing: fast-tier latency, microseconds (default 100)
  --slow-us N             sim backing: slow-tier latency, microseconds (default 800)
  --slow-every N          sim backing: 1 in N keys is slow; 0 disables (default 8)
  --value-len N           sim backing: synthesized value length (default 128)
  --fault-seed N          fault backing: PRNG seed (default 1)
  --fault-error-rate F    fault backing: probability a fetch fails (default 0.1)
  --fault-hang-rate F     fault backing: probability a fetch hangs (default 0)
  --fault-hang-ms N       fault backing: hang duration, milliseconds (default 50)
  --fetch-deadline-ms N   per-fetch deadline; 0 disables (default 0)
  --fetch-retries N       retries after a failed fetch (default 2)
  --breaker-threshold N   consecutive failures that open the breaker; 0 disables (default 5)
  --breaker-cooldown-ms N open-breaker cooldown before half-open probing (default 1000)
  --stale-capacity N      stale-store entries for serve-stale (default: cache capacity)
  --peers LIST            cluster mode: comma-separated membership, each 'id=addr' or bare
                          'addr' (id = addr); must include this node (see --node-id)
  --node-id ID            this node's ring id (default: the --addr value)
  --vnodes N              virtual nodes per member on the hash ring (default 64)
  --cluster-seed N        ring hash seed; all nodes and clients must agree (default 0)
  --no-forward            answer non-owned GETs with MOVED instead of peer-forwarding
  --forward-timeout-ms N  per-hop deadline for peer FGET connections (default 500)
  --persist-dir PATH      crash-safe persistence: WAL + snapshots in PATH;
                          recovery replays them before the listener opens
  --fsync POLICY          WAL durability: always | never | <ms> (fsync at most
                          once per that many milliseconds; default never)
  --snapshot-every N      appends between automatic snapshots; 0 = only at
                          shutdown (default 8192)
  --wal-segment-bytes N   rotate WAL segments past N bytes (default 4194304)
  --recovery-throttle-us N testing aid: slow recovery replay by N us per
                          256 records (default 0)
  --metrics-file PATH     periodically dump metrics to PATH (flushed on shutdown)
  --metrics-interval-ms N dump interval (default 1000)
  --metrics-format FMT    prom | json (default prom)
  --trace-sample N        trace 1 in N requests; 0 disables sampling (default 0)
  --slow-trace-us N       also keep any request slower than N us; 0 disables (default 0)
  --trace-ring N          kept-trace ring capacity (default 256)
  --trace-dump PATH       at shutdown, write kept traces to PATH (JSONL) and
                          PATH.chrome.json (Chrome trace-event, for Perfetto)
  --slow-log              print one structured stderr line per slow traced request
  -h, --help              this text"
    );
    std::process::exit(0);
}

fn parse_policy(name: &str) -> Policy {
    Policy::parse(name).unwrap_or_else(|| die(&format!("unknown policy '{name}'")))
}

/// Parses `--adaptive A,B` into the two candidate policies.
fn parse_candidates(spec: &str) -> (Policy, Policy) {
    let (a, b) = spec
        .split_once(',')
        .unwrap_or_else(|| die(&format!("--adaptive wants 'A,B', got '{spec}'")));
    let a = parse_policy(a.trim());
    let b = parse_policy(b.trim());
    if a == b {
        die("--adaptive candidates must differ");
    }
    (a, b)
}

struct Opts {
    config: ServerConfig,
    backing_kind: String,
    sim: SimBacking,
    fault_seed: u64,
    fault_error_rate: f64,
    fault_hang_rate: f64,
    fault_hang: Duration,
    metrics_file: Option<std::path::PathBuf>,
    metrics_interval: Duration,
    metrics_format: ReportFormat,
    trace_dump: Option<std::path::PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        config: ServerConfig {
            addr: "127.0.0.1:11311".to_owned(),
            ..ServerConfig::default()
        },
        backing_kind: "sim".to_owned(),
        sim: SimBacking::default(),
        fault_seed: 1,
        fault_error_rate: 0.1,
        fault_hang_rate: 0.0,
        fault_hang: Duration::from_millis(50),
        metrics_file: None,
        metrics_interval: Duration::from_millis(1000),
        metrics_format: ReportFormat::Prometheus,
        trace_dump: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--addr" => opts.config.addr = val("--addr"),
            "--capacity" => opts.config.capacity = parse_num(&val("--capacity"), "--capacity"),
            "--shards" => opts.config.shards = Some(parse_num(&val("--shards"), "--shards")),
            "--policy" => opts.config.policy = parse_policy(&val("--policy")),
            "--adaptive" => {
                opts.config
                    .adaptive
                    .get_or_insert_with(SelectorConfig::default)
                    .candidates = parse_candidates(&val("--adaptive"))
            }
            "--selector-sample" => {
                opts.config
                    .adaptive
                    .get_or_insert_with(SelectorConfig::default)
                    .sample_every = parse_num(&val("--selector-sample"), "--selector-sample")
            }
            "--selector-epoch" => {
                opts.config
                    .adaptive
                    .get_or_insert_with(SelectorConfig::default)
                    .epoch_len = parse_num(&val("--selector-epoch"), "--selector-epoch")
            }
            "--selector-hysteresis" => {
                opts.config
                    .adaptive
                    .get_or_insert_with(SelectorConfig::default)
                    .hysteresis = parse_num(&val("--selector-hysteresis"), "--selector-hysteresis")
            }
            "--selector-flip-gap" => {
                opts.config
                    .adaptive
                    .get_or_insert_with(SelectorConfig::default)
                    .min_flip_gap = parse_num(&val("--selector-flip-gap"), "--selector-flip-gap")
            }
            "--io" => {
                let engine = val("--io");
                opts.config.io = IoMode::parse(&engine)
                    .unwrap_or_else(|| die(&format!("unknown io engine '{engine}'")));
            }
            "--reactors" => opts.config.reactors = parse_num(&val("--reactors"), "--reactors"),
            "--max-conns" => opts.config.max_conns = parse_num(&val("--max-conns"), "--max-conns"),
            "--workers" => opts.config.workers = parse_num(&val("--workers"), "--workers"),
            "--backlog" => opts.config.backlog = parse_num(&val("--backlog"), "--backlog"),
            "--idle-timeout-ms" => {
                opts.config.idle_timeout =
                    Duration::from_millis(parse_num(&val("--idle-timeout-ms"), "--idle-timeout-ms"))
            }
            "--partial-deadline-ms" => {
                opts.config.partial_read_deadline = Duration::from_millis(parse_num(
                    &val("--partial-deadline-ms"),
                    "--partial-deadline-ms",
                ))
            }
            "--backing" => opts.backing_kind = val("--backing"),
            "--fast-us" => {
                opts.sim.fast = Duration::from_micros(parse_num(&val("--fast-us"), "--fast-us"))
            }
            "--slow-us" => {
                opts.sim.slow = Duration::from_micros(parse_num(&val("--slow-us"), "--slow-us"))
            }
            "--slow-every" => opts.sim.slow_every = parse_num(&val("--slow-every"), "--slow-every"),
            "--value-len" => opts.sim.value_len = parse_num(&val("--value-len"), "--value-len"),
            "--fault-seed" => opts.fault_seed = parse_num(&val("--fault-seed"), "--fault-seed"),
            "--fault-error-rate" => {
                opts.fault_error_rate = parse_num(&val("--fault-error-rate"), "--fault-error-rate")
            }
            "--fault-hang-rate" => {
                opts.fault_hang_rate = parse_num(&val("--fault-hang-rate"), "--fault-hang-rate")
            }
            "--fault-hang-ms" => {
                opts.fault_hang =
                    Duration::from_millis(parse_num(&val("--fault-hang-ms"), "--fault-hang-ms"))
            }
            "--fetch-deadline-ms" => {
                let ms: u64 = parse_num(&val("--fetch-deadline-ms"), "--fetch-deadline-ms");
                opts.config.resilience.deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--fetch-retries" => {
                opts.config.resilience.retries =
                    parse_num(&val("--fetch-retries"), "--fetch-retries")
            }
            "--breaker-threshold" => {
                opts.config.resilience.breaker_threshold =
                    parse_num(&val("--breaker-threshold"), "--breaker-threshold")
            }
            "--breaker-cooldown-ms" => {
                opts.config.resilience.breaker_cooldown = Duration::from_millis(parse_num(
                    &val("--breaker-cooldown-ms"),
                    "--breaker-cooldown-ms",
                ))
            }
            "--stale-capacity" => {
                opts.config.stale_capacity =
                    Some(parse_num(&val("--stale-capacity"), "--stale-capacity"))
            }
            "--peers" => {
                opts.config
                    .cluster
                    .get_or_insert_with(PeerConfig::default)
                    .nodes = parse_nodes(&val("--peers"))
            }
            "--node-id" => {
                opts.config
                    .cluster
                    .get_or_insert_with(PeerConfig::default)
                    .node_id = val("--node-id")
            }
            "--vnodes" => {
                opts.config
                    .cluster
                    .get_or_insert_with(PeerConfig::default)
                    .vnodes = parse_num(&val("--vnodes"), "--vnodes")
            }
            "--cluster-seed" => {
                opts.config
                    .cluster
                    .get_or_insert_with(PeerConfig::default)
                    .seed = parse_num(&val("--cluster-seed"), "--cluster-seed")
            }
            "--no-forward" => {
                opts.config
                    .cluster
                    .get_or_insert_with(PeerConfig::default)
                    .forward = false
            }
            "--forward-timeout-ms" => {
                let ms: u64 = parse_num(&val("--forward-timeout-ms"), "--forward-timeout-ms");
                let d = Duration::from_millis(ms.max(1));
                opts.config
                    .cluster
                    .get_or_insert_with(PeerConfig::default)
                    .timeouts = Timeouts {
                    connect: d,
                    read: d,
                    write: d,
                };
            }
            "--persist-dir" => {
                opts.config
                    .persist
                    .get_or_insert_with(PersistConfig::default)
                    .dir = val("--persist-dir").into()
            }
            "--fsync" => {
                let spec = val("--fsync");
                opts.config
                    .persist
                    .get_or_insert_with(PersistConfig::default)
                    .fsync = FsyncPolicy::parse(&spec).unwrap_or_else(|| {
                    die(&format!("--fsync wants always|never|<ms>, got '{spec}'"))
                })
            }
            "--snapshot-every" => {
                opts.config
                    .persist
                    .get_or_insert_with(PersistConfig::default)
                    .snapshot_every = parse_num(&val("--snapshot-every"), "--snapshot-every")
            }
            "--wal-segment-bytes" => {
                opts.config
                    .persist
                    .get_or_insert_with(PersistConfig::default)
                    .segment_bytes = parse_num(&val("--wal-segment-bytes"), "--wal-segment-bytes")
            }
            "--recovery-throttle-us" => {
                opts.config
                    .persist
                    .get_or_insert_with(PersistConfig::default)
                    .recovery_throttle = Duration::from_micros(parse_num(
                    &val("--recovery-throttle-us"),
                    "--recovery-throttle-us",
                ))
            }
            "--metrics-file" => opts.metrics_file = Some(val("--metrics-file").into()),
            "--metrics-interval-ms" => {
                opts.metrics_interval = Duration::from_millis(parse_num(
                    &val("--metrics-interval-ms"),
                    "--metrics-interval-ms",
                ))
            }
            "--metrics-format" => {
                opts.metrics_format = match val("--metrics-format").as_str() {
                    "prom" => ReportFormat::Prometheus,
                    "json" => ReportFormat::Json,
                    other => die(&format!("unknown metrics format '{other}'")),
                }
            }
            "--trace-sample" => {
                opts.config.trace.sample_every = parse_num(&val("--trace-sample"), "--trace-sample")
            }
            "--slow-trace-us" => {
                opts.config.trace.slow_us = parse_num(&val("--slow-trace-us"), "--slow-trace-us")
            }
            "--trace-ring" => {
                opts.config.trace.capacity = parse_num(&val("--trace-ring"), "--trace-ring")
            }
            "--trace-dump" => opts.trace_dump = Some(val("--trace-dump").into()),
            "--slow-log" => opts.config.slow_log = true,
            "-h" | "--help" => usage(),
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    opts
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: bad number '{s}'")))
}

fn main() {
    let opts = parse_args();
    install_signal_handlers();

    let backing: Arc<dyn Backing> = match opts.backing_kind.as_str() {
        "sim" => Arc::new(opts.sim.clone()),
        "none" => Arc::new(NoBacking),
        // A flaky sim origin: the knobs for soak-testing the
        // fault-tolerant path (see the CI flaky-origin smoke).
        "fault" => Arc::new(
            FaultBacking::new(
                Arc::new(opts.sim.clone()),
                opts.fault_seed,
                opts.fault_error_rate,
                opts.fault_hang_rate,
            )
            .hang_for(opts.fault_hang),
        ),
        other => die(&format!("unknown backing '{other}'")),
    };
    let mut config = opts.config;
    if let Some(path) = &opts.metrics_file {
        config.report = Some(ReportSink {
            path: path.clone(),
            interval: opts.metrics_interval,
            format: opts.metrics_format,
        });
    }
    let policy_info = match config.adaptive {
        Some(cfg) => format!(
            "ADAPTIVE({},{})",
            cfg.candidates.0.name(),
            cfg.candidates.1.name()
        ),
        None => config.policy.name().to_owned(),
    };
    let cluster_info = config.cluster.as_ref().map(|c| {
        format!(
            " cluster_nodes={} forward={}",
            c.nodes.len().max(1),
            c.forward
        )
    });
    let io_name = config.io.name();
    let persist_info = config
        .persist
        .as_ref()
        .map(|pc| format!(" persist={} fsync={}", pc.dir.display(), pc.fsync.name()));
    if let Some(pc) = &mut config.persist {
        // SIGTERM/SIGINT during recovery replay must abort before the
        // listener opens: recovery polls the same flag the signal
        // handler sets.
        pc.cancel = Some(|| SHUTDOWN.load(Ordering::Acquire));
        eprintln!("csr-serve: recovering from {}", pc.dir.display());
    }
    let handle = match serve(config, backing) {
        Ok(handle) => handle,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            // A shutdown request that arrived mid-recovery: not an
            // error — the operator asked us to stop, and we never
            // opened the listener or served a single request.
            eprintln!("csr-serve: shutdown during recovery; exiting cleanly");
            std::process::exit(0);
        }
        Err(e) => die(&format!("failed to start: {e}")),
    };
    println!(
        "csr-serve listening on {} policy={} backing={} io={}{}{}",
        handle.addr(),
        policy_info,
        opts.backing_kind,
        io_name,
        cluster_info.unwrap_or_default(),
        persist_info.unwrap_or_default()
    );

    while !SHUTDOWN.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("csr-serve: shutting down");
    if let Some(path) = &opts.trace_dump {
        let tracer = handle.tracer();
        let chrome_path = {
            let mut s = path.as_os_str().to_owned();
            s.push(".chrome.json");
            std::path::PathBuf::from(s)
        };
        let jsonl = tracer.export_jsonl();
        let kept = jsonl.lines().count();
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("csr-serve: trace dump {}: {e}", path.display());
        }
        if let Err(e) = std::fs::write(&chrome_path, tracer.export_chrome()) {
            eprintln!("csr-serve: trace dump {}: {e}", chrome_path.display());
        }
        eprintln!(
            "csr-serve: dumped {kept} traces to {} (+ {})",
            path.display(),
            chrome_path.display()
        );
    }
    let stats = handle.cache_stats();
    match handle.shutdown() {
        Ok(()) => eprintln!(
            "csr-serve: drained; lookups={} hit_rate={:.4} aggregate_miss_cost={}",
            stats.lookups,
            stats.hit_rate(),
            stats.aggregate_miss_cost
        ),
        Err(e) => {
            eprintln!("csr-serve: shutdown error: {e}");
            std::process::exit(1);
        }
    }
}
