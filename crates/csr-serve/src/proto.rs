//! The wire protocol: a memcached-style, pipelined, line-oriented text
//! protocol (see `PROTOCOL.md` at the repository root for the normative
//! grammar).
//!
//! Requests are parsed *incrementally* from a buffered socket: a command
//! line is accumulated byte-wise up to a hard length cap (so a peer that
//! never sends a newline cannot balloon memory), and `SET` payloads are
//! read as exactly `len` bytes plus a trailing CRLF. Because parsing never
//! reads more than one request ahead, any number of pipelined requests may
//! share one connection; responses come back in request order.
//!
//! Errors split into two classes with different connection fates:
//!
//! * **Recoverable** ([`ProtoError::Client`] with `fatal == false`) — the
//!   request was invalid but the parser knows exactly where the next
//!   request starts (unknown verb, bad key, wrong argument count, a line
//!   or payload over its size limit whose bytes were discarded up to the
//!   next frame boundary). The server answers `CLIENT_ERROR` and keeps
//!   the connection.
//! * **Fatal** (`fatal == true`, or an I/O error) — framing itself broke
//!   (EOF mid-line, missing payload terminator, a declared payload too
//!   large to even swallow): byte position in the stream is no longer
//!   trustworthy, so the server answers and closes.
//!
//! Length-framed payloads (`VALUE`/`DATA` replies, and `SET` requests from
//! this crate's client) carry a CRC32 so byte corruption *inside* a
//! payload — invisible to line framing — is still detected as a malformed
//! frame instead of being accepted as data.

use csr_obs::TraceContext;
use std::io::{self, BufRead, Write};

/// Maximum key length in bytes (memcached's classic limit).
pub const MAX_KEY_LEN: usize = 250;
/// Maximum `SET` payload length in bytes.
pub const MAX_VALUE_LEN: usize = 1 << 20;
/// Maximum command-line length in bytes, including the terminator —
/// comfortably a verb, a maximal key, a payload length, a CRC32, and an
/// optional `TRACE <trace_id>.<span_id>` context token (39 bytes).
pub const MAX_LINE_LEN: usize = MAX_KEY_LEN + 64;
/// Largest declared `SET` payload length the server will still *swallow*
/// (read and discard to keep framing) before replying a recoverable
/// "payload too large". Beyond this the connection closes instead — the
/// peer is either hostile or badly broken, and reading further would let
/// it stream gigabytes through the reject path.
pub const MAX_SWALLOW_LEN: usize = 4 << 20;

/// CRC-32 (IEEE 802.3, the zlib polynomial) lookup table, built at
/// compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the payload integrity check carried on
/// length-framed payloads. Rendered on the wire as exactly 8 lowercase
/// hex digits.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One parsed client request.
///
/// `GET`/`FGET`/`SET` may carry an optional trailing
/// `TRACE <trace_id>.<span_id>` token (see `PROTOCOL.md` § Tracing):
/// the caller's distributed-trace context, under which the server emits
/// its spans for this request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `GET <key> [TRACE <ctx>]` — read-through lookup.
    Get {
        /// The key to look up.
        key: String,
        /// The propagated trace context, if the command carried one.
        trace: Option<TraceContext>,
    },
    /// `FGET <key> [TRACE <ctx>]` — a peer-forwarded lookup (cluster
    /// mode). Served exactly like `GET` except it is **never forwarded
    /// again** and never answered `MOVED`: the one-hop loop-prevention
    /// rule.
    ForwardGet {
        /// The key to look up.
        key: String,
        /// The propagated trace context, if the command carried one.
        trace: Option<TraceContext>,
    },
    /// `SET <key> <len> [<crc32>] [TRACE <ctx>]` + payload — explicit
    /// store.
    Set {
        /// The key to store under.
        key: String,
        /// The payload.
        value: Vec<u8>,
        /// The propagated trace context, if the command carried one.
        trace: Option<TraceContext>,
    },
    /// `DEL <key>` — invalidation.
    Del(String),
    /// `STATS` — one `STAT <name> <value>` line per counter.
    Stats,
    /// `METRICS` — Prometheus text exposition, length-framed.
    Metrics,
    /// `TRACES` — the node's kept-trace ring as JSONL, length-framed.
    Traces,
    /// `QUIT` — orderly connection close.
    Quit,
}

/// A protocol-level failure while reading one request.
#[derive(Debug)]
pub enum ProtoError {
    /// The transport failed (includes timeouts surfacing as
    /// `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// The peer sent something invalid. `fatal` says whether stream
    /// framing was lost (connection must close) or the next line can
    /// still be trusted.
    Client {
        /// Human-readable reason, echoed in the error reply.
        msg: String,
        /// Whether the connection must be closed.
        fatal: bool,
        /// Which normative size limit was violated, if any (`"line"`,
        /// `"key"`, or `"value"`) — feeds the server's
        /// `csr_serve_conn_limit_rejects_total{limit=...}` counter.
        limit: Option<&'static str>,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Client { msg, .. } => f.write_str(msg),
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl ProtoError {
    fn client(msg: impl Into<String>) -> Self {
        ProtoError::Client {
            msg: msg.into(),
            fatal: false,
            limit: None,
        }
    }

    fn fatal(msg: impl Into<String>) -> Self {
        ProtoError::Client {
            msg: msg.into(),
            fatal: true,
            limit: None,
        }
    }

    fn limited(msg: impl Into<String>, limit: &'static str) -> Self {
        ProtoError::Client {
            msg: msg.into(),
            fatal: false,
            limit: Some(limit),
        }
    }

    fn fatal_limited(msg: impl Into<String>, limit: &'static str) -> Self {
        ProtoError::Client {
            msg: msg.into(),
            fatal: true,
            limit: Some(limit),
        }
    }
}

/// Whether `key` satisfies the key grammar: 1..=250 bytes of printable
/// ASCII excluding space (`0x21..=0x7E`).
#[must_use]
pub fn valid_key(key: &str) -> bool {
    !key.is_empty() && key.len() <= MAX_KEY_LEN && key.bytes().all(|b| (0x21..=0x7E).contains(&b))
}

/// Reads one line, accepting `\r\n` or bare `\n`, rejecting lines longer
/// than `max` bytes. `Ok(None)` is a clean EOF *before any byte of a new
/// line*; EOF mid-line is an error.
///
/// An overlong line is a *recoverable* error: the rest of the line is
/// discarded up to (and including) the next newline, so the reader is
/// positioned at a frame boundary and the connection can continue. The
/// discard is bounded in memory (one buffer at a time) and bounded in
/// time by the caller's partial-request read deadline.
fn read_line(r: &mut impl BufRead, max: usize) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ProtoError::fatal("unexpected EOF mid-line"))
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    r.consume(pos + 1);
                    return Err(overlong_line());
                }
                line.extend_from_slice(&buf[..pos]);
                r.consume(pos + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            None => {
                if line.len() + buf.len() > max {
                    discard_to_newline(r)?;
                    return Err(overlong_line());
                }
                line.extend_from_slice(buf);
                let n = buf.len();
                r.consume(n);
            }
        }
    }
}

fn overlong_line() -> ProtoError {
    ProtoError::limited("CLIENT_ERROR command line too long", "line")
}

/// Discards bytes up to and including the next newline, restoring frame
/// alignment after an overlong line. EOF before the newline is fatal.
fn discard_to_newline(r: &mut impl BufRead) -> Result<(), ProtoError> {
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Err(ProtoError::fatal("unexpected EOF mid-line"));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                r.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                r.consume(n);
            }
        }
    }
}

/// Discards exactly `n` payload bytes (an oversize but still swallowable
/// `SET` body). EOF inside the payload is fatal.
fn discard_exact(r: &mut impl BufRead, mut n: usize) -> Result<(), ProtoError> {
    while n > 0 {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Err(ProtoError::fatal("unexpected EOF in payload"));
        }
        let take = buf.len().min(n);
        r.consume(take);
        n -= take;
    }
    Ok(())
}

/// Reads the next request off `r`. `Ok(None)` means the peer closed the
/// connection cleanly between requests.
///
/// # Errors
///
/// [`ProtoError::Io`] on transport failure, [`ProtoError::Client`] on a
/// grammar violation (see the module docs for the recoverable/fatal
/// split).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, ProtoError> {
    let line = match read_line(r, MAX_LINE_LEN)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let line = std::str::from_utf8(&line)
        .map_err(|_| ProtoError::client("CLIENT_ERROR command is not valid UTF-8"))?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let verb = parts.next().unwrap_or("");
    let request = match verb {
        "GET" | "get" => {
            let key = parse_key_keep_rest(&mut parts)?;
            let trace = parse_opt_trace(&mut parts)?;
            Request::Get { key, trace }
        }
        "FGET" | "fget" => {
            let key = parse_key_keep_rest(&mut parts)?;
            let trace = parse_opt_trace(&mut parts)?;
            Request::ForwardGet { key, trace }
        }
        "DEL" | "del" => Request::Del(parse_key(&mut parts)?),
        "SET" | "set" => {
            let key = parse_key_keep_rest(&mut parts)?;
            let len: usize = parts
                .next()
                .ok_or_else(|| {
                    ProtoError::client("CLIENT_ERROR SET needs <key> <len> [<crc32>] [TRACE <ctx>]")
                })
                .and_then(|l| {
                    l.parse()
                        .map_err(|_| ProtoError::client("CLIENT_ERROR bad payload length"))
                })?;
            // Optional payload CRC32 (8 hex digits) and optional TRACE
            // context, in that order. This crate's client always sends
            // the CRC; bare netcat sessions may omit it — the `TRACE`
            // keyword is what disambiguates a context from a checksum.
            // The CRC *value* is validated only *after* the declared
            // payload has been consumed — rejecting earlier would leave
            // the payload bytes in the stream to be misread as commands.
            let mut crc_token = None;
            let mut trace = None;
            match parts.next() {
                None => {}
                Some("TRACE") => trace = Some(parse_trace_token(&mut parts)?),
                Some(tok) => {
                    crc_token = Some(tok);
                    match parts.next() {
                        None => {}
                        Some("TRACE") => trace = Some(parse_trace_token(&mut parts)?),
                        Some(_) => {
                            return Err(ProtoError::client("CLIENT_ERROR trailing arguments"))
                        }
                    }
                }
            }
            if len > MAX_VALUE_LEN {
                if len > MAX_SWALLOW_LEN {
                    // Too large to even read-and-discard; framing is
                    // unsalvageable without streaming the peer's flood.
                    return Err(ProtoError::fatal_limited("payload too large", "value"));
                }
                // Swallow the declared payload to keep framing, then
                // reject recoverably.
                discard_exact(r, len)?;
                read_payload_tail(r)?;
                return Err(ProtoError::limited(
                    "CLIENT_ERROR payload too large",
                    "value",
                ));
            }
            let mut value = vec![0u8; len];
            r.read_exact(&mut value)
                .map_err(|_| ProtoError::fatal("unexpected EOF in payload"))?;
            read_payload_tail(r)?;
            if let Some(expect) = crc_token.map(parse_crc).transpose()? {
                if crc32(&value) != expect {
                    // The payload was length-framed and fully consumed, so
                    // the stream is still aligned — but the bytes are not
                    // what the client sent. Reject without storing.
                    return Err(ProtoError::client("CLIENT_ERROR payload checksum mismatch"));
                }
            }
            Request::Set { key, value, trace }
        }
        "STATS" | "stats" => no_args(&mut parts, Request::Stats)?,
        "METRICS" | "metrics" => no_args(&mut parts, Request::Metrics)?,
        "TRACES" | "traces" => no_args(&mut parts, Request::Traces)?,
        "QUIT" | "quit" => no_args(&mut parts, Request::Quit)?,
        "" => return Err(ProtoError::client("CLIENT_ERROR empty command")),
        other => {
            return Err(ProtoError::client(format!(
                "CLIENT_ERROR unknown command {other:?}"
            )))
        }
    };
    Ok(Some(request))
}

/// Parses an 8-hex-digit CRC32 token.
fn parse_crc(token: &str) -> Result<u32, ProtoError> {
    if token.len() == 8 && token.bytes().all(|b| b.is_ascii_hexdigit()) {
        u32::from_str_radix(token, 16)
            .map_err(|_| ProtoError::client("CLIENT_ERROR bad payload checksum"))
    } else {
        Err(ProtoError::client("CLIENT_ERROR bad payload checksum"))
    }
}

/// Reads and checks the CRLF that terminates a length-framed payload.
fn read_payload_tail(r: &mut impl BufRead) -> Result<(), ProtoError> {
    let mut tail = [0u8; 2];
    r.read_exact(&mut tail)
        .map_err(|_| ProtoError::fatal("unexpected EOF in payload"))?;
    if &tail != b"\r\n" {
        return Err(ProtoError::fatal("payload not CRLF-terminated"));
    }
    Ok(())
}

/// Parses the optional trailing `TRACE <trace_id>.<span_id>` of a
/// `GET`/`FGET`: nothing left means no context, anything else is a
/// grammar error.
fn parse_opt_trace<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<Option<TraceContext>, ProtoError> {
    match parts.next() {
        None => Ok(None),
        Some("TRACE") => Ok(Some(parse_trace_token(parts)?)),
        Some(_) => Err(ProtoError::client("CLIENT_ERROR trailing arguments")),
    }
}

/// Parses the context operand after a `TRACE` keyword and requires it to
/// end the line.
fn parse_trace_token<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<TraceContext, ProtoError> {
    let token = parts
        .next()
        .ok_or_else(|| ProtoError::client("CLIENT_ERROR TRACE needs <trace_id>.<span_id>"))?;
    let ctx = TraceContext::parse(token)
        .ok_or_else(|| ProtoError::client("CLIENT_ERROR invalid trace context"))?;
    if parts.next().is_some() {
        return Err(ProtoError::client("CLIENT_ERROR trailing arguments"));
    }
    Ok(ctx)
}

fn parse_key<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Result<String, ProtoError> {
    let key = parse_key_keep_rest(parts)?;
    if parts.next().is_some() {
        return Err(ProtoError::client("CLIENT_ERROR trailing arguments"));
    }
    Ok(key)
}

fn parse_key_keep_rest<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<String, ProtoError> {
    let key = parts
        .next()
        .ok_or_else(|| ProtoError::client("CLIENT_ERROR missing key"))?;
    if !valid_key(key) {
        return Err(ProtoError::limited("CLIENT_ERROR invalid key", "key"));
    }
    Ok(key.to_owned())
}

fn no_args<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    request: Request,
) -> Result<Request, ProtoError> {
    if parts.next().is_some() {
        return Err(ProtoError::client("CLIENT_ERROR trailing arguments"));
    }
    Ok(request)
}

// ---------------------------------------------------------------------------
// Response writers (shared by the server and, for shapes, the client).

/// Writes a `VALUE <key> <len> <crc32>` + payload + `END` reply (a `GET`
/// hit). The trailing CRC32 token lets the client detect payload
/// corruption that line framing cannot see.
pub fn write_value(w: &mut impl Write, key: &str, value: &[u8]) -> io::Result<()> {
    write_value_flags(w, key, value, false, false)
}

/// Writes a `VALUE <key> <len> STALE <crc32>` + payload + `END` reply: a
/// degraded `GET` answered from the stale store because the origin
/// failed. Same framing as [`write_value`] plus the `STALE` flag token.
pub fn write_stale_value(w: &mut impl Write, key: &str, value: &[u8]) -> io::Result<()> {
    write_value_flags(w, key, value, true, false)
}

/// Writes a `VALUE` reply with its optional flag tokens, in the
/// normative order `[STALE] [FORWARDED]`, between the length and the
/// CRC32. `STALE` marks a degraded answer from the stale store;
/// `FORWARDED` marks a cluster answer fetched from the key's owner node
/// on the client's behalf (and now cached locally at its measured
/// one-hop cost).
pub fn write_value_flags(
    w: &mut impl Write,
    key: &str,
    value: &[u8],
    stale: bool,
    forwarded: bool,
) -> io::Result<()> {
    let stale = if stale { "STALE " } else { "" };
    let forwarded = if forwarded { "FORWARDED " } else { "" };
    write!(
        w,
        "VALUE {key} {} {stale}{forwarded}{:08x}\r\n",
        value.len(),
        crc32(value)
    )?;
    w.write_all(value)?;
    w.write_all(b"\r\nEND\r\n")
}

/// Writes the recoverable `MOVED <addr>` reply: this cluster node does
/// not own the key and peer-forwarding is disabled, so the client should
/// re-issue the request against `addr` (the owner's advertised address).
/// The connection stays open.
pub fn write_moved(w: &mut impl Write, addr: &str) -> io::Result<()> {
    write!(w, "MOVED {addr}\r\n")
}

/// Writes the recoverable `ORIGIN_ERROR <reason>` reply: the origin fetch
/// for a `GET` failed and no stale copy was available. The connection
/// stays open. Origin-supplied text flows into `reason` (an I/O error
/// message, say), so any CR/LF in it is replaced with spaces — written
/// verbatim it would desynchronize the line framing.
pub fn write_origin_error(w: &mut impl Write, reason: &str) -> io::Result<()> {
    if reason.contains(['\r', '\n']) {
        let reason = reason.replace(['\r', '\n'], " ");
        write!(w, "ORIGIN_ERROR {reason}\r\n")
    } else {
        write!(w, "ORIGIN_ERROR {reason}\r\n")
    }
}

/// Writes the bare `END` reply (a `GET` miss with no origin value).
pub fn write_end(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"END\r\n")
}

/// Writes a length-framed `DATA <len> <crc32>` reply (the `METRICS`
/// payload).
pub fn write_data(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write!(w, "DATA {} {:08x}\r\n", payload.len(), crc32(payload))?;
    w.write_all(payload)?;
    w.write_all(b"\r\nEND\r\n")
}

/// Writes one simple line reply (`STORED`, `DELETED`, `NOT_FOUND`,
/// `CLIENT_ERROR ...`, `SERVER_BUSY`, ...).
pub fn write_line(w: &mut impl Write, line: &str) -> io::Result<()> {
    write!(w, "{line}\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn get(key: &str) -> Request {
        Request::Get {
            key: key.into(),
            trace: None,
        }
    }

    fn fget(key: &str) -> Request {
        Request::ForwardGet {
            key: key.into(),
            trace: None,
        }
    }

    fn set(key: &str, value: &[u8]) -> Request {
        Request::Set {
            key: key.into(),
            value: value.to_vec(),
            trace: None,
        }
    }

    fn parse_all(input: &[u8]) -> Vec<Result<Option<Request>, ProtoError>> {
        let mut r = BufReader::new(input);
        let mut out = Vec::new();
        loop {
            let res = read_request(&mut r);
            let stop = matches!(res, Ok(None) | Err(_));
            out.push(res);
            if stop {
                return out;
            }
        }
    }

    #[test]
    fn parses_a_pipelined_batch() {
        let input = b"GET a\r\nSET b 3\r\nxyz\r\nDEL c\r\nSTATS\r\nMETRICS\r\nQUIT\r\n";
        let reqs: Vec<Request> = parse_all(input)
            .into_iter()
            .map(|r| r.expect("parse"))
            .take_while(|r| r.is_some())
            .flatten()
            .collect();
        assert_eq!(
            reqs,
            vec![
                get("a"),
                set("b", b"xyz"),
                Request::Del("c".into()),
                Request::Stats,
                Request::Metrics,
                Request::Quit,
            ]
        );
    }

    #[test]
    fn accepts_bare_lf_and_lowercase() {
        let mut r = BufReader::new(&b"get k\n"[..]);
        assert_eq!(read_request(&mut r).unwrap(), Some(get("k")));
    }

    #[test]
    fn clean_eof_is_none() {
        let mut r = BufReader::new(&b""[..]);
        assert_eq!(read_request(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_line_is_fatal() {
        let mut r = BufReader::new(&b"GET half-a-comm"[..]);
        match read_request(&mut r) {
            Err(ProtoError::Client { fatal, .. }) => assert!(fatal),
            other => panic!("expected fatal error, got {other:?}"),
        }
    }

    #[test]
    fn set_payload_is_binary_safe() {
        // Payload contains CRLFs and command-lookalikes; the length frame
        // must win.
        let payload = b"GET x\r\nQUIT\r\n\x00\xff";
        let mut input = format!("SET k {}\r\n", payload.len()).into_bytes();
        input.extend_from_slice(payload);
        input.extend_from_slice(b"\r\nGET after\r\n");
        let mut r = BufReader::new(&input[..]);
        assert_eq!(read_request(&mut r).unwrap(), Some(set("k", payload)));
        assert_eq!(read_request(&mut r).unwrap(), Some(get("after")));
    }

    #[test]
    fn unknown_verb_is_recoverable() {
        let mut r = BufReader::new(&b"FROB x\r\nGET y\r\n"[..]);
        match read_request(&mut r) {
            Err(ProtoError::Client { fatal, msg, .. }) => {
                assert!(!fatal, "framing is intact: connection may continue");
                assert!(msg.contains("unknown command"));
            }
            other => panic!("expected client error, got {other:?}"),
        }
        // The next request parses fine off the same reader.
        assert_eq!(read_request(&mut r).unwrap(), Some(get("y")));
    }

    #[test]
    fn key_grammar_is_enforced() {
        assert!(valid_key("user:42"));
        assert!(valid_key(&"k".repeat(MAX_KEY_LEN)));
        assert!(!valid_key(""));
        assert!(!valid_key(&"k".repeat(MAX_KEY_LEN + 1)));
        assert!(!valid_key("has space"));
        assert!(!valid_key("ctrl\x07char"));
        assert!(!valid_key("non-ascii-é"));
        let mut r = BufReader::new(&b"GET \x01\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: false, .. })
        ));
    }

    #[test]
    fn overlong_line_is_recoverable_and_resyncs() {
        let mut input = b"GET ".to_vec();
        input.extend(std::iter::repeat_n(b'k', MAX_LINE_LEN + 10));
        input.extend_from_slice(b"\r\nGET after\r\n");
        let mut r = BufReader::new(&input[..]);
        match read_request(&mut r) {
            Err(ProtoError::Client { fatal, limit, .. }) => {
                assert!(!fatal, "an overlong line is discarded, not fatal");
                assert_eq!(limit, Some("line"));
            }
            other => panic!("expected recoverable limit error, got {other:?}"),
        }
        // The reader is positioned at the next frame boundary.
        assert_eq!(read_request(&mut r).unwrap(), Some(get("after")));
    }

    #[test]
    fn overlong_line_without_newline_hits_eof_fatally() {
        // No newline ever arrives: the discard runs into EOF, which is a
        // real framing loss.
        let input = vec![b'k'; MAX_LINE_LEN + 100];
        let mut r = BufReader::new(&input[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: true, .. })
        ));
    }

    #[test]
    fn oversize_payload_is_swallowed_recoverably() {
        let len = MAX_VALUE_LEN + 1;
        let mut input = format!("SET k {len}\r\n").into_bytes();
        input.extend(std::iter::repeat_n(b'x', len));
        input.extend_from_slice(b"\r\nGET after\r\n");
        let mut r = BufReader::new(&input[..]);
        match read_request(&mut r) {
            Err(ProtoError::Client { fatal, limit, .. }) => {
                assert!(!fatal, "a swallowable oversize payload is recoverable");
                assert_eq!(limit, Some("value"));
            }
            other => panic!("expected recoverable limit error, got {other:?}"),
        }
        assert_eq!(read_request(&mut r).unwrap(), Some(get("after")));
    }

    #[test]
    fn unswallowable_payload_is_fatal() {
        let input = format!("SET k {}\r\n", MAX_SWALLOW_LEN + 1).into_bytes();
        let mut r = BufReader::new(&input[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client {
                fatal: true,
                limit: Some("value"),
                ..
            })
        ));
    }

    #[test]
    fn set_crc_is_verified_when_present() {
        // Correct CRC: stored.
        let mut input = format!("SET k 3 {:08x}\r\n", crc32(b"xyz")).into_bytes();
        input.extend_from_slice(b"xyz\r\n");
        let mut r = BufReader::new(&input[..]);
        assert_eq!(read_request(&mut r).unwrap(), Some(set("k", b"xyz")));

        // Wrong CRC: recoverable reject, stream stays aligned.
        let mut input = format!("SET k 3 {:08x}\r\n", crc32(b"xyz") ^ 1).into_bytes();
        input.extend_from_slice(b"xyz\r\nGET after\r\n");
        let mut r = BufReader::new(&input[..]);
        match read_request(&mut r) {
            Err(ProtoError::Client { fatal, msg, .. }) => {
                assert!(!fatal);
                assert!(msg.contains("checksum mismatch"));
            }
            other => panic!("expected checksum reject, got {other:?}"),
        }
        assert_eq!(read_request(&mut r).unwrap(), Some(get("after")));

        // Malformed CRC token: the payload is still consumed before the
        // reject (rejecting earlier would leave it in the stream to be
        // misread as commands), so the error is recoverable and the next
        // request parses.
        let mut r = BufReader::new(&b"SET k 3 nothex!!\r\nxyz\r\nGET after\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: false, .. })
        ));
        assert_eq!(read_request(&mut r).unwrap(), Some(get("after")));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The classic CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn missing_payload_terminator_is_fatal() {
        let mut r = BufReader::new(&b"SET k 2\r\nabXX"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: true, .. })
        ));
    }

    #[test]
    fn response_writers_produce_the_documented_shapes() {
        let abc_crc = format!("{:08x}", crc32(b"abc"));
        let mut buf = Vec::new();
        write_value(&mut buf, "k", b"abc").unwrap();
        assert_eq!(
            buf,
            format!("VALUE k 3 {abc_crc}\r\nabc\r\nEND\r\n").as_bytes()
        );
        buf.clear();
        write_end(&mut buf).unwrap();
        assert_eq!(buf, b"END\r\n");
        buf.clear();
        write_data(&mut buf, b"metrics 1\n").unwrap();
        let data_crc = format!("{:08x}", crc32(b"metrics 1\n"));
        assert_eq!(
            buf,
            format!("DATA 10 {data_crc}\r\nmetrics 1\n\r\nEND\r\n").as_bytes()
        );
        buf.clear();
        write_line(&mut buf, "STORED").unwrap();
        assert_eq!(buf, b"STORED\r\n");
        buf.clear();
        write_stale_value(&mut buf, "k", b"abc").unwrap();
        assert_eq!(
            buf,
            format!("VALUE k 3 STALE {abc_crc}\r\nabc\r\nEND\r\n").as_bytes()
        );
        buf.clear();
        write_origin_error(&mut buf, "origin fetch timed out").unwrap();
        assert_eq!(buf, b"ORIGIN_ERROR origin fetch timed out\r\n");
    }

    #[test]
    fn fget_parses_like_get_and_keeps_the_key_grammar() {
        let mut r = BufReader::new(&b"FGET user:1\r\nfget user:2\r\n"[..]);
        assert_eq!(read_request(&mut r).unwrap(), Some(fget("user:1")));
        assert_eq!(read_request(&mut r).unwrap(), Some(fget("user:2")));
        let mut r = BufReader::new(&b"FGET has space\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: false, .. })
        ));
    }

    #[test]
    fn cluster_reply_writers_produce_the_documented_shapes() {
        let abc_crc = format!("{:08x}", crc32(b"abc"));
        let mut buf = Vec::new();
        write_value_flags(&mut buf, "k", b"abc", false, true).unwrap();
        assert_eq!(
            buf,
            format!("VALUE k 3 FORWARDED {abc_crc}\r\nabc\r\nEND\r\n").as_bytes()
        );
        buf.clear();
        // Both flags: STALE first, FORWARDED second — the normative order.
        write_value_flags(&mut buf, "k", b"abc", true, true).unwrap();
        assert_eq!(
            buf,
            format!("VALUE k 3 STALE FORWARDED {abc_crc}\r\nabc\r\nEND\r\n").as_bytes()
        );
        buf.clear();
        write_moved(&mut buf, "10.0.0.2:11311").unwrap();
        assert_eq!(buf, b"MOVED 10.0.0.2:11311\r\n");
    }

    #[test]
    fn trace_token_parses_on_get_fget_and_set() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef,
            span_id: 0xfedc_ba98_7654_3210,
            sampled: true,
        };
        let token = ctx.render();
        let mut input = format!("GET k TRACE {token}\r\nFGET k TRACE {token}\r\n").into_bytes();
        // SET with CRC and context, then SET with context only.
        input.extend_from_slice(
            format!("SET k 3 {:08x} TRACE {token}\r\nxyz\r\n", crc32(b"xyz")).as_bytes(),
        );
        input.extend_from_slice(format!("SET k 3 TRACE {token}\r\nxyz\r\n").as_bytes());
        let mut r = BufReader::new(&input[..]);
        assert_eq!(
            read_request(&mut r).unwrap(),
            Some(Request::Get {
                key: "k".into(),
                trace: Some(ctx)
            })
        );
        assert_eq!(
            read_request(&mut r).unwrap(),
            Some(Request::ForwardGet {
                key: "k".into(),
                trace: Some(ctx)
            })
        );
        for _ in 0..2 {
            assert_eq!(
                read_request(&mut r).unwrap(),
                Some(Request::Set {
                    key: "k".into(),
                    value: b"xyz".to_vec(),
                    trace: Some(ctx)
                })
            );
        }
    }

    #[test]
    fn trace_context_round_trips_through_render() {
        let ctx = TraceContext {
            trace_id: 1,
            span_id: u64::MAX,
            sampled: true,
        };
        assert_eq!(TraceContext::parse(&ctx.render()), Some(ctx));
    }

    #[test]
    fn bad_trace_tokens_are_recoverable_rejects() {
        // Malformed context, missing operand, trailing junk after the
        // context, and non-TRACE trailing word — all recoverable, and
        // the stream resyncs on the next line.
        for line in [
            "GET k TRACE nonsense",
            "GET k TRACE",
            "GET k TRACE 0.0 extra",
            "GET k JUNK",
            "FGET k TRACE xyz.abc",
            "SET k 3 TRACE bogus",
        ] {
            let input = format!("{line}\r\nGET after\r\n");
            let mut r = BufReader::new(input.as_bytes());
            match read_request(&mut r) {
                Err(ProtoError::Client { fatal, .. }) => {
                    assert!(!fatal, "{line:?} must be recoverable")
                }
                other => panic!("{line:?}: expected client error, got {other:?}"),
            }
            assert_eq!(read_request(&mut r).unwrap(), Some(get("after")));
        }
        // An all-zero context is syntactically valid hex but not a
        // usable id pair.
        let mut r = BufReader::new(&b"GET k TRACE 0000000000000000.0000000000000000\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: false, .. })
        ));
    }

    #[test]
    fn traces_verb_parses_and_takes_no_args() {
        let mut r = BufReader::new(&b"TRACES\r\ntraces\r\nTRACES now\r\n"[..]);
        assert_eq!(read_request(&mut r).unwrap(), Some(Request::Traces));
        assert_eq!(read_request(&mut r).unwrap(), Some(Request::Traces));
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: false, .. })
        ));
    }

    #[test]
    fn max_length_traced_get_fits_in_a_line() {
        // The line-length budget exists precisely so a max-length key
        // plus a full TRACE token still parses.
        let key = "k".repeat(MAX_KEY_LEN);
        let ctx = TraceContext {
            trace_id: 7,
            span_id: 9,
            sampled: true,
        };
        let line = format!("GET {key} TRACE {}\r\n", ctx.render());
        assert!(line.len() - 2 <= MAX_LINE_LEN, "budget regressed");
        let mut r = BufReader::new(line.as_bytes());
        match read_request(&mut r).unwrap() {
            Some(Request::Get { key: k, trace }) => {
                assert_eq!(k, key);
                assert_eq!(trace.map(|t| t.trace_id), Some(7));
            }
            other => panic!("expected traced GET, got {other:?}"),
        }
    }

    #[test]
    fn origin_error_reason_is_sanitized_to_one_line() {
        // Origin-supplied text can carry CR/LF; written verbatim the tail
        // would parse as a second reply line and desync the stream.
        let mut buf = Vec::new();
        write_origin_error(&mut buf, "disk error\r\nEND").unwrap();
        assert_eq!(buf, b"ORIGIN_ERROR disk error  END\r\n");
        buf.clear();
        write_origin_error(&mut buf, "split\nreason").unwrap();
        assert_eq!(buf, b"ORIGIN_ERROR split reason\r\n");
    }
}
