//! The wire protocol: a memcached-style, pipelined, line-oriented text
//! protocol (see `PROTOCOL.md` at the repository root for the normative
//! grammar).
//!
//! Requests are parsed *incrementally* from a buffered socket: a command
//! line is accumulated byte-wise up to a hard length cap (so a peer that
//! never sends a newline cannot balloon memory), and `SET` payloads are
//! read as exactly `len` bytes plus a trailing CRLF. Because parsing never
//! reads more than one request ahead, any number of pipelined requests may
//! share one connection; responses come back in request order.
//!
//! Errors split into two classes with different connection fates:
//!
//! * **Recoverable** ([`ProtoError::Client`] with `fatal == false`) — the
//!   line was framed correctly but meant nothing (unknown verb, bad key,
//!   wrong argument count). The server answers `CLIENT_ERROR` and keeps
//!   the connection.
//! * **Fatal** (`fatal == true`, or an I/O error) — framing itself broke
//!   (overlong line, missing payload terminator): byte position in the
//!   stream is no longer trustworthy, so the server answers and closes.

use std::io::{self, BufRead, Write};

/// Maximum key length in bytes (memcached's classic limit).
pub const MAX_KEY_LEN: usize = 250;
/// Maximum `SET` payload length in bytes.
pub const MAX_VALUE_LEN: usize = 1 << 20;
/// Maximum command-line length in bytes, including the terminator —
/// comfortably a verb, a maximal key, and a payload length.
pub const MAX_LINE_LEN: usize = MAX_KEY_LEN + 32;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `GET <key>` — read-through lookup.
    Get(String),
    /// `SET <key> <len>` + payload — explicit store.
    Set(String, Vec<u8>),
    /// `DEL <key>` — invalidation.
    Del(String),
    /// `STATS` — one `STAT <name> <value>` line per counter.
    Stats,
    /// `METRICS` — Prometheus text exposition, length-framed.
    Metrics,
    /// `QUIT` — orderly connection close.
    Quit,
}

/// A protocol-level failure while reading one request.
#[derive(Debug)]
pub enum ProtoError {
    /// The transport failed (includes timeouts surfacing as
    /// `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// The peer sent something invalid. `fatal` says whether stream
    /// framing was lost (connection must close) or the next line can
    /// still be trusted.
    Client {
        /// Human-readable reason, echoed in the error reply.
        msg: String,
        /// Whether the connection must be closed.
        fatal: bool,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Client { msg, .. } => f.write_str(msg),
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl ProtoError {
    fn client(msg: impl Into<String>) -> Self {
        ProtoError::Client {
            msg: msg.into(),
            fatal: false,
        }
    }

    fn fatal(msg: impl Into<String>) -> Self {
        ProtoError::Client {
            msg: msg.into(),
            fatal: true,
        }
    }
}

/// Whether `key` satisfies the key grammar: 1..=250 bytes of printable
/// ASCII excluding space (`0x21..=0x7E`).
#[must_use]
pub fn valid_key(key: &str) -> bool {
    !key.is_empty() && key.len() <= MAX_KEY_LEN && key.bytes().all(|b| (0x21..=0x7E).contains(&b))
}

/// Reads one line, accepting `\r\n` or bare `\n`, rejecting lines longer
/// than `max` bytes. `Ok(None)` is a clean EOF *before any byte of a new
/// line*; EOF mid-line is an error.
fn read_line(r: &mut impl BufRead, max: usize) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ProtoError::fatal("unexpected EOF mid-line"))
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    return Err(ProtoError::fatal("command line too long"));
                }
                line.extend_from_slice(&buf[..pos]);
                r.consume(pos + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            None => {
                if line.len() + buf.len() > max {
                    return Err(ProtoError::fatal("command line too long"));
                }
                line.extend_from_slice(buf);
                let n = buf.len();
                r.consume(n);
            }
        }
    }
}

/// Reads the next request off `r`. `Ok(None)` means the peer closed the
/// connection cleanly between requests.
///
/// # Errors
///
/// [`ProtoError::Io`] on transport failure, [`ProtoError::Client`] on a
/// grammar violation (see the module docs for the recoverable/fatal
/// split).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, ProtoError> {
    let line = match read_line(r, MAX_LINE_LEN)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let line = std::str::from_utf8(&line)
        .map_err(|_| ProtoError::client("CLIENT_ERROR command is not valid UTF-8"))?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let verb = parts.next().unwrap_or("");
    let request = match verb {
        "GET" | "get" => Request::Get(parse_key(&mut parts)?),
        "DEL" | "del" => Request::Del(parse_key(&mut parts)?),
        "SET" | "set" => {
            let key = parse_key_keep_rest(&mut parts)?;
            let len: usize = parts
                .next()
                .ok_or_else(|| ProtoError::client("CLIENT_ERROR SET needs <key> <len>"))
                .and_then(|l| {
                    l.parse()
                        .map_err(|_| ProtoError::client("CLIENT_ERROR bad payload length"))
                })?;
            if parts.next().is_some() {
                return Err(ProtoError::client("CLIENT_ERROR trailing arguments"));
            }
            if len > MAX_VALUE_LEN {
                // The payload is coming no matter what we reply; framing
                // is unsalvageable without swallowing it, so close.
                return Err(ProtoError::fatal("payload too large"));
            }
            let mut value = vec![0u8; len];
            r.read_exact(&mut value)
                .map_err(|_| ProtoError::fatal("unexpected EOF in payload"))?;
            let mut tail = [0u8; 2];
            r.read_exact(&mut tail)
                .map_err(|_| ProtoError::fatal("unexpected EOF in payload"))?;
            if &tail != b"\r\n" {
                return Err(ProtoError::fatal("payload not CRLF-terminated"));
            }
            Request::Set(key, value)
        }
        "STATS" | "stats" => no_args(&mut parts, Request::Stats)?,
        "METRICS" | "metrics" => no_args(&mut parts, Request::Metrics)?,
        "QUIT" | "quit" => no_args(&mut parts, Request::Quit)?,
        "" => return Err(ProtoError::client("CLIENT_ERROR empty command")),
        other => {
            return Err(ProtoError::client(format!(
                "CLIENT_ERROR unknown command {other:?}"
            )))
        }
    };
    Ok(Some(request))
}

fn parse_key<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Result<String, ProtoError> {
    let key = parse_key_keep_rest(parts)?;
    if parts.next().is_some() {
        return Err(ProtoError::client("CLIENT_ERROR trailing arguments"));
    }
    Ok(key)
}

fn parse_key_keep_rest<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<String, ProtoError> {
    let key = parts
        .next()
        .ok_or_else(|| ProtoError::client("CLIENT_ERROR missing key"))?;
    if !valid_key(key) {
        return Err(ProtoError::client("CLIENT_ERROR invalid key"));
    }
    Ok(key.to_owned())
}

fn no_args<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    request: Request,
) -> Result<Request, ProtoError> {
    if parts.next().is_some() {
        return Err(ProtoError::client("CLIENT_ERROR trailing arguments"));
    }
    Ok(request)
}

// ---------------------------------------------------------------------------
// Response writers (shared by the server and, for shapes, the client).

/// Writes a `VALUE <key> <len>` + payload + `END` reply (a `GET` hit).
pub fn write_value(w: &mut impl Write, key: &str, value: &[u8]) -> io::Result<()> {
    write!(w, "VALUE {key} {}\r\n", value.len())?;
    w.write_all(value)?;
    w.write_all(b"\r\nEND\r\n")
}

/// Writes a `VALUE <key> <len> STALE` + payload + `END` reply: a degraded
/// `GET` answered from the stale store because the origin failed. Same
/// framing as [`write_value`] plus the `STALE` flag token.
pub fn write_stale_value(w: &mut impl Write, key: &str, value: &[u8]) -> io::Result<()> {
    write!(w, "VALUE {key} {} STALE\r\n", value.len())?;
    w.write_all(value)?;
    w.write_all(b"\r\nEND\r\n")
}

/// Writes the recoverable `ORIGIN_ERROR <reason>` reply: the origin fetch
/// for a `GET` failed and no stale copy was available. The connection
/// stays open. Origin-supplied text flows into `reason` (an I/O error
/// message, say), so any CR/LF in it is replaced with spaces — written
/// verbatim it would desynchronize the line framing.
pub fn write_origin_error(w: &mut impl Write, reason: &str) -> io::Result<()> {
    if reason.contains(['\r', '\n']) {
        let reason = reason.replace(['\r', '\n'], " ");
        write!(w, "ORIGIN_ERROR {reason}\r\n")
    } else {
        write!(w, "ORIGIN_ERROR {reason}\r\n")
    }
}

/// Writes the bare `END` reply (a `GET` miss with no origin value).
pub fn write_end(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"END\r\n")
}

/// Writes a length-framed `DATA` reply (the `METRICS` payload).
pub fn write_data(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write!(w, "DATA {}\r\n", payload.len())?;
    w.write_all(payload)?;
    w.write_all(b"\r\nEND\r\n")
}

/// Writes one simple line reply (`STORED`, `DELETED`, `NOT_FOUND`,
/// `CLIENT_ERROR ...`, `SERVER_BUSY`, ...).
pub fn write_line(w: &mut impl Write, line: &str) -> io::Result<()> {
    write!(w, "{line}\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_all(input: &[u8]) -> Vec<Result<Option<Request>, ProtoError>> {
        let mut r = BufReader::new(input);
        let mut out = Vec::new();
        loop {
            let res = read_request(&mut r);
            let stop = matches!(res, Ok(None) | Err(_));
            out.push(res);
            if stop {
                return out;
            }
        }
    }

    #[test]
    fn parses_a_pipelined_batch() {
        let input = b"GET a\r\nSET b 3\r\nxyz\r\nDEL c\r\nSTATS\r\nMETRICS\r\nQUIT\r\n";
        let reqs: Vec<Request> = parse_all(input)
            .into_iter()
            .map(|r| r.expect("parse"))
            .take_while(|r| r.is_some())
            .flatten()
            .collect();
        assert_eq!(
            reqs,
            vec![
                Request::Get("a".into()),
                Request::Set("b".into(), b"xyz".to_vec()),
                Request::Del("c".into()),
                Request::Stats,
                Request::Metrics,
                Request::Quit,
            ]
        );
    }

    #[test]
    fn accepts_bare_lf_and_lowercase() {
        let mut r = BufReader::new(&b"get k\n"[..]);
        assert_eq!(
            read_request(&mut r).unwrap(),
            Some(Request::Get("k".into()))
        );
    }

    #[test]
    fn clean_eof_is_none() {
        let mut r = BufReader::new(&b""[..]);
        assert_eq!(read_request(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_line_is_fatal() {
        let mut r = BufReader::new(&b"GET half-a-comm"[..]);
        match read_request(&mut r) {
            Err(ProtoError::Client { fatal, .. }) => assert!(fatal),
            other => panic!("expected fatal error, got {other:?}"),
        }
    }

    #[test]
    fn set_payload_is_binary_safe() {
        // Payload contains CRLFs and command-lookalikes; the length frame
        // must win.
        let payload = b"GET x\r\nQUIT\r\n\x00\xff";
        let mut input = format!("SET k {}\r\n", payload.len()).into_bytes();
        input.extend_from_slice(payload);
        input.extend_from_slice(b"\r\nGET after\r\n");
        let mut r = BufReader::new(&input[..]);
        assert_eq!(
            read_request(&mut r).unwrap(),
            Some(Request::Set("k".into(), payload.to_vec()))
        );
        assert_eq!(
            read_request(&mut r).unwrap(),
            Some(Request::Get("after".into()))
        );
    }

    #[test]
    fn unknown_verb_is_recoverable() {
        let mut r = BufReader::new(&b"FROB x\r\nGET y\r\n"[..]);
        match read_request(&mut r) {
            Err(ProtoError::Client { fatal, msg }) => {
                assert!(!fatal, "framing is intact: connection may continue");
                assert!(msg.contains("unknown command"));
            }
            other => panic!("expected client error, got {other:?}"),
        }
        // The next request parses fine off the same reader.
        assert_eq!(
            read_request(&mut r).unwrap(),
            Some(Request::Get("y".into()))
        );
    }

    #[test]
    fn key_grammar_is_enforced() {
        assert!(valid_key("user:42"));
        assert!(valid_key(&"k".repeat(MAX_KEY_LEN)));
        assert!(!valid_key(""));
        assert!(!valid_key(&"k".repeat(MAX_KEY_LEN + 1)));
        assert!(!valid_key("has space"));
        assert!(!valid_key("ctrl\x07char"));
        assert!(!valid_key("non-ascii-é"));
        let mut r = BufReader::new(&b"GET \x01\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: false, .. })
        ));
    }

    #[test]
    fn overlong_line_is_fatal() {
        let mut input = b"GET ".to_vec();
        input.extend(std::iter::repeat(b'k').take(MAX_LINE_LEN + 10));
        input.extend_from_slice(b"\r\n");
        let mut r = BufReader::new(&input[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: true, .. })
        ));
    }

    #[test]
    fn oversize_payload_is_fatal() {
        let input = format!("SET k {}\r\n", MAX_VALUE_LEN + 1).into_bytes();
        let mut r = BufReader::new(&input[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: true, .. })
        ));
    }

    #[test]
    fn missing_payload_terminator_is_fatal() {
        let mut r = BufReader::new(&b"SET k 2\r\nabXX"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::Client { fatal: true, .. })
        ));
    }

    #[test]
    fn response_writers_produce_the_documented_shapes() {
        let mut buf = Vec::new();
        write_value(&mut buf, "k", b"abc").unwrap();
        assert_eq!(buf, b"VALUE k 3\r\nabc\r\nEND\r\n");
        buf.clear();
        write_end(&mut buf).unwrap();
        assert_eq!(buf, b"END\r\n");
        buf.clear();
        write_data(&mut buf, b"metrics 1\n").unwrap();
        assert_eq!(buf, b"DATA 10\r\nmetrics 1\n\r\nEND\r\n");
        buf.clear();
        write_line(&mut buf, "STORED").unwrap();
        assert_eq!(buf, b"STORED\r\n");
        buf.clear();
        write_stale_value(&mut buf, "k", b"abc").unwrap();
        assert_eq!(buf, b"VALUE k 3 STALE\r\nabc\r\nEND\r\n");
        buf.clear();
        write_origin_error(&mut buf, "origin fetch timed out").unwrap();
        assert_eq!(buf, b"ORIGIN_ERROR origin fetch timed out\r\n");
    }

    #[test]
    fn origin_error_reason_is_sanitized_to_one_line() {
        // Origin-supplied text can carry CR/LF; written verbatim the tail
        // would parse as a second reply line and desync the stream.
        let mut buf = Vec::new();
        write_origin_error(&mut buf, "disk error\r\nEND").unwrap();
        assert_eq!(buf, b"ORIGIN_ERROR disk error  END\r\n");
        buf.clear();
        write_origin_error(&mut buf, "split\nreason").unwrap();
        assert_eq!(buf, b"ORIGIN_ERROR split reason\r\n");
    }
}
