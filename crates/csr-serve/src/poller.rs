//! A minimal readiness poller: epoll on Linux, kqueue on BSD/macOS.
//!
//! This is the one place in the library crates that talks to the kernel
//! directly — the FFI is confined here the same way the daemon confines
//! its `signal(2)` handler, and the crate root keeps `#![deny(unsafe_code)]`
//! with a module-local allowance. Everything above this module (the
//! reactor, the server) is safe Rust over three primitives:
//!
//! * [`Poller::register`]/[`Poller::modify`]/[`Poller::deregister`] —
//!   level-triggered interest in a socket's readability/writability,
//!   keyed by a caller-chosen `u64` token;
//! * [`Poller::wait`] — block until something is ready (or a timeout);
//! * [`Poller::wake`] — thread-safe cross-thread wake-up (an `eventfd`
//!   on Linux, an `EVFILT_USER` event on kqueue), surfaced to the waiter
//!   as an event carrying [`WAKE_TOKEN`].
//!
//! Level-triggered semantics are deliberate: a readiness edge can never
//! be "lost" by a short read, which keeps the reactor's state machine
//! simple enough to reason about under chaos tests. The throughput cost
//! versus edge-triggered polling is noise next to request execution.
#![allow(unsafe_code)]

use std::io;
use std::time::Duration;

/// The token [`Poller::wait`] reports for [`Poller::wake`] wake-ups.
/// Callers must not register sockets under this token.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Interest in a registered file descriptor, level-triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Report when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under ([`WAKE_TOKEN`] for wakes).
    pub token: u64,
    /// The fd is readable (data, EOF, or a pending accept).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer shut down its write side (FIN): drain with `read` —
    /// buffered data and a clean EOF are still there to collect.
    pub hangup: bool,
    /// The fd errored or fully hung up (RST, both halves gone). Reported
    /// regardless of registered interest; the connection is dead.
    pub error: bool,
}

pub use imp::Poller;

#[cfg(any(target_os = "linux", target_os = "android"))]
mod imp {
    use super::{Event, Interest, WAKE_TOKEN};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // The glibc epoll surface, declared by hand: the workspace is
    // dependency-free, so no libc crate. Signatures match `sys/epoll.h`
    // and `sys/eventfd.h`.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0x8_0000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: i32 = 0x800;
    const EFD_CLOEXEC: i32 = 0x8_0000;

    /// `struct epoll_event`: packed on x86-64 (the kernel ABI), natural
    /// layout elsewhere — mirroring glibc's `__EPOLL_PACKED`.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// The epoll-backed poller (see module docs for the contract).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        wakefd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance and its wake `eventfd`.
        ///
        /// # Errors
        ///
        /// Propagates kernel failures (fd exhaustion, mostly).
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wakefd = match check(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wakefd };
            poller.ctl(EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, Interest::READ)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut events = 0;
            if interest.readable {
                // RDHUP rides read interest only: a caller that paused
                // reads must not be woken level-triggered by a FIN it is
                // not ready to collect.
                events |= EPOLLIN | EPOLLRDHUP;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures (e.g. the fd is already
        /// registered).
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest set of a registered `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures (e.g. the fd was never
        /// registered).
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        /// Blocks until readiness or `timeout` (`None`: forever), pushing
        /// events into `out` (which is cleared first). Wake-ups appear as
        /// a readable event with [`WAKE_TOKEN`] and are drained here, so
        /// one `wake` never spins the caller.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failures; `EINTR` is retried
        /// internally.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            out.clear();
            let timeout_ms = timeout.map_or(-1i32, |d| {
                i32::try_from(d.as_millis()).unwrap_or(i32::MAX).max(
                    // Round sub-millisecond timeouts up, not down to a
                    // busy-spin.
                    i32::from(!d.is_zero()),
                )
            });
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                match check(n) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let (bits, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    self.drain_wake();
                }
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & EPOLLRDHUP != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }

        /// Wakes one concurrent (or the next) [`wait`](Self::wait).
        /// Thread-safe; coalesces with outstanding wakes.
        pub fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // A full eventfd counter (EAGAIN) already guarantees the
            // waiter will wake; nothing to do on error.
            let _ = unsafe { write(self.wakefd, one.as_ptr(), one.len()) };
        }

        fn drain_wake(&self) {
            let mut buf = [0u8; 8];
            // Nonblocking read resets the counter; EAGAIN means another
            // thread already drained it.
            let _ = unsafe { read(self.wakefd, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

#[cfg(any(target_os = "macos", target_os = "ios", target_os = "freebsd"))]
mod imp {
    use super::{Event, Interest, WAKE_TOKEN};
    use std::io;
    use std::os::fd::RawFd;
    use std::ptr;
    use std::time::Duration;

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const KEvent,
            nchanges: i32,
            eventlist: *mut KEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: isize,
        tv_nsec: isize,
    }

    /// `struct kevent`; FreeBSD ≥ 12 appends an `ext` array.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        #[cfg(target_os = "freebsd")]
        data: i64,
        #[cfg(not(target_os = "freebsd"))]
        data: isize,
        udata: usize,
        #[cfg(target_os = "freebsd")]
        ext: [u64; 4],
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    #[cfg(target_os = "freebsd")]
    const EVFILT_USER: i16 = -11;
    #[cfg(not(target_os = "freebsd"))]
    const EVFILT_USER: i16 = -10;
    const EV_ADD: u16 = 0x1;
    const EV_DELETE: u16 = 0x2;
    const EV_ENABLE: u16 = 0x4;
    const EV_CLEAR: u16 = 0x20;
    const EV_ERROR: u16 = 0x4000;
    const EV_EOF: u16 = 0x8000;
    const NOTE_TRIGGER: u32 = 0x0100_0000;

    /// The kqueue-backed poller (see module docs for the contract).
    #[derive(Debug)]
    pub struct Poller {
        kq: RawFd,
    }

    impl Poller {
        /// Creates the kqueue and arms the `EVFILT_USER` wake filter.
        ///
        /// # Errors
        ///
        /// Propagates kernel failures.
        pub fn new() -> io::Result<Poller> {
            let kq = check(unsafe { kqueue() })?;
            let poller = Poller { kq };
            poller.change(&[kev(
                0,
                EVFILT_USER,
                EV_ADD | EV_CLEAR | EV_ENABLE,
                0,
                WAKE_TOKEN,
            )])?;
            Ok(poller)
        }

        fn change(&self, changes: &[KEvent]) -> io::Result<()> {
            let n = unsafe {
                kevent(
                    self.kq,
                    changes.as_ptr(),
                    changes.len() as i32,
                    ptr::null_mut(),
                    0,
                    ptr::null(),
                )
            };
            check(n).map(|_| ())
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        ///
        /// Propagates `kevent` failures.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest, true)
        }

        /// Changes the interest set of a registered `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `kevent` failures.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest, false)
        }

        fn apply(&self, fd: RawFd, token: u64, interest: Interest, fresh: bool) -> io::Result<()> {
            // kqueue tracks read/write filters independently: add the
            // wanted ones, delete the unwanted ones (ENOENT from deleting
            // a filter that was never added is fine on registration).
            for (filter, on) in [
                (EVFILT_READ, interest.readable),
                (EVFILT_WRITE, interest.writable),
            ] {
                let res = if on {
                    self.change(&[kev(fd as usize, filter, EV_ADD | EV_ENABLE, 0, token)])
                } else {
                    self.change(&[kev(fd as usize, filter, EV_DELETE, 0, token)])
                };
                match res {
                    Ok(()) => {}
                    Err(e) if !on && (fresh || e.raw_os_error() == Some(2 /* ENOENT */)) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `kevent` failures other than "filter not present".
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            for filter in [EVFILT_READ, EVFILT_WRITE] {
                match self.change(&[kev(fd as usize, filter, EV_DELETE, 0, 0)]) {
                    Ok(()) => {}
                    Err(e) if e.raw_os_error() == Some(2 /* ENOENT */) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        }

        /// Blocks until readiness or `timeout` (`None`: forever), pushing
        /// events into `out` (cleared first). Wake-ups appear as events
        /// with [`WAKE_TOKEN`] (`EV_CLEAR` auto-resets the filter).
        ///
        /// # Errors
        ///
        /// Propagates `kevent` failures; `EINTR` is retried internally.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            out.clear();
            let ts = timeout.map(|d| Timespec {
                tv_sec: d.as_secs() as isize,
                tv_nsec: d.subsec_nanos() as isize,
            });
            let ts_ptr = ts.as_ref().map_or(ptr::null(), |t| t as *const _);
            let mut buf = [kev(0, 0, 0, 0, 0); 256];
            let n = loop {
                let n = unsafe {
                    kevent(
                        self.kq,
                        ptr::null(),
                        0,
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        ts_ptr,
                    )
                };
                match check(n) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                if ev.flags & EV_ERROR != 0 && ev.data != 0 {
                    continue; // a per-change error report, not readiness
                }
                out.push(Event {
                    token: ev.udata as u64,
                    readable: ev.filter == EVFILT_READ || ev.filter == EVFILT_USER,
                    writable: ev.filter == EVFILT_WRITE,
                    hangup: ev.flags & EV_EOF != 0,
                    error: false,
                });
            }
            Ok(n)
        }

        /// Wakes one concurrent (or the next) [`wait`](Self::wait).
        /// Thread-safe; coalesces with outstanding wakes.
        pub fn wake(&self) {
            let _ = self.change(&[kev(0, EVFILT_USER, 0, NOTE_TRIGGER, WAKE_TOKEN)]);
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.kq);
            }
        }
    }

    fn kev(ident: usize, filter: i16, flags: u16, fflags: u32, udata: u64) -> KEvent {
        KEvent {
            ident,
            filter,
            flags,
            fflags,
            data: 0,
            udata: udata as usize,
            #[cfg(target_os = "freebsd")]
            ext: [0; 4],
        }
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd"
)))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    /// Stub poller for platforms without epoll/kqueue support: every
    /// constructor fails, so `--io event` reports `Unsupported` and the
    /// blocking fallback (pure std, no FFI) remains the path.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    #[allow(missing_docs, clippy::missing_errors_doc, clippy::unused_self)]
    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "event-driven i/o is not supported on this platform",
            ))
        }

        pub fn register(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn modify(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn wait(&self, _out: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn wake(&self) {}
    }
}

/// Convenience: waits with a timeout expressed in milliseconds.
///
/// # Errors
///
/// Propagates [`Poller::wait`] failures.
pub fn wait_ms(poller: &Poller, out: &mut Vec<Event>, ms: u64) -> io::Result<usize> {
    poller.wait(out, Some(Duration::from_millis(ms)))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reports_readability_level_triggered() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: timeout fires.
        wait_ms(&poller, &mut events, 50).unwrap();
        assert!(events.iter().all(|e| e.token != 7), "spurious readiness");

        a.write_all(b"x").unwrap();
        wait_ms(&poller, &mut events, 2000).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("readable");
        assert!(ev.readable);

        // Level-triggered: unread data keeps reporting.
        wait_ms(&poller, &mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let mut b = b;
        assert_eq!(b.read(&mut buf).unwrap(), 1);
        wait_ms(&poller, &mut events, 50).unwrap();
        assert!(
            events.iter().all(|e| e.token != 7),
            "drained fd still ready"
        );
    }

    #[test]
    fn modify_toggles_write_interest() {
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        wait_ms(&poller, &mut events, 50).unwrap();
        assert!(events.iter().all(|e| !e.writable), "write interest off");

        poller
            .modify(b.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        wait_ms(&poller, &mut events, 2000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.writable),
            "an idle socket is writable once write interest is on"
        );

        poller.modify(b.as_raw_fd(), 3, Interest::READ).unwrap();
        wait_ms(&poller, &mut events, 50).unwrap();
        assert!(events.iter().all(|e| !e.writable));
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn wake_crosses_threads_and_coalesces() {
        let poller = Arc::new(Poller::new().unwrap());
        let remote = Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            // Several wakes before and while the main thread waits.
            remote.wake();
            remote.wake();
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
        });
        let mut events = Vec::new();
        let t0 = Instant::now();
        wait_ms(&poller, &mut events, 5000).unwrap();
        assert!(
            events.iter().any(|e| e.token == WAKE_TOKEN),
            "wake event surfaced"
        );
        assert!(t0.elapsed() < Duration::from_secs(4), "wake did not block");
        t.join().unwrap();
        // The late wake may still be pending (it is not *lost* either
        // way); drain whatever is left, then a quiet wait must time out
        // instead of spinning on stale wake state.
        let _ = wait_ms(&poller, &mut events, 200);
        let t0 = Instant::now();
        wait_ms(&poller, &mut events, 120).unwrap();
        assert!(events.iter().all(|e| e.token != WAKE_TOKEN), "stale wake");
        assert!(t0.elapsed() >= Duration::from_millis(100));
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        wait_ms(&poller, &mut events, 2000).unwrap();
        let ev = events.iter().find(|e| e.token == 9).expect("peer closed");
        assert!(ev.readable || ev.hangup);
    }
}
