//! Crash-safe persistence: a segmented, CRC-32-framed write-ahead log
//! plus periodic full snapshots, so a restarted server comes back with
//! its resident set **and** each entry's measured miss cost — the state
//! that lets GD/BCL/DCL keep ranking a 60 ms origin fetch above a 1 ms
//! one across process death, instead of cold-starting into an origin
//! stampede.
//!
//! # On-disk layout
//!
//! Everything lives in one directory ([`PersistConfig::dir`]):
//!
//! ```text
//! LOCK                  exclusive-instance lock (pid + liveness port)
//! wal-<seq:016x>.log    WAL segments, strictly increasing seq
//! snap-<seq:016x>.snap  full snapshots; <seq> = first WAL segment NOT
//!                       folded into the snapshot
//! ```
//!
//! # Record framing
//!
//! A WAL segment (and a snapshot body, after its 8-byte magic) is a
//! stream of identically framed records:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = op(1) gen(8 LE) cost(8 LE) klen(4 LE) vlen(4 LE) key value
//! ```
//!
//! `op` is [`OP_SET`] or [`OP_DEL`]; `gen` is a monotonically increasing
//! generation stamped on every mutation; `cost` is the entry's miss cost
//! in microseconds exactly as charged to the cache (measured fetch
//! latency for read-through fills, [`SET_COST`](crate::server::SET_COST)
//! for client stores). The CRC is [`proto::crc32`] over the payload.
//!
//! # Torn-write truncation rule
//!
//! Decoding stops at the **first** record that does not fully verify —
//! a header that doesn't fit, a length beyond [`MAX_RECORD_LEN`], a
//! payload cut short, a CRC mismatch, or malformed payload internals.
//! Everything before that point is trusted; everything from it on is
//! discarded (and counted in `csr_serve_persist_truncated_records`).
//! A torn or bit-flipped tail is therefore *truncated, never served*:
//! recovery yields a prefix of the logged history, and no value with a
//! failing checksum can reach a client.
//!
//! # Snapshots
//!
//! A snapshot is taken every [`PersistConfig::snapshot_every`] appends
//! (and once more at graceful shutdown): the WAL rotates to a fresh
//! segment first, then [`CsrCache::export_entries`] clones the resident
//! `(key, value, cost)` triples out shard by shard (LRU first — the
//! replay-order hint), and the stream is written to a temp file,
//! fsynced, and atomically renamed into place. The directory itself is
//! then fsynced — a rename is atomic but not durable until its dir
//! entry is — and only after that are WAL segments older than the
//! snapshot's cover point pruned, so a crash (or power cut) at *any*
//! instant leaves either the old snapshot + full WAL or the new
//! snapshot + tail — never a gap.
//!
//! # Mutation/WAL atomicity
//!
//! For the explicit verbs (client `SET`/`DEL`) the cache mutation runs
//! *under the WAL append lock*, via [`Persistence::log_set_with`] /
//! [`Persistence::log_del_with`]: generation order, append order, and
//! cache-apply order are one total order, so replaying the log in file
//! order reconstructs exactly the state concurrent clients were
//! acknowledged against — a key the client saw `DELETED` can never be
//! resurrected by a `SET` that lost the cache race but won the log
//! race. Read-through fills append *before* their insert completes
//! (the insert happens inside the cache's single-flight slot), which
//! keeps the safe direction of that ordering: a fill that loses to a
//! concurrent DEL in the cache also sits before the DEL in the log, so
//! recovery errs toward re-fetching, never toward serving an
//! invalidated value.
//!
//! # Degraded mode
//!
//! A disk-full or I/O error on the append/snapshot path must not take
//! the serving path down with it: persistence flips into **degraded
//! serve-only mode** (gauge `csr_serve_persist_degraded` = 1), drops
//! subsequent appends, and periodically re-arms by trying to open a
//! fresh segment; the first successful re-arm takes a full snapshot to
//! resync the log with reality before appends resume.

use crate::proto::crc32;
use csr_cache::CsrCache;
use csr_obs::{Counter, Gauge, Registry};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A stored SET (insert with cost) record.
pub const OP_SET: u8 = 1;
/// A stored DEL (invalidation) record.
pub const OP_DEL: u8 = 2;

/// Hard ceiling on one framed record's payload length: an op byte, the
/// fixed fields, a maximal key and a maximal value, with headroom. A
/// length field beyond this is corruption by definition (nothing the
/// server can produce is this large), so the decoder can reject it
/// without attempting a giant allocation.
pub const MAX_RECORD_LEN: usize = 1 + 8 + 8 + 4 + 4 + 512 + (2 << 20);

/// Magic + version tag opening every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"CSRSNAP1";

/// Name of the exclusive-instance lock file.
const LOCK_FILE: &str = "LOCK";

/// How often a degraded log re-tries opening a fresh segment.
const REARM_EVERY: Duration = Duration::from_secs(2);

/// How many replayed records between cancellation checks (and recovery
/// throttle sleeps) during startup recovery.
const CANCEL_CHECK_EVERY: u64 = 256;

/// When to fsync the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every append: an acknowledged write is durable.
    Always,
    /// Fsync at most once per interval (data loss window = interval).
    Interval(Duration),
    /// Never fsync explicitly; durability is whatever the OS page cache
    /// grants. Survives process death (the kernel holds the pages), not
    /// machine death.
    #[default]
    Never,
}

impl FsyncPolicy {
    /// Parses the daemon flag spelling: `always` | `never` | `<ms>`
    /// (fsync at most once per that many milliseconds).
    #[must_use]
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            ms => ms
                .parse::<u64>()
                .ok()
                .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms))),
        }
    }

    /// The flag spelling, as reported by `STATS persist_fsync`.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_owned(),
            FsyncPolicy::Never => "never".to_owned(),
            FsyncPolicy::Interval(d) => d.as_millis().to_string(),
        }
    }
}

/// Configures the persistence layer (see the module docs).
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the lock file, WAL segments, and snapshots.
    /// Created if absent.
    pub dir: PathBuf,
    /// When to fsync the WAL.
    pub fsync: FsyncPolicy,
    /// Appends between automatic snapshots (0 disables periodic
    /// snapshots; one is still taken at graceful shutdown).
    pub snapshot_every: u64,
    /// Rotate the active WAL segment past this many bytes.
    pub segment_bytes: u64,
    /// Polled during recovery replay: `true` aborts recovery cleanly
    /// (the daemon wires its SIGTERM flag here, so a shutdown request
    /// during a long replay stops the process *before* the listener
    /// opens instead of leaving a half-recovered server serving).
    pub cancel: Option<fn() -> bool>,
    /// Testing aid: sleep this long per [`CANCEL_CHECK_EVERY`] replayed
    /// records, widening the recovery window so signal-timing tests are
    /// deterministic. Zero (the default) adds no work.
    pub recovery_throttle: Duration,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            dir: PathBuf::from("csr-data"),
            fsync: FsyncPolicy::Never,
            snapshot_every: 8192,
            segment_bytes: 4 << 20,
            cancel: None,
            recovery_throttle: Duration::ZERO,
        }
    }
}

/// One decoded WAL/snapshot record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// [`OP_SET`] or [`OP_DEL`].
    pub op: u8,
    /// Monotonic mutation generation.
    pub gen: u64,
    /// Miss cost in µs as charged to the cache (0 for DEL).
    pub cost: u64,
    /// The key.
    pub key: String,
    /// The value ([`OP_DEL`]: empty).
    pub value: Vec<u8>,
}

impl Record {
    /// Frames the record: length + CRC header, then the payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let klen = self.key.len();
        let vlen = self.value.len();
        let len = 1 + 8 + 8 + 4 + 4 + klen + vlen;
        let mut out = Vec::with_capacity(8 + len);
        let mut payload = Vec::with_capacity(len);
        payload.push(self.op);
        payload.extend_from_slice(&self.gen.to_le_bytes());
        payload.extend_from_slice(&self.cost.to_le_bytes());
        payload.extend_from_slice(&u32::try_from(klen).expect("key fits u32").to_le_bytes());
        payload.extend_from_slice(&u32::try_from(vlen).expect("value fits u32").to_le_bytes());
        payload.extend_from_slice(self.key.as_bytes());
        payload.extend_from_slice(&self.value);
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("record fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Why [`decode_record`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeEnd {
    /// Clean end of input: zero bytes remained.
    Eof,
    /// The bytes at the cursor are not a complete, CRC-valid record —
    /// the torn-write truncation point.
    Torn,
}

/// Decodes one framed record from `buf`, returning the record and the
/// number of bytes consumed, or the reason decoding must stop. Never
/// panics on arbitrary input, and never returns a record whose CRC did
/// not verify over a fully present payload.
pub fn decode_record(buf: &[u8]) -> Result<(Record, usize), DecodeEnd> {
    if buf.is_empty() {
        return Err(DecodeEnd::Eof);
    }
    if buf.len() < 8 {
        return Err(DecodeEnd::Torn);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let want = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    // The fixed payload fields alone take 25 bytes.
    if !(25..=MAX_RECORD_LEN).contains(&len) || buf.len() < 8 + len {
        return Err(DecodeEnd::Torn);
    }
    let payload = &buf[8..8 + len];
    if crc32(payload) != want {
        return Err(DecodeEnd::Torn);
    }
    let op = payload[0];
    if op != OP_SET && op != OP_DEL {
        return Err(DecodeEnd::Torn);
    }
    let gen = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
    let cost = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
    let klen = u32::from_le_bytes(payload[17..21].try_into().expect("4 bytes")) as usize;
    let vlen = u32::from_le_bytes(payload[21..25].try_into().expect("4 bytes")) as usize;
    if 25 + klen + vlen != len {
        return Err(DecodeEnd::Torn);
    }
    let Ok(key) = std::str::from_utf8(&payload[25..25 + klen]) else {
        return Err(DecodeEnd::Torn);
    };
    let record = Record {
        op,
        gen,
        cost,
        key: key.to_owned(),
        value: payload[25 + klen..].to_vec(),
    };
    Ok((record, 8 + len))
}

/// Decodes a whole byte stream into records, stopping at the first torn
/// record. Returns the records plus whether the stream ended cleanly.
#[must_use]
pub fn decode_stream(bytes: &[u8]) -> (Vec<Record>, DecodeEnd) {
    let mut records = Vec::new();
    let mut at = 0;
    loop {
        match decode_record(&bytes[at..]) {
            Ok((r, used)) => {
                records.push(r);
                at += used;
            }
            Err(end) => return (records, end),
        }
    }
}

/// Persistence metric families (`csr_serve_persist_*`).
pub(crate) struct PersistMetrics {
    pub(crate) appends: Arc<Counter>,
    pub(crate) fsyncs: Arc<Counter>,
    pub(crate) snapshots: Arc<Counter>,
    pub(crate) recovered_entries: Arc<Counter>,
    pub(crate) truncated_records: Arc<Counter>,
    pub(crate) degraded: Arc<Gauge>,
    pub(crate) errors: Arc<Counter>,
}

impl PersistMetrics {
    fn new(registry: &Registry) -> Self {
        PersistMetrics {
            appends: registry.counter(
                "csr_serve_persist_appends_total",
                "WAL records appended",
                &[],
            ),
            fsyncs: registry.counter(
                "csr_serve_persist_fsyncs_total",
                "WAL/snapshot fsync calls issued",
                &[],
            ),
            snapshots: registry.counter(
                "csr_serve_persist_snapshots_total",
                "Full snapshots written",
                &[],
            ),
            recovered_entries: registry.counter(
                "csr_serve_persist_recovered_entries",
                "Entries re-inserted into the cache by startup recovery",
                &[],
            ),
            truncated_records: registry.counter(
                "csr_serve_persist_truncated_records_total",
                "Torn or CRC-invalid records truncated (never served)",
                &[],
            ),
            degraded: registry.gauge(
                "csr_serve_persist_degraded",
                "1 while persistence is in degraded serve-only mode",
                &[],
            ),
            errors: registry.counter(
                "csr_serve_persist_errors_total",
                "I/O errors on the persistence path (each may flip degraded mode)",
                &[],
            ),
        }
    }
}

/// The mutable half of the WAL writer, serialized by one mutex: append
/// order *is* the authoritative mutation order the log claims to record.
struct WalInner {
    /// The active segment's buffered writer (`None` while degraded).
    file: Option<BufWriter<File>>,
    /// The active segment's sequence number.
    seg_seq: u64,
    /// Bytes written to the active segment so far.
    seg_bytes: u64,
    /// Appends since the last snapshot (drives periodic snapshots).
    appends_since_snapshot: u64,
    /// Last explicit fsync (drives [`FsyncPolicy::Interval`]).
    last_fsync: Instant,
    /// Last re-arm attempt while degraded.
    last_rearm: Instant,
    /// Set while a degraded re-arm owes the log a resync snapshot.
    resync_needed: bool,
}

/// What startup recovery found.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryReport {
    /// Entries resident after replay (snapshot + WAL, net of DELs).
    pub recovered_entries: u64,
    /// Records replayed from WAL segments (SETs and DELs).
    pub wal_records: u64,
    /// Torn/CRC-invalid records truncated across snapshot + WAL.
    pub truncated_records: u64,
    /// Snapshot files that failed validation and were skipped.
    pub skipped_snapshots: u64,
}

/// The persistence engine: exclusive-instance lock, WAL writer,
/// snapshot writer, and startup recovery. One per server.
pub struct Persistence {
    config: PersistConfig,
    metrics: PersistMetrics,
    wal: Mutex<WalInner>,
    /// Monotonic generation stamp for the next mutation.
    next_gen: AtomicU64,
    /// Mirror of the degraded gauge, readable without the lock.
    degraded: AtomicBool,
    /// Guards against concurrent / re-entrant snapshots.
    snapshotting: AtomicBool,
    /// Liveness beacon backing the lock file: held (never accepted) for
    /// the process lifetime; a connect() that succeeds proves the lock
    /// holder is alive, and the kernel closes it on *any* death,
    /// including SIGKILL — so stale locks self-release.
    _beacon: TcpListener,
    /// The `LOCK` file handle, held open with an exclusive OS lock
    /// (`File::try_lock`) for the process lifetime: the *atomic* claim
    /// that closes the read-then-write race two simultaneously starting
    /// daemons would otherwise have. The kernel releases it on any
    /// death, including SIGKILL.
    _lock: File,
}

/// The error a second `csr-serve` gets when the persistence dir is
/// already locked by a live instance.
fn lock_held_error(dir: &Path, holder: &str) -> io::Error {
    io::Error::new(
        ErrorKind::AddrInUse,
        format!(
            "persistence dir {} is locked by another csr-serve ({holder}); \
             refusing to interleave writes into one WAL",
            dir.display()
        ),
    )
}

/// Fsyncs `dir` itself: a file's fsync covers its data, not its
/// directory entry, so newly created or renamed names need this to be
/// durable across power loss. No-op off Unix (directories cannot be
/// opened for syncing there; the supported targets are Unix).
fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:016x}.log"))
}

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:016x}.snap"))
}

/// Lists `(seq, path)` for every well-named file with `prefix`/`suffix`
/// in `dir`, sorted by seq.
fn list_seqs(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else {
            continue;
        };
        let Some(hex) = rest.strip_suffix(suffix) else {
            continue;
        };
        if let Ok(seq) = u64::from_str_radix(hex, 16) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable();
    Ok(out)
}

impl Persistence {
    /// Opens the persistence dir: creates it if absent, takes the
    /// exclusive-instance lock, and prepares the WAL writer (recovery is
    /// a separate step — [`recover_into`](Self::recover_into) — so the
    /// caller controls when replay happens relative to binding).
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, if another live
    /// `csr-serve` holds the lock, or if the first WAL segment cannot be
    /// opened.
    pub(crate) fn open(config: PersistConfig, registry: &Registry) -> io::Result<Persistence> {
        fs::create_dir_all(&config.dir)?;
        let (lock, beacon) = Self::acquire_lock(&config.dir)?;
        let metrics = PersistMetrics::new(registry);
        let next_seg = list_seqs(&config.dir, "wal-", ".log")?
            .last()
            .map_or(0, |(seq, _)| seq + 1);
        let now = Instant::now();
        let persist = Persistence {
            config,
            metrics,
            wal: Mutex::new(WalInner {
                file: None,
                seg_seq: next_seg,
                seg_bytes: 0,
                appends_since_snapshot: 0,
                last_fsync: now,
                last_rearm: now,
                resync_needed: false,
            }),
            next_gen: AtomicU64::new(1),
            degraded: AtomicBool::new(false),
            snapshotting: AtomicBool::new(false),
            _beacon: beacon,
            _lock: lock,
        };
        Ok(persist)
    }

    /// Takes the exclusive lock. The atomic claim is an OS file lock
    /// ([`File::try_lock`]) on `LOCK`, so two daemons racing through
    /// startup cannot both win: the kernel grants exactly one, and
    /// releases it on any death (including SIGKILL) — no stale-lock
    /// janitor. The file's contents name a TCP liveness beacon as
    /// defense in depth for filesystems where the lock is advisory
    /// theater (e.g. some network mounts): even after winning the flock,
    /// a connect() that reaches the previous holder's beacon vetoes the
    /// claim.
    fn acquire_lock(dir: &Path) -> io::Result<(File, TcpListener)> {
        let lock_path = dir.join(LOCK_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&lock_path)?;
        match file.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                let holder = fs::read_to_string(&lock_path).unwrap_or_default();
                return Err(lock_held_error(dir, holder.trim()));
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(e),
        }
        if let Ok(contents) = fs::read_to_string(&lock_path) {
            let contents = contents.trim().to_owned();
            if let Some(port) = contents
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("port="))
                .and_then(|p| p.parse::<u16>().ok())
            {
                let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
                if TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_ok() {
                    return Err(lock_held_error(dir, &contents));
                }
            }
        }
        let beacon = TcpListener::bind("127.0.0.1:0")?;
        let port = beacon.local_addr()?.port();
        // We hold the lock: rewriting in place races with nobody.
        file.set_len(0)?;
        writeln!(file, "pid={} port={port}", std::process::id())?;
        file.sync_all()?;
        Ok((file, beacon))
    }

    /// The configured fsync policy (for `STATS`).
    pub(crate) fn fsync_policy(&self) -> FsyncPolicy {
        self.config.fsync
    }

    pub(crate) fn metrics(&self) -> &PersistMetrics {
        &self.metrics
    }

    /// Whether persistence is currently degraded to serve-only mode.
    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Replays the newest valid snapshot plus the WAL tail into `cache`
    /// via `insert_with_cost`/`remove`, truncating at the first torn or
    /// CRC-invalid record. Returns what was recovered; on
    /// [`PersistConfig::cancel`] firing mid-replay, returns
    /// `ErrorKind::Interrupted` (the caller must not open its listener).
    pub(crate) fn recover_into(
        &self,
        cache: &CsrCache<String, crate::server::Bytes>,
    ) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let mut max_gen = 0u64;
        let mut replayed = 0u64;
        let dir = &self.config.dir;

        let check_cancel = |replayed: &mut u64| -> io::Result<()> {
            *replayed += 1;
            if !(*replayed).is_multiple_of(CANCEL_CHECK_EVERY) {
                return Ok(());
            }
            if !self.config.recovery_throttle.is_zero() {
                std::thread::sleep(self.config.recovery_throttle);
            }
            if self.config.cancel.is_some_and(|cancelled| cancelled()) {
                return Err(io::Error::new(
                    ErrorKind::Interrupted,
                    "shutdown requested during recovery replay",
                ));
            }
            Ok(())
        };

        // Newest snapshot whose magic and every record verify; an
        // invalid one is skipped entirely (a crash mid-rename can't
        // produce one — rename is atomic — but a torn disk can).
        let mut snapshots = list_seqs(dir, "snap-", ".snap")?;
        let mut wal_from = 0u64;
        while let Some((seq, path)) = snapshots.pop() {
            let bytes = fs::read(&path)?;
            if bytes.len() < 8 || &bytes[..8] != SNAP_MAGIC {
                report.skipped_snapshots += 1;
                continue;
            }
            let (records, end) = decode_stream(&bytes[8..]);
            if end == DecodeEnd::Torn {
                // A snapshot is all-or-nothing: a torn record anywhere
                // means the file cannot be trusted as a full resident
                // set, so fall back to the previous one.
                report.skipped_snapshots += 1;
                report.truncated_records += 1;
                continue;
            }
            for r in &records {
                if r.op == OP_SET {
                    cache.insert_with_cost(
                        r.key.clone(),
                        crate::server::Bytes::from(r.value.clone()),
                        r.cost,
                    );
                }
                max_gen = max_gen.max(r.gen);
                check_cancel(&mut replayed)?;
            }
            wal_from = seq;
            break;
        }

        // WAL tail: every segment the snapshot does not cover, in seq
        // order, stopping at the first torn record anywhere (records
        // past a tear are untrusted — the prefix rule).
        'segments: for (seq, path) in list_seqs(dir, "wal-", ".log")? {
            if seq < wal_from {
                continue;
            }
            let bytes = fs::read(&path)?;
            let mut at = 0usize;
            loop {
                match decode_record(&bytes[at..]) {
                    Ok((r, used)) => {
                        at += used;
                        match r.op {
                            OP_SET => {
                                cache.insert_with_cost(
                                    r.key.clone(),
                                    crate::server::Bytes::from(r.value.clone()),
                                    r.cost,
                                );
                            }
                            _ => {
                                cache.remove(&r.key);
                            }
                        }
                        max_gen = max_gen.max(r.gen);
                        report.wal_records += 1;
                        check_cancel(&mut replayed)?;
                    }
                    Err(DecodeEnd::Eof) => break,
                    Err(DecodeEnd::Torn) => {
                        report.truncated_records += 1;
                        break 'segments;
                    }
                }
            }
        }

        report.recovered_entries = cache.len() as u64;
        self.next_gen.store(max_gen + 1, Ordering::Relaxed);
        self.metrics.recovered_entries.add(report.recovered_entries);
        self.metrics.truncated_records.add(report.truncated_records);
        Ok(report)
    }

    /// Logs a stored entry (`cost` exactly as charged to the cache).
    /// Returns `true` when a periodic snapshot is now due — the caller
    /// then invokes [`snapshot`](Self::snapshot) outside the append
    /// lock.
    pub(crate) fn log_set(&self, key: &str, value: &[u8], cost: u64) -> bool {
        self.log_set_with(key, value, cost, || ()).1
    }

    /// Logs a stored entry and runs `apply` (the cache mutation) while
    /// still holding the WAL append lock, so log order and cache-apply
    /// order cannot diverge for this key (see the module docs'
    /// atomicity section). `apply` runs even when the append was
    /// dropped (degraded mode) — serving always proceeds.
    pub(crate) fn log_set_with<R>(
        &self,
        key: &str,
        value: &[u8],
        cost: u64,
        apply: impl FnOnce() -> R,
    ) -> (R, bool) {
        self.append_with(
            Record {
                op: OP_SET,
                gen: 0,
                cost,
                key: key.to_owned(),
                value: value.to_vec(),
            },
            apply,
        )
    }

    /// Logs an invalidation without a cache mutation (tests only; the
    /// server always pairs the DEL with its remove via
    /// [`log_del_with`](Self::log_del_with)).
    #[cfg(test)]
    pub(crate) fn log_del(&self, key: &str) -> bool {
        self.log_del_with(key, || ()).1
    }

    /// Logs an invalidation, running `apply` (the cache removal) under
    /// the WAL lock — the DEL analogue of
    /// [`log_set_with`](Self::log_set_with), with the same snapshot-due
    /// contract. DELs are logged *unconditionally* — even for a key
    /// that is not resident — because the WAL tail may hold an earlier
    /// SET for it (e.g. a read-through fill that was since evicted);
    /// without the tombstone, replay would resurrect a value the client
    /// explicitly invalidated.
    pub(crate) fn log_del_with<R>(&self, key: &str, apply: impl FnOnce() -> R) -> (R, bool) {
        self.append_with(
            Record {
                op: OP_DEL,
                gen: 0,
                cost: 0,
                key: key.to_owned(),
                value: Vec::new(),
            },
            apply,
        )
    }

    /// Appends one record under the WAL lock, honoring the fsync policy,
    /// rotating full segments, degrading (not crashing) on I/O errors.
    /// `apply` runs under the same lock, after the append, on every
    /// path — the record's generation is allocated under the lock too,
    /// so generation order, append order, and apply order coincide.
    fn append_with<R>(&self, mut record: Record, apply: impl FnOnce() -> R) -> (R, bool) {
        let mut inner = self.wal.lock().expect("wal lock poisoned");
        record.gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        if self.degraded.load(Ordering::Relaxed) && !self.try_rearm(&mut inner) {
            return (apply(), false);
        }
        match self.append_locked(&mut inner, &record) {
            Ok(()) => {
                self.metrics.appends.inc();
                inner.appends_since_snapshot += 1;
                let due = self.config.snapshot_every > 0
                    && inner.appends_since_snapshot >= self.config.snapshot_every;
                let resync = std::mem::take(&mut inner.resync_needed);
                (apply(), due || resync)
            }
            Err(e) => {
                self.enter_degraded(&mut inner, &e);
                (apply(), false)
            }
        }
    }

    fn append_locked(&self, inner: &mut WalInner, record: &Record) -> io::Result<()> {
        if inner.file.is_none() || inner.seg_bytes >= self.config.segment_bytes {
            self.open_segment(inner)?;
        }
        let bytes = record.encode();
        let file = inner.file.as_mut().expect("segment just opened");
        file.write_all(&bytes)?;
        inner.seg_bytes += bytes.len() as u64;
        match self.config.fsync {
            FsyncPolicy::Always => {
                file.flush()?;
                file.get_ref().sync_data()?;
                self.metrics.fsyncs.inc();
                inner.last_fsync = Instant::now();
            }
            FsyncPolicy::Interval(every) => {
                if inner.last_fsync.elapsed() >= every {
                    file.flush()?;
                    file.get_ref().sync_data()?;
                    self.metrics.fsyncs.inc();
                    inner.last_fsync = Instant::now();
                }
            }
            FsyncPolicy::Never => {
                // Flush the userspace buffer so a SIGKILL loses at most
                // what the kernel hasn't written, not what *we* haven't.
                file.flush()?;
            }
        }
        Ok(())
    }

    /// Opens (or rotates to) a fresh WAL segment.
    fn open_segment(&self, inner: &mut WalInner) -> io::Result<()> {
        if let Some(mut old) = inner.file.take() {
            inner.seg_seq += 1;
            // Flush explicitly: BufWriter::drop swallows a failed final
            // write, which would silently lose the buffered tail (under
            // `--fsync <ms>`/`never`) without ever entering degraded
            // mode. The error must count and degrade like any other.
            old.flush()?;
        }
        let path = seg_path(&self.config.dir, inner.seg_seq);
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        inner.file = Some(BufWriter::new(file));
        inner.seg_bytes = 0;
        if self.config.fsync == FsyncPolicy::Always {
            // `always` promises an acknowledged write is durable — which
            // includes the *name* of the segment holding it: fsync the
            // directory so the new entry survives power loss.
            fsync_dir(&self.config.dir)?;
            self.metrics.fsyncs.inc();
        }
        Ok(())
    }

    /// Flips into degraded serve-only mode: the append that failed is
    /// dropped, the segment handle is closed, and the metric raised.
    fn enter_degraded(&self, inner: &mut WalInner, err: &io::Error) {
        inner.file = None;
        inner.last_rearm = Instant::now();
        self.metrics.errors.inc();
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.metrics.degraded.set(1);
            eprintln!(
                "csr-serve: persistence degraded to serve-only mode: {err} \
                 (re-arming every {REARM_EVERY:?})"
            );
        }
    }

    /// While degraded, periodically try opening a fresh segment; on
    /// success, clear the flag and owe the log a resync snapshot (the
    /// appends dropped while degraded are gone — only a full snapshot
    /// re-establishes ground truth).
    fn try_rearm(&self, inner: &mut WalInner) -> bool {
        if inner.last_rearm.elapsed() < REARM_EVERY {
            return false;
        }
        inner.last_rearm = Instant::now();
        inner.seg_seq += 1;
        match self.open_segment(inner) {
            Ok(()) => {
                self.degraded.store(false, Ordering::Relaxed);
                self.metrics.degraded.set(0);
                inner.resync_needed = true;
                eprintln!("csr-serve: persistence re-armed; snapshotting to resync");
                true
            }
            Err(_) => false,
        }
    }

    /// Takes a full snapshot: rotate the WAL, export the cache, write
    /// tmp + fsync + rename, then prune covered WAL segments and older
    /// snapshots. Concurrent calls coalesce (one runs, others return).
    pub(crate) fn snapshot(&self, cache: &CsrCache<String, crate::server::Bytes>) {
        if self.snapshotting.swap(true, Ordering::Acquire) {
            return;
        }
        let result = self.snapshot_inner(cache);
        self.snapshotting.store(false, Ordering::Release);
        if let Err(e) = result {
            let mut inner = self.wal.lock().expect("wal lock poisoned");
            self.enter_degraded(&mut inner, &e);
        }
    }

    fn snapshot_inner(&self, cache: &CsrCache<String, crate::server::Bytes>) -> io::Result<()> {
        // Rotate first: every record logged from here on lands in a
        // segment the snapshot does NOT cover, so the cover point
        // (`cover` = first uncovered segment) is exact even while
        // appends race with the export below.
        let cover = {
            let mut inner = self.wal.lock().expect("wal lock poisoned");
            self.open_segment(&mut inner)?;
            inner.appends_since_snapshot = 0;
            inner.seg_seq
        };
        let dir = &self.config.dir;
        let tmp = dir.join("snap.tmp");
        {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            w.write_all(SNAP_MAGIC)?;
            // Shard-by-shard, LRU-first: replaying in file order through
            // insert_with_cost reconstructs recency and policy state.
            for (key, value, cost) in cache.export_entries() {
                let record = Record {
                    op: OP_SET,
                    gen: self.next_gen.load(Ordering::Relaxed),
                    cost,
                    key,
                    value: value.to_vec(),
                };
                w.write_all(&record.encode())?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
            self.metrics.fsyncs.inc();
        }
        fs::rename(&tmp, snap_path(dir, cover))?;
        // The rename is atomic but not durable until the directory entry
        // is synced; prune only after that, or a power cut could take
        // both the new snapshot and the WAL segments it covered.
        fsync_dir(dir)?;
        self.metrics.fsyncs.inc();
        self.metrics.snapshots.inc();
        // Prune: WAL segments fully folded into the snapshot, and every
        // older snapshot (the new one supersedes them).
        for (seq, path) in list_seqs(dir, "wal-", ".log")? {
            if seq < cover {
                let _ = fs::remove_file(path);
            }
        }
        for (seq, path) in list_seqs(dir, "snap-", ".snap")? {
            if seq < cover {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Graceful-shutdown hook: one final snapshot (which also prunes the
    /// WAL) so the next start recovers from a compact, fsynced image.
    pub(crate) fn finish(&self, cache: &CsrCache<String, crate::server::Bytes>) {
        self.snapshot(cache);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Bytes;

    /// Reads a whole file (mirroring recovery's view of the bytes).
    fn read_file(path: &Path) -> Vec<u8> {
        fs::read(path).expect("read file")
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "csr-persist-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn cache(capacity: usize) -> CsrCache<String, Bytes> {
        CsrCache::builder(capacity).shards(1).build()
    }

    fn open(dir: &Path) -> (Persistence, Arc<Registry>) {
        let registry = Arc::new(Registry::new());
        let p = Persistence::open(
            PersistConfig {
                dir: dir.to_path_buf(),
                fsync: FsyncPolicy::Never,
                snapshot_every: 0,
                ..PersistConfig::default()
            },
            &registry,
        )
        .expect("open persistence");
        (p, registry)
    }

    #[test]
    fn record_roundtrip_and_torn_prefixes() {
        let r = Record {
            op: OP_SET,
            gen: 42,
            cost: 1234,
            key: "key:1".to_owned(),
            value: b"hello".to_vec(),
        };
        let bytes = r.encode();
        let (back, used) = decode_record(&bytes).expect("roundtrip");
        assert_eq!(back, r);
        assert_eq!(used, bytes.len());
        // Every strict prefix is torn (or EOF for the empty one).
        for cut in 1..bytes.len() {
            assert_eq!(
                decode_record(&bytes[..cut]),
                Err(DecodeEnd::Torn),
                "prefix of {cut} bytes must read as torn"
            );
        }
        assert_eq!(decode_record(&[]), Err(DecodeEnd::Eof));
        // Any single bit flip breaks the CRC (or the framing).
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            assert!(
                decode_record(&bad).is_err() || bad[byte] == bytes[byte],
                "bit flip at byte {byte} must not verify"
            );
        }
    }

    #[test]
    fn wal_roundtrip_recovers_entries_and_costs() {
        let dir = tmpdir("roundtrip");
        {
            let (p, _) = open(&dir);
            assert!(!p.log_set("a", b"va", 500));
            assert!(!p.log_set("b", b"vb", 7));
            assert!(!p.log_del("b"));
            assert!(!p.log_set("c", b"vc", 9000));
        }
        let (p, _) = open(&dir);
        let c = cache(8);
        let report = p.recover_into(&c).expect("recover");
        assert_eq!(report.recovered_entries, 2);
        assert_eq!(report.wal_records, 4);
        assert_eq!(report.truncated_records, 0);
        assert_eq!(c.get(&"a".to_owned()).as_deref(), Some(&b"va"[..]));
        assert!(c.get(&"b".to_owned()).is_none(), "DEL must replay");
        let entries = c.export_entries();
        let cost_of = |k: &str| {
            entries
                .iter()
                .find(|(key, ..)| key == k)
                .map(|&(.., cost)| cost)
        };
        assert_eq!(cost_of("a"), Some(500), "measured cost survives restart");
        assert_eq!(cost_of("c"), Some(9000));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_never_serves() {
        let dir = tmpdir("torn");
        {
            let (p, _) = open(&dir);
            p.log_set("keep", b"intact", 5);
            p.log_set("torn", b"half-written-value", 5);
        }
        // Tear the last record: chop 4 bytes off the segment tail.
        let (_, seg) = list_seqs(&dir, "wal-", ".log").expect("list")[0].clone();
        let bytes = read_file(&seg);
        fs::write(&seg, &bytes[..bytes.len() - 4]).expect("truncate");
        let (p, _) = open(&dir);
        let c = cache(8);
        let report = p.recover_into(&c).expect("recover");
        assert_eq!(report.truncated_records, 1);
        assert_eq!(c.get(&"keep".to_owned()).as_deref(), Some(&b"intact"[..]));
        assert!(
            c.get(&"torn".to_owned()).is_none(),
            "a torn record must never be served"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_truncates_at_the_flipped_record() {
        let dir = tmpdir("flip");
        {
            let (p, _) = open(&dir);
            p.log_set("first", b"ok", 1);
            p.log_set("second", b"corrupted-on-disk", 1);
            p.log_set("third", b"after-the-tear", 1);
        }
        let (_, seg) = list_seqs(&dir, "wal-", ".log").expect("list")[0].clone();
        let mut bytes = read_file(&seg);
        // Flip a bit inside the second record's value bytes.
        let first_len = decode_record(&bytes).expect("first").1;
        let at = first_len + 30;
        bytes[at] ^= 0x01;
        fs::write(&seg, &bytes).expect("rewrite");
        let (p, _) = open(&dir);
        let c = cache(8);
        let report = p.recover_into(&c).expect("recover");
        assert_eq!(report.truncated_records, 1);
        assert!(c.get(&"first".to_owned()).is_some());
        assert!(c.get(&"second".to_owned()).is_none(), "flipped: not served");
        assert!(
            c.get(&"third".to_owned()).is_none(),
            "records after the tear are untrusted (prefix rule)"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_prunes_wal_and_recovers_alone() {
        let dir = tmpdir("snap");
        {
            let (p, _) = open(&dir);
            p.log_set("x", b"vx", 111);
            p.log_set("y", b"vy", 222);
            let c = cache(8);
            c.insert_with_cost("x".to_owned(), Bytes::from(&b"vx"[..]), 111);
            c.insert_with_cost("y".to_owned(), Bytes::from(&b"vy"[..]), 222);
            p.snapshot(&c);
            // Post-snapshot mutations land in the fresh WAL tail.
            p.log_del("y");
            let walls = list_seqs(&dir, "wal-", ".log").expect("list");
            assert_eq!(walls.len(), 1, "covered segments pruned: {walls:?}");
            assert_eq!(list_seqs(&dir, "snap-", ".snap").expect("list").len(), 1);
        }
        let (p, _) = open(&dir);
        let c = cache(8);
        let report = p.recover_into(&c).expect("recover");
        assert_eq!(report.recovered_entries, 1);
        assert_eq!(c.get(&"x".to_owned()).as_deref(), Some(&b"vx"[..]));
        assert!(
            c.get(&"y".to_owned()).is_none(),
            "post-snapshot DEL replays"
        );
        let entries = c.export_entries();
        assert_eq!(entries[0].2, 111, "snapshot preserves the measured cost");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_skipped_for_the_wal() {
        let dir = tmpdir("badsnap");
        {
            let (p, _) = open(&dir);
            p.log_set("k", b"from-wal", 3);
        }
        // A snapshot claiming to cover nothing, with a garbage body: it
        // must be skipped whole, not half-applied.
        fs::write(snap_path(&dir, 0), b"CSRSNAP1garbage-not-a-record").expect("write");
        let (p, _) = open(&dir);
        let c = cache(8);
        let report = p.recover_into(&c).expect("recover");
        assert_eq!(report.skipped_snapshots, 1);
        assert_eq!(
            c.get(&"k".to_owned()).as_deref(),
            Some(&b"from-wal"[..]),
            "recovery falls back to the WAL"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_open_refuses_while_first_lives() {
        let dir = tmpdir("lock");
        let (first, _) = open(&dir);
        let registry = Arc::new(Registry::new());
        let second = Persistence::open(
            PersistConfig {
                dir: dir.clone(),
                ..PersistConfig::default()
            },
            &registry,
        );
        let err = match second {
            Ok(_) => panic!("second instance must refuse"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("locked"), "got: {err}");
        drop(first); // beacon closes: the lock self-releases
        let third = Persistence::open(
            PersistConfig {
                dir: dir.clone(),
                ..PersistConfig::default()
            },
            &registry,
        );
        assert!(third.is_ok(), "stale lock must be reclaimed");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_flag_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("250"),
            Some(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Always.name(), "always");
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(250)).name(),
            "250"
        );
    }

    #[test]
    fn segment_rotation_keeps_all_records() {
        let dir = tmpdir("rotate");
        let registry = Arc::new(Registry::new());
        {
            let p = Persistence::open(
                PersistConfig {
                    dir: dir.clone(),
                    segment_bytes: 256, // force several rotations
                    snapshot_every: 0,
                    ..PersistConfig::default()
                },
                &registry,
            )
            .expect("open");
            for i in 0..64u64 {
                p.log_set(&format!("key:{i}"), b"0123456789abcdef", i + 1);
            }
        }
        assert!(
            list_seqs(&dir, "wal-", ".log").expect("list").len() > 1,
            "rotation must have produced multiple segments"
        );
        let (p, _) = open(&dir);
        let c = cache(128);
        let report = p.recover_into(&c).expect("recover");
        assert_eq!(report.recovered_entries, 64);
        for i in 0..64 {
            assert!(c.get(&format!("key:{i}")).is_some(), "key:{i} lost");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degraded_mode_drops_appends_instead_of_crashing() {
        let dir = tmpdir("degraded");
        let (p, _) = open(&dir);
        p.log_set("before", b"v", 1);
        // Sabotage: replace the persistence dir path's segment with a
        // directory so the next rotation/open fails. Easiest reliable
        // fault: make the dir read-only is platform-dependent; instead,
        // force a failure by pointing the active segment at a path that
        // is a directory.
        {
            let mut inner = p.wal.lock().expect("lock");
            inner.file = None;
            inner.seg_seq += 1;
            let clash = seg_path(&dir, inner.seg_seq);
            fs::create_dir_all(&clash).expect("clash dir");
        }
        assert!(!p.log_set("during", b"v", 1), "append fails into degraded");
        assert!(p.is_degraded());
        assert_eq!(p.metrics().degraded.get(), 1);
        // Serving continues (nothing panicked); further appends drop
        // silently until the re-arm interval elapses.
        assert!(!p.log_set("during2", b"v", 1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_determinism_same_ops_same_cut_identical_state() {
        // Satellite: same seed + same kill point ⇒ byte-identical
        // recovered (key, value, cost) tuples.
        use mem_trace::rng::SplitMix64;
        let run = |tag: &str| -> Vec<u8> {
            let dir = tmpdir(tag);
            {
                let (p, _) = open(&dir);
                let mut rng = SplitMix64::new(0xdead_cafe);
                for i in 0..512u64 {
                    let key = format!("key:{}", rng.below(128));
                    if rng.chance(0.15) {
                        p.log_del(&key);
                    } else {
                        p.log_set(&key, format!("value-{i}").as_bytes(), 1 + rng.below(10_000));
                    }
                }
            }
            // The "kill point": truncate the newest segment to a fixed
            // byte offset, exactly as a torn crash would.
            let segs = list_seqs(&dir, "wal-", ".log").expect("list");
            let (_, last) = segs.last().expect("segment").clone();
            let bytes = read_file(&last);
            fs::write(&last, &bytes[..bytes.len() * 2 / 3]).expect("cut");
            let (p, _) = open(&dir);
            let c = cache(256);
            p.recover_into(&c).expect("recover");
            let mut entries: Vec<(String, Vec<u8>, u64)> = c
                .export_entries()
                .into_iter()
                .map(|(k, v, cost)| (k, v.to_vec(), cost))
                .collect();
            entries.sort();
            fs::remove_dir_all(&dir).ok();
            let mut blob = Vec::new();
            for (k, v, cost) in entries {
                blob.extend_from_slice(k.as_bytes());
                blob.push(0);
                blob.extend_from_slice(&v);
                blob.push(0);
                blob.extend_from_slice(&cost.to_le_bytes());
            }
            blob
        };
        assert_eq!(
            run("det-a"),
            run("det-b"),
            "identical op stream + identical cut must recover byte-identical state"
        );
    }
}
