//! The TCP cache server over a [`CsrCache`], speaking the text protocol
//! of [`crate::proto`], with two interchangeable I/O engines selected by
//! [`ServerConfig::io`].
//!
//! # Connection model
//!
//! **Blocking** (the default): a fixed pool of
//! [`workers`](ServerConfig::workers) threads each owns one connection at
//! a time; accepted sockets queue on a bounded channel of depth
//! [`backlog`](ServerConfig::backlog). When every worker is busy *and*
//! the queue is full, new connections are **load-shed**: the server
//! replies `SERVER_BUSY` and closes immediately, converting overload into
//! a fast, explicit signal instead of an ever-growing accept queue whose
//! tail latency collapses for everyone.
//!
//! **Event** ([`IoMode::Event`]): [`crate::reactor`] — a small set of
//! reactor threads multiplexes *all* connections over epoll/kqueue
//! ([`crate::poller`]), parsing requests nonblockingly and handing
//! execution (which may block on the origin) to an executor pool of
//! [`workers`](ServerConfig::workers) threads. Overload is shed with the
//! same `SERVER_BUSY` reply once [`max_conns`](ServerConfig::max_conns)
//! connections are resident. Wire behaviour is identical — the parity
//! suites run every socket test against both engines.
//!
//! # Measured miss costs
//!
//! `GET` is read-through: a miss fetches from the [`Backing`] origin
//! through the cache's single-flight
//! [`try_get_or_insert_with`](CsrCache::try_get_or_insert_with), and the
//! wall-clock duration of that fetch — measured, in microseconds — is
//! charged as the entry's miss cost. The configured replacement policy
//! (DCL by default) therefore reserves exactly the entries that are
//! *observably* expensive to lose, the production analogue of the paper's
//! static cost ratios.
//!
//! # Fault tolerance
//!
//! The origin is fallible ([`Backing::try_fetch`]), so `serve` wraps it
//! in the [`crate::resilience`] middleware stack (deadline → breaker →
//! retry, per [`ServerConfig::resilience`]) before the cache ever sees
//! it. When a fetch still fails after all of that, the server degrades
//! instead of lying: if a previously fetched copy of the key exists in
//! the bounded *stale store*, it is served with the `STALE` flag (and
//! re-inserted into the cache at its last successful measured cost);
//! otherwise the client gets the recoverable `ORIGIN_ERROR` reply. An
//! origin failure is never conflated with "the origin has no entry" —
//! the single-flight layer in csr-cache propagates errors to coalesced
//! waiters so they retry rather than caching the failure.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (or dropping the handle) runs the graceful
//! sequence: stop accepting, cut idle connections' read side, let workers
//! finish their in-flight requests, then flush the final metrics report.

use crate::backing::{Backing, BackingError};
use crate::cluster::{ClusterNode, ClusterServerMetrics, PeerConfig, PeerRouter};
use crate::persist::{PersistConfig, Persistence};
use crate::poller::Poller;
use crate::proto::{self, ProtoError, Request};
#[cfg(unix)]
use crate::reactor;
use crate::resilience::{OriginMetrics, ResilienceConfig, ResilientBacking};
use csr_cache::{CacheStats, CsrCache, Policy, SelectorConfig};
use csr_obs::trace::{arm_events, take_events};
use csr_obs::{
    Counter, Gauge, Histogram, Registry, ReportFormat, Reporter, RequestTrace, TraceConfig,
    TraceContext, Tracer,
};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The cache's value type: cheaply clonable bytes (a `get` clones the
/// value out of the shard lock; an `Arc` makes that a refcount bump).
pub type Bytes = Arc<[u8]>;

/// The miss cost charged for values stored by an explicit client `SET`:
/// the server never measured a fetch for them, so they enter at the floor
/// and earn a real (measured) cost if a later read-through refill pays
/// one.
pub const SET_COST: u64 = 1;

/// Ceiling for a measured fetch/forward latency converted to a µs cost —
/// the counterpart of the ≥ 1 µs floor. A clock anomaly (suspend/resume,
/// a stepped clock, a u128→u64 overflow) must not mint an entry whose
/// cost is effectively infinite: GD/BCL/DCL would then never evict it.
/// 60 s is far beyond any deadline the resilience stack allows a real
/// fetch, so no honest measurement is distorted by the clamp.
pub const MAX_MEASURED_COST_US: u64 = 60_000_000;

/// Converts a measured elapsed time to the µs cost charged to the cache,
/// clamped to `[1, MAX_MEASURED_COST_US]` (see [`MAX_MEASURED_COST_US`]).
pub(crate) fn measured_cost_us(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros())
        .unwrap_or(u64::MAX)
        .clamp(1, MAX_MEASURED_COST_US)
}

/// Which I/O engine drives connections (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Thread-per-connection worker pool (the original engine).
    #[default]
    Blocking,
    /// Nonblocking reactor core over epoll/kqueue (the C10K+ engine).
    Event,
}

impl IoMode {
    /// Parses the daemon/test flag spelling (`blocking` | `event`).
    #[must_use]
    pub fn parse(s: &str) -> Option<IoMode> {
        match s {
            "blocking" => Some(IoMode::Blocking),
            "event" => Some(IoMode::Event),
            _ => None,
        }
    }

    /// The flag spelling, as reported by `STATS io_mode`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoMode::Blocking => "blocking",
            IoMode::Event => "event",
        }
    }
}

/// Periodic metrics dumping to a file (via [`Reporter`]).
#[derive(Debug, Clone)]
pub struct ReportSink {
    /// File the reporter (re)writes.
    pub path: PathBuf,
    /// Dump interval.
    pub interval: Duration,
    /// Dump format.
    pub format: ReportFormat,
}

/// Server configuration (see [`serve`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:11311` (port 0 picks a free port).
    pub addr: String,
    /// Cache capacity in entries.
    pub capacity: usize,
    /// Shard count override (`None`: one per hardware thread).
    pub shards: Option<usize>,
    /// Replacement policy.
    pub policy: Policy,
    /// The I/O engine ([`IoMode::Blocking`] by default).
    pub io: IoMode,
    /// Worker threads. In blocking mode this is the maximum number of
    /// concurrently served connections; in event mode it sizes the
    /// executor pool that runs requests (connections are not bounded by
    /// it — see [`max_conns`](Self::max_conns)).
    pub workers: usize,
    /// Reactor threads in event mode (`0`: one per hardware thread,
    /// capped at 8). Ignored in blocking mode.
    pub reactors: usize,
    /// Resident-connection ceiling in event mode: past it, new
    /// connections are shed with `SERVER_BUSY` (`0`: unbounded). Ignored
    /// in blocking mode, where `workers + backlog` plays this role.
    pub max_conns: usize,
    /// Accepted connections that may queue for a worker before new ones
    /// are shed with `SERVER_BUSY`.
    pub backlog: usize,
    /// Read timeout between requests: a connection idle this long is
    /// closed.
    pub idle_timeout: Duration,
    /// Total deadline for reading one request once its first byte has
    /// arrived. A peer that sends half a line and stops (slowloris) is
    /// cut after this long instead of holding a worker for the full
    /// [`idle_timeout`](Self::idle_timeout).
    pub partial_read_deadline: Duration,
    /// Write timeout for responses.
    pub write_timeout: Duration,
    /// Optional periodic metrics dump, flushed one final time on
    /// shutdown.
    pub report: Option<ReportSink>,
    /// Fault-tolerance middleware around the origin (deadline, retry,
    /// circuit breaker).
    pub resilience: ResilienceConfig,
    /// Entries the stale store retains for serve-stale degradation
    /// (`None`: match the cache capacity; `Some(0)` disables it).
    pub stale_capacity: Option<usize>,
    /// Cluster membership and peer-forwarding behaviour (`None`: the
    /// node runs standalone). An empty `node_id` is substituted with the
    /// bound listen address at startup (and appended to the membership
    /// if absent), so tests binding port 0 need no up-front address.
    pub cluster: Option<PeerConfig>,
    /// Distributed-tracing knobs (`PROTOCOL.md` § Tracing): 1-in-N
    /// sampling, the always-keep-slow threshold, and the kept-trace ring
    /// capacity. All off by default — incoming `TRACE` tokens are still
    /// honored.
    pub trace: TraceConfig,
    /// Print one structured line to stderr for every slow traced request
    /// (trace id, key, phase breakdown). Needs `trace.slow_us > 0` to
    /// classify anything as slow.
    pub slow_log: bool,
    /// Online adaptive policy selection
    /// ([`CacheBuilder::adaptive`](csr_cache::CacheBuilder::adaptive)).
    /// When set, overrides [`policy`](Self::policy): every shard
    /// shadow-scores the two candidates and hot-flips to the winner.
    pub adaptive: Option<SelectorConfig>,
    /// Crash-safe persistence ([`crate::persist`]): WAL + snapshots in
    /// the given directory, with startup recovery replayed **before**
    /// the listener binds (`None`: in-memory only, the default).
    pub persist: Option<PersistConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            capacity: 65_536,
            shards: None,
            policy: Policy::Dcl,
            io: IoMode::Blocking,
            workers: 64,
            reactors: 0,
            max_conns: 0,
            backlog: 64,
            idle_timeout: Duration::from_secs(30),
            partial_read_deadline: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            report: None,
            resilience: ResilienceConfig::default(),
            stale_capacity: None,
            cluster: None,
            trace: TraceConfig::default(),
            slow_log: false,
            adaptive: None,
            persist: None,
        }
    }
}

/// The serve-stale fallback: the last successfully fetched copy of each
/// read-through key, with the measured cost that fetch paid. Bounded FIFO
/// by *recording* order (re-recording a key refreshes its slot lazily:
/// the old ring slot becomes a tombstone skipped at eviction time).
///
/// Values are `Arc<[u8]>` clones of what the cache stores, so the store
/// costs one refcount per entry, not a copy.
struct StaleStore {
    capacity: usize,
    inner: Mutex<StaleInner>,
}

#[derive(Default)]
struct StaleInner {
    entries: HashMap<String, StaleEntry>,
    /// Recording order, `(key, generation)`; a slot whose generation no
    /// longer matches the live entry is a tombstone.
    order: VecDeque<(String, u64)>,
    next_gen: u64,
}

struct StaleEntry {
    value: Bytes,
    /// The measured miss cost of the last successful fetch.
    cost: u64,
    gen: u64,
}

impl StaleStore {
    fn new(capacity: usize) -> Self {
        StaleStore {
            capacity,
            inner: Mutex::new(StaleInner::default()),
        }
    }

    /// Records a successful fetch of `key` (cost in µs, as charged to the
    /// cache).
    fn record(&self, key: &str, value: Bytes, cost: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("stale store lock poisoned");
        let gen = inner.next_gen;
        inner.next_gen += 1;
        inner
            .entries
            .insert(key.to_owned(), StaleEntry { value, cost, gen });
        inner.order.push_back((key.to_owned(), gen));
        while inner.entries.len() > self.capacity {
            match inner.order.pop_front() {
                Some((k, g)) => {
                    if inner.entries.get(&k).is_some_and(|e| e.gen == g) {
                        inner.entries.remove(&k);
                    } // else: tombstone of a since-refreshed key
                }
                None => break,
            }
        }
        // The eviction loop above only drains the ring while the map is
        // over capacity, so re-recording resident keys (the steady state)
        // would otherwise grow `order` by one tombstone per fetch, forever.
        // Compact eagerly once tombstones outnumber live slots: rebuild
        // the ring keeping only slots that still name the live generation.
        // Each rebuild is O(len) and at least halves the ring, so the
        // amortized cost per record stays O(1).
        let StaleInner { entries, order, .. } = &mut *inner;
        if order.len() > 2 * entries.len() {
            order.retain(|(k, g)| entries.get(k).is_some_and(|e| e.gen == *g));
        }
    }

    /// The last successful copy of `key`, if still retained.
    fn get(&self, key: &str) -> Option<(Bytes, u64)> {
        let inner = self.inner.lock().expect("stale store lock poisoned");
        inner
            .entries
            .get(key)
            .map(|e| (Arc::clone(&e.value), e.cost))
    }
}

/// Server-side metric families, registered alongside the cache's own
/// (`csr_cache_*`, `csr_policy_*`) in one shared [`Registry`] that the
/// `METRICS` command and the [`ReportSink`] both render.
pub(crate) struct ServerMetrics {
    pub(crate) accepted: Arc<Counter>,
    pub(crate) shed: Arc<Counter>,
    pub(crate) closed: Arc<Counter>,
    pub(crate) active: Arc<Gauge>,
    req_get: Arc<Counter>,
    req_fget: Arc<Counter>,
    req_set: Arc<Counter>,
    req_del: Arc<Counter>,
    req_stats: Arc<Counter>,
    req_metrics: Arc<Counter>,
    req_traces: Arc<Counter>,
    pub(crate) req_errors: Arc<Counter>,
    /// Requests rejected for exceeding a normative limit, by which limit
    /// (`line`, `key`, `value`). These are recoverable rejections — the
    /// connection resyncs and continues.
    limit_line: Arc<Counter>,
    limit_key: Arc<Counter>,
    limit_value: Arc<Counter>,
    /// Connections cut for stalling mid-request past the partial-line
    /// read deadline (slowloris defense, distinct from idle timeouts).
    pub(crate) slowloris_drops: Arc<Counter>,
    /// Handler panics caught without killing the worker/executor that
    /// hosted them (the connection dies; the pool survives).
    pub(crate) worker_panics: Arc<Counter>,
    /// Measured read-through fetch latency (µs) — the distribution of the
    /// very numbers being fed to the policy as miss costs.
    fetch_us: Arc<Histogram>,
    /// Per-phase request durations, derived from trace spans.
    phases: PhaseMetrics,
}

/// Per-phase request-duration histograms (µs), one `phase` label value
/// per span name the tracer produces. Each phase records the very
/// duration its span reports, so the metrics and the exported traces
/// can never disagree about where time went.
struct PhaseMetrics {
    request: Arc<Histogram>,
    parse: Arc<Histogram>,
    cache: Arc<Histogram>,
    origin: Arc<Histogram>,
    forward: Arc<Histogram>,
    stale: Arc<Histogram>,
}

impl PhaseMetrics {
    fn new(registry: &Registry) -> Self {
        let phase = |name: &str| {
            registry.histogram(
                "csr_serve_phase_us",
                "Per-phase request duration in microseconds, derived from trace spans",
                &[("phase", name)],
            )
        };
        PhaseMetrics {
            request: phase("request"),
            parse: phase("parse"),
            cache: phase("cache"),
            origin: phase("origin"),
            forward: phase("forward"),
            stale: phase("stale"),
        }
    }

    /// Records `us` under the histogram matching a span name (unknown
    /// names are dropped rather than mislabeled).
    fn record(&self, phase: &str, us: u64) {
        match phase {
            "request" => self.request.record(us),
            "parse" => self.parse.record(us),
            "cache" => self.cache.record(us),
            "origin" => self.origin.record(us),
            "forward" => self.forward.record(us),
            "stale" => self.stale.record(us),
            _ => {}
        }
    }
}

impl ServerMetrics {
    fn new(registry: &Registry) -> Self {
        let conn = |event: &str| {
            registry.counter(
                "csr_serve_connections_total",
                "Connections by lifecycle event",
                &[("event", event)],
            )
        };
        let req = |verb: &str| {
            registry.counter(
                "csr_serve_requests_total",
                "Requests by verb",
                &[("verb", verb)],
            )
        };
        let limit = |kind: &str| {
            registry.counter(
                "csr_serve_conn_limit_rejects_total",
                "Requests rejected for exceeding a normative size limit",
                &[("limit", kind)],
            )
        };
        ServerMetrics {
            accepted: conn("accepted"),
            shed: conn("shed"),
            closed: conn("closed"),
            active: registry.gauge(
                "csr_serve_active_connections",
                "Connections currently held by workers",
                &[],
            ),
            req_get: req("get"),
            req_fget: req("fget"),
            req_set: req("set"),
            req_del: req("del"),
            req_stats: req("stats"),
            req_metrics: req("metrics"),
            req_traces: req("traces"),
            req_errors: req("error"),
            limit_line: limit("line"),
            limit_key: limit("key"),
            limit_value: limit("value"),
            slowloris_drops: registry.counter(
                "csr_serve_conn_slowloris_drops_total",
                "Connections cut for stalling mid-request past the partial-line deadline",
                &[],
            ),
            worker_panics: registry.counter(
                "csr_serve_worker_panics_total",
                "Connection-handler panics caught without killing the serving pool",
                &[],
            ),
            fetch_us: registry.histogram(
                "csr_serve_miss_fetch_us",
                "Measured origin fetch latency in microseconds (charged as miss cost)",
                &[],
            ),
            phases: PhaseMetrics::new(registry),
        }
    }

    /// The limit-reject counter for the proto layer's limit class.
    pub(crate) fn limit_reject(&self, kind: &str) -> &Counter {
        match kind {
            "key" => &self.limit_key,
            "value" => &self.limit_value,
            _ => &self.limit_line,
        }
    }

    fn limit_rejects(&self) -> u64 {
        self.limit_line.get() + self.limit_key.get() + self.limit_value.get()
    }
}

/// Cluster machinery a node carries when it runs in cluster mode.
struct ClusterState {
    router: PeerRouter,
    metrics: ClusterServerMetrics,
}

/// State shared by the acceptor, the workers/reactors, and the handle.
pub(crate) struct Shared {
    cache: CsrCache<String, Bytes>,
    /// The origin, already wrapped in the resilience stack.
    backing: Arc<dyn Backing>,
    pub(crate) registry: Arc<Registry>,
    pub(crate) metrics: ServerMetrics,
    origin_metrics: Arc<OriginMetrics>,
    /// Which engine is serving — surfaced as the `STATS io_mode` row so
    /// parity harnesses can label their measurements.
    io_mode: IoMode,
    stale: StaleStore,
    cluster: Option<ClusterState>,
    /// The node's request tracer (csr-trace); always present, dormant
    /// (zero per-request allocations) unless sampling/slow-capture is on
    /// or a request carries an incoming `TRACE` token.
    tracer: Tracer,
    /// Print a structured stderr line for each slow traced request.
    slow_log: bool,
    /// Crash-safe persistence engine (`None`: in-memory only).
    persist: Option<Persistence>,
    /// Ensures the final snapshot/flush runs exactly once.
    persist_done: AtomicBool,
    shutdown: AtomicBool,
    /// Read-half handles of live connections, so shutdown can cut idle
    /// readers without waiting out their timeout. Keyed by a connection
    /// id; a worker removes its entry when the connection closes.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn_id: AtomicU64,
    started: Instant,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// WAL-logs a stored entry (`cost` exactly as charged to the cache),
    /// taking the periodic snapshot when one falls due. No-op without
    /// persistence. For entries inserted by this caller (not by a cache
    /// fill closure), use [`store_persisted`](Self::store_persisted)
    /// instead — it makes the insert atomic with the append.
    fn persist_set(&self, key: &str, value: &[u8], cost: u64) {
        if let Some(p) = &self.persist {
            if p.log_set(key, value, cost) {
                p.snapshot(&self.cache);
            }
        }
    }

    /// Inserts into the cache and WAL-logs the entry as one atomic step
    /// (the insert runs under the WAL append lock), so concurrent
    /// mutations of the same key reach the cache and the log in the
    /// same order — recovery replays exactly the history clients were
    /// acknowledged against.
    fn store_persisted(&self, key: &str, value: &Bytes, cost: u64) {
        match &self.persist {
            None => {
                self.cache
                    .insert_with_cost(key.to_owned(), Arc::clone(value), cost);
            }
            Some(p) => {
                let ((), due) = p.log_set_with(key, value, cost, || {
                    self.cache
                        .insert_with_cost(key.to_owned(), Arc::clone(value), cost);
                });
                if due {
                    p.snapshot(&self.cache);
                }
            }
        }
    }

    /// Removes from the cache and WAL-logs the invalidation as one
    /// atomic step, returning whether the key was resident. The DEL is
    /// logged even for a non-resident key: the WAL tail may hold an
    /// earlier SET for it (a fill that was since evicted), and without
    /// the tombstone replay would resurrect the invalidated value.
    fn remove_persisted(&self, key: &str) -> bool {
        match &self.persist {
            None => self.cache.remove(&key.to_owned()).is_some(),
            Some(p) => {
                let (removed, due) =
                    p.log_del_with(key, || self.cache.remove(&key.to_owned()).is_some());
                if due {
                    p.snapshot(&self.cache);
                }
                removed
            }
        }
    }

    /// The final persistence flush (snapshot + WAL prune), run once after
    /// the serving threads have drained.
    fn finish_persist(&self) {
        if self.persist_done.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(p) = &self.persist {
            p.finish(&self.cache);
        }
    }
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (ignoring errors); call [`shutdown`](Self::shutdown) to
/// observe them.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<io::Result<()>>>,
    wake: WakeStrategy,
}

/// How `begin_shutdown` gets the serving threads' attention — the part
/// of shutdown that must be *reliable*, not best-effort.
enum WakeStrategy {
    /// Blocking engine. Setting the shutdown flag does not wake a thread
    /// already parked in `accept(2)`, and the old single best-effort
    /// `TcpStream::connect` wake could be dropped by a full accept
    /// backlog — leaving shutdown hung until the next real client. Now:
    /// flip the listener nonblocking (this clone shares the kernel file
    /// description, so the acceptor's fd flips too — every *future*
    /// accept returns `WouldBlock` instead of parking) and poke it with
    /// short connects under a deadline to dislodge a *currently* parked
    /// accept. If the backlog is so full that every poke is refused,
    /// those queued connections wake the acceptor by themselves.
    Blocking {
        listener: TcpListener,
        addr: SocketAddr,
    },
    /// Event engine: wake every reactor's poller; each reactor observes
    /// the flag on its next loop turn. Never droppable.
    Event { pollers: Vec<Arc<Poller>> },
}

impl ServerHandle {
    /// The bound listen address (with the real port when `:0` was asked).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics registry (server + cache families).
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// A cache-wide statistics snapshot.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The node's request tracer — for exporting the kept-trace ring
    /// (JSONL / Chrome trace-event) at shutdown.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Gracefully shuts down: stop accepting, cut idle readers, drain
    /// in-flight requests, flush the final metrics report.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final report flush.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.begin_shutdown();
        let joined = self.supervisor.take().map(JoinHandle::join);
        // Final snapshot after the serving threads drained: no appends
        // race the export, and the pruned WAL makes the next start fast.
        self.shared.finish_persist();
        match joined {
            Some(Ok(result)) => result,
            Some(Err(panic)) => std::panic::resume_unwind(panic),
            None => Ok(()),
        }
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Cut the read half of every live connection: blocked reads
        // return immediately (EOF) and the worker closes after finishing
        // whatever request it is mid-way through. Writes stay open.
        // (Event mode tracks connections in its reactors instead; this
        // list is empty there and the poller wake below does the job.)
        for (_, stream) in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let _ = stream.shutdown(Shutdown::Read);
        }
        match &self.wake {
            WakeStrategy::Blocking { listener, addr } => {
                let _ = listener.set_nonblocking(true);
                let deadline = Instant::now() + Duration::from_secs(2);
                loop {
                    match TcpStream::connect_timeout(addr, Duration::from_millis(250)) {
                        Ok(_) => break,
                        Err(_) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            }
            WakeStrategy::Event { pollers } => {
                for poller in pollers {
                    poller.wake();
                }
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(handle) = self.supervisor.take() {
            self.begin_shutdown();
            let _ = handle.join();
            self.shared.finish_persist();
        }
    }
}

/// Starts a server for `config` reading through `backing`; returns once
/// the listener is bound and the worker pool is running.
///
/// With [`ServerConfig::persist`] set, the persistence lock is taken and
/// startup recovery (snapshot + WAL replay) completes **before** the
/// listener binds: no client can reach a half-recovered cache, and a
/// shutdown requested mid-replay (the config's `cancel` hook) aborts
/// with `ErrorKind::Interrupted` without ever having opened a port.
///
/// # Errors
///
/// Binding the listener, creating the report file, taking the
/// persistence lock (another live instance holds the dir), or reading
/// the persisted state can fail; nothing is left running in that case.
pub fn serve(config: ServerConfig, backing: Arc<dyn Backing>) -> io::Result<ServerHandle> {
    assert!(config.workers > 0, "need at least one worker");
    let registry = Arc::new(Registry::new());
    let metrics = ServerMetrics::new(&registry);
    let origin_metrics = Arc::new(OriginMetrics::new(&registry));
    let (backing, _breaker) = ResilientBacking::wrap(
        backing,
        &config.resilience,
        Some(Arc::clone(&origin_metrics)),
    );
    let mut builder = CsrCache::builder(config.capacity)
        .policy(config.policy)
        .metrics(Arc::clone(&registry));
    if let Some(shards) = config.shards {
        builder = builder.shards(shards);
    }
    if let Some(cfg) = config.adaptive {
        builder = builder.adaptive(cfg);
    }
    let cache = builder.build();

    // Lock + recover before the listener exists: a second instance is
    // refused while no port is open yet, and no client can talk to a
    // half-recovered cache.
    let persist = match config.persist {
        Some(pc) => {
            let p = Persistence::open(pc, &registry)?;
            let report = p.recover_into(&cache)?;
            if report.recovered_entries > 0 || report.truncated_records > 0 {
                eprintln!(
                    "csr-serve: recovered {} entries ({} WAL records replayed, \
                     {} torn records truncated)",
                    report.recovered_entries, report.wal_records, report.truncated_records
                );
            }
            Some(p)
        }
        None => None,
    };

    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;

    let cluster = config.cluster.map(|mut pc| {
        if pc.node_id.is_empty() {
            // The common test/demo shape: bind port 0, identify as
            // whatever address we got.
            pc.node_id = addr.to_string();
        }
        if !pc.nodes.iter().any(|n| n.id == pc.node_id) {
            pc.nodes.push(ClusterNode::addr_only(pc.node_id.clone()));
        }
        ClusterState {
            router: PeerRouter::new(&pc),
            metrics: ClusterServerMetrics::new(&registry),
        }
    });
    // Traces are stamped with the cluster node id when there is one, so
    // spans from different nodes of one trace stay distinguishable.
    let trace_node = cluster
        .as_ref()
        .map_or_else(|| addr.to_string(), |cl| cl.router.node_id().to_owned());
    let shared = Arc::new(Shared {
        cache,
        backing,
        io_mode: config.io,
        registry: Arc::clone(&registry),
        metrics,
        origin_metrics,
        stale: StaleStore::new(config.stale_capacity.unwrap_or(config.capacity)),
        cluster,
        tracer: Tracer::new(&trace_node, config.trace),
        slow_log: config.slow_log,
        persist,
        persist_done: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        next_conn_id: AtomicU64::new(0),
        started: Instant::now(),
    });

    // Create the report sink before spawning anything so a bad path fails
    // the call instead of a background thread.
    let reporter = match &config.report {
        Some(sink) => {
            let file = std::fs::File::create(&sink.path)?;
            Some(Reporter::spawn(
                Arc::clone(&registry),
                sink.interval,
                file,
                sink.format,
            ))
        }
        None => None,
    };

    let timeouts = ConnTimeouts {
        idle: config.idle_timeout,
        partial: config.partial_read_deadline,
        write: config.write_timeout,
    };
    let (supervisor, wake) = match config.io {
        IoMode::Blocking => {
            let wake_listener = listener.try_clone()?;
            let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
            let rx = Arc::new(Mutex::new(rx));
            let workers: Vec<JoinHandle<()>> = (0..config.workers)
                .map(|_| {
                    let rx = Arc::clone(&rx);
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(&rx, &shared, timeouts))
                })
                .collect();
            let supervisor = {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || accept_loop(&listener, tx, workers, reporter, &shared))
            };
            (
                supervisor,
                WakeStrategy::Blocking {
                    listener: wake_listener,
                    addr,
                },
            )
        }
        IoMode::Event => {
            #[cfg(not(unix))]
            {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "event i/o needs epoll/kqueue; use IoMode::Blocking on this platform",
                ));
            }
            #[cfg(unix)]
            {
                let params = reactor::EventParams {
                    reactors: config.reactors,
                    executors: config.workers,
                    max_conns: config.max_conns,
                    timeouts,
                };
                let (supervisor, pollers) =
                    reactor::spawn(listener, Arc::clone(&shared), reporter, params)?;
                (supervisor, WakeStrategy::Event { pollers })
            }
        }
    };

    Ok(ServerHandle {
        addr,
        shared,
        supervisor: Some(supervisor),
        wake,
    })
}

/// The acceptor-supervisor thread: accepts until shutdown, then tears the
/// pool down in order (stop accepting → drain workers → final report
/// flush).
fn accept_loop(
    listener: &TcpListener,
    tx: SyncSender<TcpStream>,
    workers: Vec<JoinHandle<()>>,
    reporter: Option<Reporter<std::fs::File>>,
    shared: &Shared,
) -> io::Result<()> {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            // `begin_shutdown` flips the listener nonblocking so the
            // acceptor cannot re-park; until the flag propagates, spin
            // gently rather than hot.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutting_down() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            // Transient accept errors (EMFILE, aborted handshakes) must
            // not kill the server.
            Err(_) if !shared.shutting_down() => continue,
            Err(_) => break,
        };
        if shared.shutting_down() {
            break; // the stream (possibly the shutdown wake-up) just drops
        }
        shared.metrics.accepted.inc();
        if let Err(TrySendError::Full(stream) | TrySendError::Disconnected(stream)) =
            tx.try_send(stream)
        {
            // Every worker busy and the queue full: shed explicitly.
            shared.metrics.shed.inc();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = proto::write_line(&mut stream, "SERVER_BUSY");
        }
    }
    // Closing the channel lets each worker finish its current connection
    // and exit once the queue is drained.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    // The last interval's numbers (final request counts, the shutdown
    // itself) must reach the report file: explicit final flush.
    match reporter {
        Some(rep) => rep.stop().map(|_| ()),
        None => Ok(()),
    }
}

/// Per-connection timeouts, as configured on the server.
#[derive(Clone, Copy)]
pub(crate) struct ConnTimeouts {
    pub(crate) idle: Duration,
    pub(crate) partial: Duration,
    pub(crate) write: Duration,
}

/// A buffered reader that distinguishes "waiting for the next request"
/// (bounded by the idle timeout) from "stalled mid-request" (bounded by
/// the much tighter partial-read deadline). The protocol layer reads
/// through [`BufRead`] oblivious to either; this wrapper re-arms the
/// socket's read timeout before every refill based on whether the
/// current request has started.
struct DeadlineReader {
    inner: BufReader<TcpStream>,
    /// A second handle to the same socket, used to adjust its timeout.
    stream: TcpStream,
    idle: Duration,
    partial: Duration,
    /// When the first byte of the request in progress arrived; `None`
    /// between requests.
    started: Option<Instant>,
}

impl DeadlineReader {
    fn new(
        inner: BufReader<TcpStream>,
        stream: TcpStream,
        idle: Duration,
        partial: Duration,
    ) -> Self {
        DeadlineReader {
            inner,
            stream,
            idle,
            partial,
            started: None,
        }
    }

    /// Marks the boundary between requests: the next refill waits under
    /// the idle timeout again.
    fn begin_idle(&mut self) {
        self.started = None;
    }

    /// Whether a request is partially read (its deadline clock running).
    fn mid_request(&self) -> bool {
        self.started.is_some()
    }

    /// Whether another pipelined request is already buffered.
    fn has_buffered(&self) -> bool {
        !self.inner.buffer().is_empty()
    }

    /// When the first byte of the current request arrived — the anchor
    /// a trace's root span is backdated to, so read+parse time is part
    /// of the request it belongs to.
    fn request_started(&self) -> Option<Instant> {
        self.started
    }
}

impl io::Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let available = io::BufRead::fill_buf(self)?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        io::BufRead::consume(self, n);
        Ok(n)
    }
}

impl io::BufRead for DeadlineReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.inner.buffer().is_empty() {
            let timeout = match self.started {
                None => self.idle,
                Some(t0) => {
                    let left = self.partial.saturating_sub(t0.elapsed());
                    if left.is_zero() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "request read deadline exceeded",
                        ));
                    }
                    left.min(self.idle)
                }
            };
            self.stream.set_read_timeout(Some(timeout))?;
            let n = self.inner.fill_buf()?.len();
            if n > 0 && self.started.is_none() {
                self.started = Some(Instant::now());
            }
        } else if self.started.is_none() {
            // A pipelined request is already buffered: its clock starts
            // now, not when the socket next blocks.
            self.started = Some(Instant::now());
        }
        Ok(self.inner.buffer())
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt);
    }
}

/// One worker: serve queued connections until the channel closes.
///
/// Panic containment: a handler panic must cost exactly one connection,
/// never the pool. The lock is held only for `recv` (so a panic can't
/// poison it mid-`handle_conn`), a poisoned lock is recovered rather
/// than re-thrown (an mpsc `Receiver` has no invariants a panic can
/// break), and the handler itself runs under `catch_unwind`, counted in
/// `csr_serve_worker_panics_total`.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared, timeouts: ConnTimeouts) {
    loop {
        let stream = {
            let queue = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match queue.recv() {
                Ok(stream) => stream,
                Err(_) => return,
            }
        };
        shared.metrics.active.add(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = handle_conn(stream, shared, timeouts);
        }));
        if caught.is_err() {
            shared.metrics.worker_panics.inc();
        }
        shared.metrics.active.add(-1);
        shared.metrics.closed.inc();
    }
}

/// Serves one connection until EOF, `QUIT`, a fatal protocol error, a
/// timeout, or shutdown.
fn handle_conn(stream: TcpStream, shared: &Shared, timeouts: ConnTimeouts) -> io::Result<()> {
    stream.set_read_timeout(Some(timeouts.idle))?;
    stream.set_write_timeout(Some(timeouts.write))?;
    stream.set_nodelay(true)?;

    // Register the read half so shutdown can cut a blocked read.
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    shared
        .conns
        .lock()
        .expect("conns lock poisoned")
        .push((conn_id, stream.try_clone()?));
    // Deregister on every exit path.
    struct Dereg<'a>(&'a Shared, u64);
    impl Drop for Dereg<'_> {
        fn drop(&mut self) {
            let mut conns = self.0.conns.lock().expect("conns lock poisoned");
            conns.retain(|(id, _)| *id != self.1);
        }
    }
    let _dereg = Dereg(shared, conn_id);

    let mut reader = DeadlineReader::new(
        BufReader::new(stream.try_clone()?),
        stream.try_clone()?,
        timeouts.idle,
        timeouts.partial,
    );
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.shutting_down() {
            return writer.flush();
        }
        match proto::read_request(&mut reader) {
            Ok(None) | Ok(Some(Request::Quit)) => return writer.flush(),
            Ok(Some(request)) => {
                let anchor = reader.request_started().unwrap_or_else(Instant::now);
                respond(request, shared, &mut writer, anchor)?;
            }
            Err(ProtoError::Client { msg, fatal, limit }) => {
                shared.metrics.req_errors.inc();
                if let Some(kind) = limit {
                    shared.metrics.limit_reject(kind).inc();
                }
                let reply = if msg.starts_with("CLIENT_ERROR") {
                    msg
                } else {
                    format!("CLIENT_ERROR {msg}")
                };
                proto::write_line(&mut writer, &reply)?;
                if fatal {
                    return writer.flush();
                }
            }
            Err(ProtoError::Io(e)) => {
                // A peer that stalled mid-request past the partial-read
                // deadline is a slowloris: reclaim the worker, telling
                // the peer why (best effort — it may not be listening).
                if reader.mid_request()
                    && matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    )
                {
                    shared.metrics.slowloris_drops.inc();
                    let _ = proto::write_line(
                        &mut writer,
                        "CLIENT_ERROR request read deadline exceeded",
                    );
                }
                // Timeouts and transport errors close the connection; an
                // idle peer holding a worker hostage is itself a protocol
                // error.
                return writer.flush();
            }
        }
        reader.begin_idle();
        // Pipelining: only pay the flush syscall when no further request
        // is already buffered.
        if !reader.has_buffered() {
            writer.flush()?;
        }
    }
}

/// Executes one request and writes its response (buffered). Both I/O
/// engines funnel through here, which is what makes wire parity a
/// structural property rather than a test-enforced one.
pub(crate) fn respond(
    request: Request,
    shared: &Shared,
    w: &mut impl Write,
    anchor: Instant,
) -> io::Result<()> {
    match request {
        Request::Get { key, trace: ctx } => {
            shared.metrics.req_get.inc();
            let mut trace = begin_trace(shared, ctx, anchor);
            let out = (|| {
                if let Some(cl) = &shared.cluster {
                    if let Some((peer, owner)) = cl.router.owner_of(&key) {
                        if !cl.router.forward {
                            cl.metrics.moved.inc();
                            if let Some(t) = trace.as_mut() {
                                t.event("moved", owner.addr.clone());
                            }
                            return proto::write_moved(w, &owner.addr);
                        }
                        return forwarded_get(shared, cl, peer, &key, w, &mut trace);
                    }
                }
                local_get(shared, &key, w, &mut trace)
            })();
            finish_trace(shared, trace, &key);
            out
        }
        // The internal one-hop verb: always answered from this node's own
        // cache/origin — never re-forwarded, never MOVED — so peer
        // forwarding cannot loop.
        Request::ForwardGet { key, trace: ctx } => {
            shared.metrics.req_fget.inc();
            let mut trace = begin_trace(shared, ctx, anchor);
            let out = local_get(shared, &key, w, &mut trace);
            finish_trace(shared, trace, &key);
            out
        }
        Request::Set {
            key,
            value,
            trace: ctx,
        } => {
            shared.metrics.req_set.inc();
            let bytes = Bytes::from(value);
            match begin_trace(shared, ctx, anchor) {
                None => {
                    shared.store_persisted(&key, &bytes, SET_COST);
                    proto::write_line(w, "STORED")
                }
                Some(mut t) => {
                    let span = t.begin_span("cache");
                    shared.store_persisted(&key, &bytes, SET_COST);
                    let dur = t.finish_span(span);
                    shared.metrics.phases.record("cache", dur);
                    let out = proto::write_line(w, "STORED");
                    finish_trace(shared, Some(t), &key);
                    out
                }
            }
        }
        Request::Del(key) => {
            shared.metrics.req_del.inc();
            // The WAL tombstone is written whether or not the key was
            // resident (see `remove_persisted`); only the *reply* keys
            // off residency.
            let removed = shared.remove_persisted(&key);
            proto::write_line(w, if removed { "DELETED" } else { "NOT_FOUND" })
        }
        Request::Stats => {
            shared.metrics.req_stats.inc();
            write_stats(shared, w)
        }
        Request::Metrics => {
            shared.metrics.req_metrics.inc();
            let text = csr_obs::export::prometheus(&shared.registry.snapshot());
            proto::write_data(w, text.as_bytes())
        }
        Request::Traces => {
            shared.metrics.req_traces.inc();
            let body = shared.tracer.export_jsonl();
            proto::write_data(w, body.as_bytes())
        }
        // QUIT never reaches respond().
        Request::Quit => Ok(()),
    }
}

/// Starts the request trace (if this request is traced at all): the root
/// span is backdated to `anchor` (first byte), a retroactive `parse`
/// span covers read+parse, and the thread-local event collector is armed
/// so the resilience middleware's annotations reach the trace. Returns
/// `None` — with zero allocations — when tracing is off and the request
/// carried no `TRACE` token.
fn begin_trace(
    shared: &Shared,
    ctx: Option<TraceContext>,
    anchor: Instant,
) -> Option<RequestTrace> {
    let mut trace = shared.tracer.begin(ctx, anchor);
    if let Some(t) = trace.as_mut() {
        let dur = t.add_span_since("parse", anchor);
        shared.metrics.phases.record("parse", dur);
        arm_events();
    }
    trace
}

/// Seals the request trace: leftover middleware events land on the root
/// span, the whole-request duration feeds the `request` phase histogram,
/// and — when the request was slow and the slow log is on — one
/// structured line goes to stderr.
fn finish_trace(shared: &Shared, trace: Option<RequestTrace>, key: &str) {
    let Some(mut t) = trace else { return };
    t.absorb_events(take_events());
    let fin = shared.tracer.finish(t);
    shared.metrics.phases.record("request", fin.total_us);
    if fin.slow && shared.slow_log {
        use std::fmt::Write as _;
        let mut phases = String::new();
        for s in fin.spans.iter().skip(1) {
            let _ = write!(phases, " {}_us={}", s.name, s.dur_us);
        }
        eprintln!(
            "SLOW trace={:016x} node={} key={} total_us={}{}",
            fin.trace_id,
            shared.tracer.node(),
            key,
            fin.total_us,
            phases
        );
    }
}

/// The single-node read-through `GET`: cache, then origin (fetch timed
/// and charged as miss cost), then the stale-store degradation ladder.
///
/// When traced, a `cache` span covers the whole single-flight lookup
/// (including any coalesced wait) and an `origin` span — nested inside
/// it, carrying the resilience middleware's retry/breaker/deadline
/// events — covers the fetch closure when it ran.
fn local_get(
    shared: &Shared,
    key: &str,
    w: &mut impl Write,
    trace: &mut Option<RequestTrace>,
) -> io::Result<()> {
    let cache_span = trace.as_mut().map(|t| t.begin_span("cache"));
    // When the fetch closure ran (a real miss, not a hit or a coalesced
    // wait), the instant it started — so the origin span can be built
    // retroactively outside the closure's borrow.
    let fetch_started: Cell<Option<Instant>> = Cell::new(None);
    let value: Result<Option<Bytes>, BackingError> =
        shared.cache.try_get_or_insert_with(key.to_owned(), || {
            let t0 = Instant::now();
            fetch_started.set(Some(t0));
            let Some(fetched) = shared.backing.try_fetch(key)? else {
                return Ok(None);
            };
            // Microseconds, floored at 1 so even a sub-µs origin read
            // carries nonzero weight with the policies, and ceilinged so
            // a clock anomaly cannot mint an unevictable entry.
            let cost = measured_cost_us(t0.elapsed());
            shared.metrics.fetch_us.record(cost);
            let bytes = Bytes::from(fetched);
            // Remember the copy (and its measured cost) for
            // serve-stale degradation if the origin later fails.
            shared.stale.record(key, Arc::clone(&bytes), cost);
            // The WAL records the *measured* cost, so a restart
            // reconstructs the eviction ordering, not just the data.
            shared.persist_set(key, &bytes, cost);
            Ok(Some((bytes, cost)))
        });
    if let Some(t) = trace.as_mut() {
        let events = take_events();
        if let Some(t0) = fetch_started.get() {
            let mut span = t.begin_span_at("origin", t0);
            span.absorb_events(events);
            let dur = t.finish_span(span);
            shared.metrics.phases.record("origin", dur);
        } else {
            // Hit or coalesced wait: no origin fetch of our own, but any
            // stray events still belong to this trace.
            t.absorb_events(events);
        }
        // Re-arm: the degraded path below may still run the stale store.
        arm_events();
        if let Some(span) = cache_span {
            shared.metrics.phases.record("cache", t.finish_span(span));
        }
    }
    match value {
        Ok(Some(bytes)) => proto::write_value(w, key, &bytes),
        Ok(None) => proto::write_end(w),
        Err(err) => write_degraded(shared, key, &err, w, trace),
    }
}

/// A `GET` for a key this node does not own, with forwarding enabled:
/// serve a locally cached copy if one exists (a previous forward put it
/// there — that *is* the hot-key replica), else fetch from the owner
/// over `FGET` inside the cache's single-flight slot, charging the
/// *measured* one-hop latency as the entry's miss cost. A peer that
/// cannot be reached (partition) degrades to this node's own origin
/// fetch, so availability survives the owner's death.
///
/// When traced, the `forward` span's id rides the `FGET` line as the
/// `TRACE` token, so the owner's spans link under it — one trace across
/// both nodes.
fn forwarded_get(
    shared: &Shared,
    cl: &ClusterState,
    peer: usize,
    key: &str,
    w: &mut impl Write,
    trace: &mut Option<RequestTrace>,
) -> io::Result<()> {
    // Reply-flag cells: set inside the fetch closure (which only runs on
    // a miss), read when writing the reply.
    let fwd = Cell::new(false);
    let fwd_stale = Cell::new(false);
    let cache_span = trace.as_mut().map(|t| t.begin_span("cache"));
    let value: Result<Option<Bytes>, BackingError> =
        shared.cache.try_get_or_insert_with(key.to_owned(), || {
            let t0 = Instant::now();
            let mut span = trace.as_mut().map(|t| t.begin_span("forward"));
            let ctx = trace
                .as_ref()
                .zip(span.as_ref())
                .map(|(t, sp)| t.context_from(sp.span_id()));
            match cl.router.fetch_from_peer(peer, key, ctx) {
                Ok(found) => {
                    let cost = measured_cost_us(t0.elapsed());
                    cl.metrics.forwards.inc();
                    cl.metrics.forward_us.record(cost);
                    fwd.set(true);
                    if let (Some(t), Some(sp)) = (trace.as_mut(), span.take()) {
                        let dur = t.finish_span(sp);
                        shared.metrics.phases.record("forward", dur);
                    }
                    Ok(found.map(|v| {
                        fwd_stale.set(v.stale);
                        let bytes = Bytes::from(v.data);
                        shared.stale.record(key, Arc::clone(&bytes), cost);
                        shared.persist_set(key, &bytes, cost);
                        (bytes, cost)
                    }))
                }
                // The owner is unreachable (or itself origin-dead): fall
                // back to our own origin so a partitioned peer costs one
                // bounded timeout, not an outage.
                Err(e) => {
                    cl.metrics.forward_fallbacks.inc();
                    if let (Some(t), Some(mut sp)) = (trace.as_mut(), span.take()) {
                        sp.event("forward_error", e.to_string());
                        let dur = t.finish_span(sp);
                        shared.metrics.phases.record("forward", dur);
                    }
                    let t0 = Instant::now();
                    let fetched = shared.backing.try_fetch(key);
                    if let Some(t) = trace.as_mut() {
                        let mut sp = t.begin_span_at("origin", t0);
                        sp.absorb_events(take_events());
                        let dur = t.finish_span(sp);
                        shared.metrics.phases.record("origin", dur);
                        arm_events();
                    }
                    let Some(fetched) = fetched? else {
                        return Ok(None);
                    };
                    let cost = measured_cost_us(t0.elapsed());
                    shared.metrics.fetch_us.record(cost);
                    let bytes = Bytes::from(fetched);
                    shared.stale.record(key, Arc::clone(&bytes), cost);
                    shared.persist_set(key, &bytes, cost);
                    Ok(Some((bytes, cost)))
                }
            }
        });
    if let Some(t) = trace.as_mut() {
        if let Some(span) = cache_span {
            shared.metrics.phases.record("cache", t.finish_span(span));
        }
    }
    match value {
        Ok(Some(bytes)) => proto::write_value_flags(w, key, &bytes, fwd_stale.get(), fwd.get()),
        Ok(None) => proto::write_end(w),
        Err(err) => write_degraded(shared, key, &err, w, trace),
    }
}

/// The degradation ladder once a fetch failed (past retries and the
/// breaker): a stale copy if we ever fetched one — put back into the
/// cache at its last successful measured cost — else the recoverable
/// `ORIGIN_ERROR` reply. Traced requests get an `origin_error` root
/// event either way, plus a `stale` span when a stale copy is served.
fn write_degraded(
    shared: &Shared,
    key: &str,
    err: &BackingError,
    w: &mut impl Write,
    trace: &mut Option<RequestTrace>,
) -> io::Result<()> {
    if let Some(t) = trace.as_mut() {
        t.event("origin_error", err.to_string());
    }
    match shared.stale.get(key) {
        Some((bytes, cost)) => {
            let span = trace.as_mut().map(|t| t.begin_span("stale"));
            shared.origin_metrics.stale_served.inc();
            shared.store_persisted(key, &bytes, cost);
            if let (Some(t), Some(sp)) = (trace.as_mut(), span) {
                shared.metrics.phases.record("stale", t.finish_span(sp));
            }
            proto::write_stale_value(w, key, &bytes)
        }
        None => proto::write_origin_error(w, &err.to_string()),
    }
}

/// Renders the `STATS` reply: cache counters, derived rates, and the
/// server's connection/request counters.
fn write_stats(shared: &Shared, w: &mut impl Write) -> io::Result<()> {
    let s = shared.cache.stats();
    let m = &shared.metrics;
    let mut stat = |name: &str, value: String| writeln_stat(w, name, &value);
    stat("policy", shared.cache.policy_name().to_owned())?;
    stat("io_mode", shared.io_mode.name().to_owned())?;
    stat(
        "uptime_us",
        shared.started.elapsed().as_micros().to_string(),
    )?;
    stat("capacity", shared.cache.capacity().to_string())?;
    stat("shards", shared.cache.num_shards().to_string())?;
    stat("resident", shared.cache.len().to_string())?;
    stat("lookups", s.lookups.to_string())?;
    stat("hits", s.hits.to_string())?;
    stat("misses", s.misses.to_string())?;
    stat("hit_rate", format!("{:.4}", s.hit_rate()))?;
    stat("insertions", s.insertions.to_string())?;
    stat("updates", s.updates.to_string())?;
    stat("evictions", s.evictions.to_string())?;
    stat("reservations", s.reservations.to_string())?;
    stat("removals", s.removals.to_string())?;
    stat("coalesced_fetches", s.coalesced_fetches.to_string())?;
    stat("aggregate_miss_cost", s.aggregate_miss_cost.to_string())?;
    stat("mean_miss_cost", format!("{:.2}", s.mean_miss_cost()))?;
    stat("connections_accepted", m.accepted.get().to_string())?;
    stat("connections_shed", m.shed.get().to_string())?;
    stat("connections_closed", m.closed.get().to_string())?;
    stat("connections_active", m.active.get().to_string())?;
    stat("requests_get", m.req_get.get().to_string())?;
    stat("requests_set", m.req_set.get().to_string())?;
    stat("requests_del", m.req_del.get().to_string())?;
    stat("requests_fget", m.req_fget.get().to_string())?;
    stat("conn_limit_rejects", m.limit_rejects().to_string())?;
    stat("conn_slowloris_drops", m.slowloris_drops.get().to_string())?;
    stat(
        "origin_stale_served",
        shared.origin_metrics.stale_served.get().to_string(),
    )?;
    stat(
        "origin_breaker_state",
        shared.origin_metrics.breaker_state.get().to_string(),
    )?;
    stat("traces_recorded", shared.tracer.recorded().to_string())?;
    stat("traces_dropped", shared.tracer.dropped().to_string())?;
    if let Some(p) = &shared.persist {
        let pm = p.metrics();
        stat("persist_fsync", p.fsync_policy().name())?;
        stat("persist_appends", pm.appends.get().to_string())?;
        stat("persist_fsyncs", pm.fsyncs.get().to_string())?;
        stat("persist_snapshots", pm.snapshots.get().to_string())?;
        stat(
            "persist_recovered_entries",
            pm.recovered_entries.get().to_string(),
        )?;
        stat(
            "persist_truncated_records",
            pm.truncated_records.get().to_string(),
        )?;
        stat("persist_errors", pm.errors.get().to_string())?;
        stat("persist_degraded", u64::from(p.is_degraded()).to_string())?;
    }
    if let Some(sel) = shared.cache.selector_stats() {
        stat(
            "selector_candidates",
            format!("{},{}", sel.candidates.0, sel.candidates.1),
        )?;
        stat("selector_flips", sel.flips.to_string())?;
        stat("selector_epochs", sel.epochs.to_string())?;
        stat("selector_sampled_gets", sel.sampled_gets.to_string())?;
        stat("selector_sampled_fills", sel.sampled_fills.to_string())?;
        stat(
            "selector_shadow_hits",
            format!("{},{}", sel.shadow_hits.0, sel.shadow_hits.1),
        )?;
        stat(
            "selector_shadow_savings",
            format!("{},{}", sel.shadow_savings.0, sel.shadow_savings.1),
        )?;
        stat(
            "selector_live_shards",
            format!("{},{}", sel.live_shards.0, sel.live_shards.1),
        )?;
    }
    if let Some(cl) = &shared.cluster {
        stat("cluster_node_id", cl.router.node_id().to_owned())?;
        stat("cluster_nodes", cl.router.nodes().len().to_string())?;
        stat("cluster_forwards", cl.metrics.forwards.get().to_string())?;
        stat(
            "cluster_forward_fallbacks",
            cl.metrics.forward_fallbacks.get().to_string(),
        )?;
        stat("cluster_moved", cl.metrics.moved.get().to_string())?;
    }
    proto::write_end(w)
}

fn writeln_stat(w: &mut impl Write, name: &str, value: &str) -> io::Result<()> {
    write!(w, "STAT {name} {value}\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(v: &[u8]) -> Bytes {
        Arc::from(v)
    }

    /// The regression for the `unwrap_or(u64::MAX)` cost sites: an
    /// elapsed time whose µs value overflows `u64` (a stepped clock, a
    /// resume-from-suspend anomaly) must clamp to the finite ceiling, not
    /// become an effectively infinite cost the policies never evict.
    #[test]
    fn measured_cost_clamps_clock_anomalies_to_a_finite_ceiling() {
        // The floor: sub-µs measurements still carry weight.
        assert_eq!(measured_cost_us(Duration::ZERO), 1);
        assert_eq!(measured_cost_us(Duration::from_nanos(200)), 1);
        // Honest measurements pass through untouched.
        assert_eq!(measured_cost_us(Duration::from_micros(7)), 7);
        assert_eq!(
            measured_cost_us(Duration::from_secs(59)),
            59_000_000,
            "real fetches are far below the ceiling"
        );
        // At and past the ceiling: clamped, finite, evictable.
        assert_eq!(
            measured_cost_us(Duration::from_secs(60)),
            MAX_MEASURED_COST_US
        );
        assert_eq!(
            measured_cost_us(Duration::from_secs(3600)),
            MAX_MEASURED_COST_US
        );
        // The overflow path itself: `as_micros` (u128) exceeds u64.
        let anomalous = Duration::from_secs(u64::MAX / 1_000);
        assert!(u64::try_from(anomalous.as_micros()).is_err());
        assert_eq!(measured_cost_us(anomalous), MAX_MEASURED_COST_US);
        assert_eq!(measured_cost_us(Duration::MAX), MAX_MEASURED_COST_US);
    }

    /// The regression for the unbounded-ring leak: in the steady state —
    /// a working set of distinct keys no larger than the capacity, each
    /// re-recorded on every refetch — the eviction loop never fires, so
    /// tombstone slots must be compacted eagerly instead of accumulating
    /// at the miss-fetch rate forever.
    #[test]
    fn stale_ring_stays_bounded_when_rerecording_resident_keys() {
        let store = StaleStore::new(64);
        for round in 0..10_000u64 {
            let key = format!("k{}", round % 8); // 8 keys << capacity
            store.record(&key, bytes(b"v"), round + 1);
            let inner = store.inner.lock().unwrap();
            assert!(
                inner.order.len() <= 2 * inner.entries.len().max(1),
                "round {round}: ring has {} slots for {} live entries",
                inner.order.len(),
                inner.entries.len()
            );
        }
        let inner = store.inner.lock().unwrap();
        assert_eq!(inner.entries.len(), 8);
        // Every retained entry is the freshest recording of its key.
        for i in 0..8u64 {
            let e = &inner.entries[&format!("k{i}")];
            assert!(e.cost > 10_000 - 8, "k{i} kept a stale generation");
        }
    }

    /// Compaction preserves recording order: once over capacity, the
    /// *oldest-recorded* live key is still the one evicted.
    #[test]
    fn stale_store_evicts_in_recording_order_after_compaction() {
        let store = StaleStore::new(3);
        // Churn "a" enough to force at least one compaction pass.
        for i in 0..32 {
            store.record("a", bytes(b"a"), i + 1);
        }
        store.record("b", bytes(b"b"), 100);
        store.record("c", bytes(b"c"), 100);
        // "a" is the oldest recording: a fourth key must evict it first.
        store.record("d", bytes(b"d"), 100);
        assert!(store.get("a").is_none(), "oldest-recorded key evicts first");
        for k in ["b", "c", "d"] {
            assert!(store.get(k).is_some(), "{k} must survive");
        }
        let inner = store.inner.lock().unwrap();
        assert!(inner.entries.len() <= 3);
    }

    /// A refreshed key's old slot is a tombstone; refreshing must keep
    /// the entry alive through evictions driven by later keys.
    #[test]
    fn rerecording_refreshes_a_keys_eviction_slot() {
        let store = StaleStore::new(2);
        store.record("x", bytes(b"1"), 1);
        store.record("y", bytes(b"1"), 1);
        store.record("x", bytes(b"2"), 2); // refresh: x now newer than y
        store.record("z", bytes(b"1"), 1); // evicts y, not x
        assert!(store.get("y").is_none());
        assert_eq!(store.get("x").map(|(v, _)| v.to_vec()), Some(b"2".to_vec()));
        assert!(store.get("z").is_some());
    }
}
