//! The cluster's consistent-hash ring: virtual nodes for balance,
//! rendezvous hashing to break point ties.
//!
//! Every cluster participant — each server node and every
//! [`ClusterClient`](crate::cluster::ClusterClient) — builds the same
//! [`Ring`] from the same `(members, vnodes, seed)` triple, so key
//! ownership is a pure function agreed on without coordination. Each
//! member is hashed onto the ring at [`vnodes`](Ring::vnodes) points;
//! a key belongs to the member owning the first point at or clockwise
//! of the key's own hash. Virtual nodes keep the arcs statistically
//! even (balance tightens as `vnodes` grows), and consistent hashing
//! gives the *minimal disruption* property: adding or removing one of
//! `N` members moves only ~`1/N` of the keyspace, never reshuffling
//! keys between two surviving members.
//!
//! Two members' virtual points can collide on the same ring position
//! (a 64-bit tie — astronomically rare, but the grammar of ownership
//! must still be total and deterministic). Ties are broken by
//! *rendezvous hashing*: among the tied members, the key goes to the
//! one maximizing `mix64(member_hash, key_hash)`, which is stable
//! across processes and independent of construction order.

use crate::backing::fnv1a;
use crate::resilience::mix64;

/// A consistent-hash ring over named members (node addresses, in the
/// cluster's case). Immutable once built: membership changes are
/// modeled by building a new ring, and the consistency property bounds
/// how much ownership such a rebuild can move.
#[derive(Debug, Clone)]
pub struct Ring {
    members: Vec<String>,
    /// `(ring position, member index)`, sorted by position.
    points: Vec<(u64, u32)>,
    vnodes: usize,
    seed: u64,
}

impl Ring {
    /// Builds the ring for `members` (duplicates collapse; order does
    /// not affect ownership) with `vnodes` virtual points per member.
    /// `seed` perturbs every hash, so distinct clusters sharing member
    /// names still shard differently; all participants of one cluster
    /// must agree on it.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty (after deduplication) or `vnodes`
    /// is zero.
    #[must_use]
    pub fn new(members: Vec<String>, vnodes: usize, seed: u64) -> Ring {
        assert!(vnodes > 0, "a ring needs at least one virtual node");
        let mut uniq: Vec<String> = Vec::with_capacity(members.len());
        for m in members {
            if !uniq.contains(&m) {
                uniq.push(m);
            }
        }
        assert!(!uniq.is_empty(), "a ring needs at least one member");
        let mut points = Vec::with_capacity(uniq.len() * vnodes);
        for (i, member) in uniq.iter().enumerate() {
            let base = mix64(seed, fnv1a(member));
            for v in 0..vnodes {
                points.push((
                    mix64(base, v as u64),
                    u32::try_from(i).expect("member count"),
                ));
            }
        }
        // Sort by position; the member index tiebreak only fixes the
        // *layout* of collided points (lookup re-breaks ties by
        // rendezvous, so construction order still cannot matter).
        points.sort_unstable();
        Ring {
            members: uniq,
            points,
            vnodes,
            seed,
        }
    }

    /// The members, deduplicated, in construction order. Member indices
    /// returned by [`owner_index`](Self::owner_index) and
    /// [`replicas`](Self::replicas) index into this slice.
    #[must_use]
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members (never true: construction
    /// requires one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Virtual points per member.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The ring's hash seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The ring position of `key`.
    #[must_use]
    fn key_point(&self, key: &str) -> u64 {
        mix64(self.seed, fnv1a(key))
    }

    /// The index (into [`members`](Self::members)) of the member owning
    /// `key`.
    #[must_use]
    pub fn owner_index(&self, key: &str) -> usize {
        let kp = self.key_point(key);
        let start = self.successor(kp);
        let tied = self.tie_run(start);
        if tied.len() == 1 {
            return usize::try_from(self.points[start].1).expect("member index");
        }
        // Rendezvous tie-break among the members whose points collide
        // at this exact position.
        let kh = fnv1a(key);
        tied.into_iter()
            .max_by_key(|&m| (mix64(fnv1a(&self.members[m]), kh), std::cmp::Reverse(m)))
            .expect("tie run is never empty")
    }

    /// The member owning `key`.
    #[must_use]
    pub fn owner(&self, key: &str) -> &str {
        &self.members[self.owner_index(key)]
    }

    /// Up to `r` *distinct* members for `key`, in ring preference
    /// order: the owner first, then each subsequent clockwise member.
    /// This is the replica set hot keys fan out over, and the re-route
    /// order when the owner is unreachable.
    #[must_use]
    pub fn replicas(&self, key: &str, r: usize) -> Vec<usize> {
        let want = r.min(self.members.len());
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        out.push(self.owner_index(key));
        let start = self.successor(self.key_point(key));
        for step in 1..=self.points.len() {
            if out.len() == want {
                break;
            }
            let idx = usize::try_from(self.points[(start + step) % self.points.len()].1)
                .expect("member index");
            if !out.contains(&idx) {
                out.push(idx);
            }
        }
        out
    }

    /// Index into `points` of the first point at or clockwise of `kp`.
    fn successor(&self, kp: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < kp);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// Member indices of every point sharing `points[start]`'s exact
    /// position (the tie run; length 1 in the non-collision case).
    fn tie_run(&self, start: usize) -> Vec<usize> {
        let pos = self.points[start].0;
        let n = self.points.len();
        let mut out = Vec::with_capacity(1);
        for step in 0..n {
            let (p, m) = self.points[(start + step) % n];
            if p != pos {
                break;
            }
            let m = usize::try_from(m).expect("member index");
            if !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }

    /// Test-only constructor with explicit ring points, for exercising
    /// the tie-break path that honest hashing essentially never hits.
    #[cfg(test)]
    fn with_points(members: Vec<String>, points: Vec<(u64, u32)>, seed: u64) -> Ring {
        let mut points = points;
        points.sort_unstable();
        Ring {
            members,
            points,
            vnodes: 1,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn four_nodes() -> Vec<String> {
        (1..=4).map(|i| format!("10.0.0.{i}:11311")).collect()
    }

    fn ownership(ring: &Ring, keys: usize) -> Vec<usize> {
        (0..keys)
            .map(|i| ring.owner_index(&format!("key:{i}")))
            .collect()
    }

    #[test]
    fn ownership_is_deterministic_for_a_fixed_seed() {
        let a = Ring::new(four_nodes(), 64, 7);
        let b = Ring::new(four_nodes(), 64, 7);
        for i in 0..4096 {
            let k = format!("key:{i}");
            assert_eq!(a.owner(&k), b.owner(&k), "owner of {k} must be stable");
        }
        // Construction order must not matter either.
        let mut rev = four_nodes();
        rev.reverse();
        let c = Ring::new(rev, 64, 7);
        for i in 0..4096 {
            let k = format!("key:{i}");
            assert_eq!(a.owner(&k), c.owner(&k), "owner of {k} is order-dependent");
        }
        // A pinned sample: any change to the hash chain is a breaking
        // cluster event (old and new nodes would disagree on ownership),
        // so it must show up as a test failure, not a silent remap.
        let sample: Vec<&str> = (0..8).map(|i| a.owner(&format!("key:{i}"))).collect();
        assert_eq!(
            sample,
            vec![
                "10.0.0.3:11311",
                "10.0.0.2:11311",
                "10.0.0.4:11311",
                "10.0.0.2:11311",
                "10.0.0.3:11311",
                "10.0.0.2:11311",
                "10.0.0.4:11311",
                "10.0.0.4:11311",
            ]
        );
    }

    #[test]
    fn different_seeds_shard_differently() {
        let a = Ring::new(four_nodes(), 64, 1);
        let b = Ring::new(four_nodes(), 64, 2);
        let differing = (0..1024)
            .filter(|i| {
                let k = format!("key:{i}");
                a.owner(&k) != b.owner(&k)
            })
            .count();
        assert!(
            differing > 256,
            "seeds 1 and 2 agree on too much: {differing}"
        );
    }

    #[test]
    fn virtual_nodes_balance_within_15_percent_across_4_nodes() {
        // Arc-length variance shrinks like 1/sqrt(vnodes): 512 points
        // per member keeps every seed we sampled under 10% deviation
        // (at 128 an unlucky seed can stray past 15%).
        let ring = Ring::new(four_nodes(), 512, 42);
        let keys = 40_000;
        let mut counts = [0usize; 4];
        for o in ownership(&ring, keys) {
            counts[o] += 1;
        }
        let mean = keys as f64 / 4.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - mean).abs() / mean;
            assert!(
                dev <= 0.15,
                "node {i} holds {c} of {keys} keys ({:.1}% off the mean)",
                dev * 100.0
            );
        }
    }

    #[test]
    fn join_moves_at_most_its_fair_share() {
        let keys = 20_000;
        let before = Ring::new(four_nodes(), 128, 42);
        let mut five = four_nodes();
        five.push("10.0.0.5:11311".to_owned());
        let after = Ring::new(five, 128, 42);
        let owners_before = ownership(&before, keys);
        let owners_after = ownership(&after, keys);
        let mut moved = 0;
        for i in 0..keys {
            if before.members()[owners_before[i]] != after.members()[owners_after[i]] {
                moved += 1;
                // Consistency: a key that moved can only have moved TO
                // the new node — never between survivors.
                assert_eq!(
                    after.members()[owners_after[i]],
                    "10.0.0.5:11311",
                    "key:{i} reshuffled between surviving nodes"
                );
            }
        }
        let fair = keys as f64 / 5.0;
        assert!(moved > 0, "a joining node must take some keys");
        assert!(
            (moved as f64) <= fair * 1.15,
            "join moved {moved} keys; fair share is {fair:.0} (+15%)"
        );
    }

    #[test]
    fn leave_moves_only_the_departed_nodes_keys() {
        let keys = 20_000;
        let before = Ring::new(four_nodes(), 128, 42);
        let survivors: Vec<String> = four_nodes().into_iter().take(3).collect();
        let after = Ring::new(survivors, 128, 42);
        let mut moved = 0;
        for i in 0..keys {
            let k = format!("key:{i}");
            if before.owner(&k) != after.owner(&k) {
                moved += 1;
                assert_eq!(
                    before.owner(&k),
                    "10.0.0.4:11311",
                    "{k} moved but its old owner survived"
                );
            }
        }
        let fair = keys as f64 / 4.0;
        assert!(moved > 0);
        assert!(
            (moved as f64) <= fair * 1.15,
            "leave moved {moved} keys; the departed node's share is {fair:.0} (+15%)"
        );
    }

    #[test]
    fn replicas_are_distinct_and_start_with_the_owner() {
        let ring = Ring::new(four_nodes(), 64, 7);
        for i in 0..256 {
            let k = format!("key:{i}");
            for r in 1..=5 {
                let reps = ring.replicas(&k, r);
                assert_eq!(reps.len(), r.min(4));
                assert_eq!(reps[0], ring.owner_index(&k));
                let mut sorted = reps.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), reps.len(), "{k}: replicas must be distinct");
            }
        }
    }

    #[test]
    fn replica_sets_are_nested_by_r() {
        // replicas(k, r) must be a prefix of replicas(k, r+1): hot-key
        // fan-out growing R must not re-home traffic already placed.
        let ring = Ring::new(four_nodes(), 64, 7);
        for i in 0..64 {
            let k = format!("key:{i}");
            let four = ring.replicas(&k, 4);
            for r in 1..4 {
                assert_eq!(ring.replicas(&k, r), four[..r], "{k} at r={r}");
            }
        }
    }

    #[test]
    fn point_ties_break_by_rendezvous_not_layout() {
        // Both members collide at position 100 (and nothing else is
        // below u64::MAX/2), so every low-hashing key lands on the tie.
        let members = vec!["alpha".to_owned(), "beta".to_owned()];
        let a = Ring::with_points(
            members.clone(),
            vec![(100, 0), (100, 1), (u64::MAX / 2, 0), (u64::MAX / 2 + 1, 1)],
            0,
        );
        // Layout order flipped: rendezvous must produce the same owner.
        let b = Ring::with_points(
            members.clone(),
            vec![(100, 1), (100, 0), (u64::MAX / 2, 0), (u64::MAX / 2 + 1, 1)],
            0,
        );
        let mut hits: HashMap<String, usize> = HashMap::new();
        let mut tested = 0;
        for i in 0..512 {
            let k = format!("key:{i}");
            let kp = a.key_point(&k);
            if kp > 100 && kp <= u64::MAX / 2 + 1 {
                continue; // lands on a non-tied point
            }
            tested += 1;
            assert_eq!(a.owner(&k), b.owner(&k), "{k}: tie-break depends on layout");
            *hits.entry(a.owner(&k).to_owned()).or_default() += 1;
        }
        // mix64(seed, fnv1a(key)) is tiny for *some* keys.
        assert!(tested > 0, "no key exercised the tie run");
        // Rendezvous splits tied keys between both members rather than
        // always favoring one layout slot.
        if tested >= 8 {
            assert!(hits.len() == 2, "tie always resolved one way: {hits:?}");
        }
    }

    #[test]
    fn duplicate_members_collapse() {
        let ring = Ring::new(vec!["a".into(), "b".into(), "a".into()], 16, 0);
        assert_eq!(ring.members(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(ring.replicas("k", 8).len(), 2);
    }
}
