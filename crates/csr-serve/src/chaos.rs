//! Deterministic network fault injection: a seeded in-process TCP proxy.
//!
//! [`ChaosProxy`] sits between a client and a server on loopback and
//! injects faults per connection from a **seeded plan**: immediate
//! connection resets, mid-stream resets and truncations, single-byte
//! corruption, stalls (slowloris in either direction), partial writes,
//! per-direction bandwidth throttling, and timed full partitions
//! ([`set_partitioned`](ChaosProxy::set_partitioned)). Every injected
//! fault increments a counter, so tests assert *what actually happened*
//! — e.g. that the client's reconnect count matches the number of
//! connections the proxy killed — instead of assuming the chaos fired.
//!
//! # Determinism
//!
//! Connection `n`'s fault plan is drawn from
//! `SplitMix64::new(mix64(seed, n))` in a fixed order, and every fault
//! position is an **absolute byte offset** into the direction's stream,
//! so the injected-fault sequence depends only on `(seed, config, the
//! bytes relayed)` — never on TCP chunking or thread timing. Same seed +
//! same workload ⇒ same faults, the property the chaos determinism tests
//! pin down. (The one exception: [`ChaosSnapshot::shaped_chunks`] counts
//! write pieces, which do depend on read chunking.)
//!
//! # Scope
//!
//! This is a *test* tool for this crate's own robustness claims — it
//! relays one TCP hop on loopback with blocking threads (two per
//! connection), which is plenty for the loadgen's worker counts and
//! keeps the implementation dependency-free.

use crate::resilience::mix64;
use mem_trace::rng::SplitMix64;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault rates and shapes for a [`ChaosProxy`]. All rates are
/// per-connection probabilities in `[0, 1]`; the default is a transparent
/// proxy (every rate zero).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the per-connection fault plans.
    pub seed: u64,
    /// Probability a connection is reset immediately on accept, before
    /// any byte is relayed.
    pub reset_rate: f64,
    /// Probability the server→client stream is cut (connection killed)
    /// at a random byte offset mid-reply.
    pub mid_reset_rate: f64,
    /// Probability one relayed byte is corrupted (XOR with a nonzero
    /// mask) at a random offset — usually server→client, sometimes
    /// client→server.
    pub corrupt_rate: f64,
    /// Probability the server→client stream is silently truncated at a
    /// random offset (bytes dropped, then the connection closed).
    pub truncate_rate: f64,
    /// Probability the relay stalls ([`stall`](Self::stall) long) at a
    /// random offset — a mid-stream slowloris in either direction.
    pub stall_rate: f64,
    /// How long a stall pauses the relay.
    pub stall: Duration,
    /// Fixed extra delay before every relayed write (both directions);
    /// zero disables.
    pub delay: Duration,
    /// Bandwidth cap in bytes/second (both directions); zero disables.
    pub throttle_bytes_per_sec: u64,
    /// Probability the server→client direction is relayed in tiny
    /// (1–7 byte) writes, exercising partial-read handling.
    pub partial_write_rate: f64,
    /// Fault offsets are drawn uniformly from `[0, fault_window)` bytes
    /// into the direction's stream; faults beyond the stream's actual
    /// length simply never fire.
    pub fault_window: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            reset_rate: 0.0,
            mid_reset_rate: 0.0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(100),
            delay: Duration::ZERO,
            throttle_bytes_per_sec: 0,
            partial_write_rate: 0.0,
            fault_window: 2048,
        }
    }
}

/// A snapshot of every fault the proxy has injected so far
/// ([`ChaosProxy::counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSnapshot {
    /// Connections accepted and relayed (excludes partition rejects).
    pub connections: u64,
    /// Connections reset immediately on accept.
    pub resets: u64,
    /// Connections cut mid-stream by a planned mid-reply reset.
    pub mid_resets: u64,
    /// Connections cut mid-stream by a planned truncation.
    pub truncations: u64,
    /// Bytes corrupted (one per planned corruption that fired).
    pub corruptions: u64,
    /// Planned stalls that fired.
    pub stalls: u64,
    /// Write pieces produced by partial-write shaping (chunking-
    /// dependent; every other counter is deterministic for a seed).
    pub shaped_chunks: u64,
    /// Connections dropped on accept while partitioned.
    pub partition_rejects: u64,
    /// Live connections severed by entering a partition.
    pub partition_cuts: u64,
    /// Accepted connections dropped because the upstream connect failed.
    pub upstream_failures: u64,
}

impl ChaosSnapshot {
    /// Total faults injected, across every class.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.resets
            + self.mid_resets
            + self.truncations
            + self.corruptions
            + self.stalls
            + self.partition_rejects
            + self.partition_cuts
            + self.upstream_failures
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    resets: AtomicU64,
    mid_resets: AtomicU64,
    truncations: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
    shaped_chunks: AtomicU64,
    partition_rejects: AtomicU64,
    partition_cuts: AtomicU64,
    upstream_failures: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ChaosSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Acquire);
        ChaosSnapshot {
            connections: get(&self.connections),
            resets: get(&self.resets),
            mid_resets: get(&self.mid_resets),
            truncations: get(&self.truncations),
            corruptions: get(&self.corruptions),
            stalls: get(&self.stalls),
            shaped_chunks: get(&self.shaped_chunks),
            partition_rejects: get(&self.partition_rejects),
            partition_cuts: get(&self.partition_cuts),
            upstream_failures: get(&self.upstream_failures),
        }
    }
}

/// How a planned mid-stream cut presents to the peer.
#[derive(Clone, Copy)]
enum Cut {
    /// Forward everything before the offset, then kill the connection.
    Reset,
    /// Same wire behavior, counted separately: models a reply truncated
    /// in flight.
    Truncate,
}

/// One direction's fault plan; every position is an absolute byte offset
/// into this direction's relayed stream.
#[derive(Clone, Copy)]
struct DirPlan {
    corrupt_at: Option<(u64, u8)>,
    cut_at: Option<(u64, Cut)>,
    stall_at: Option<u64>,
    stall: Duration,
    chunk: Option<usize>,
    delay: Duration,
    throttle_bps: u64,
}

impl DirPlan {
    /// Drops faults that a cut earlier in the stream makes unreachable,
    /// so counters stay chunking-independent (a stall planned after the
    /// cut offset must never fire, even when both land in one read).
    fn normalize(mut self) -> Self {
        if let Some((cut, _)) = self.cut_at {
            if self.corrupt_at.is_some_and(|(at, _)| at >= cut) {
                self.corrupt_at = None;
            }
            if self.stall_at.is_some_and(|at| at >= cut) {
                self.stall_at = None;
            }
        }
        self
    }
}

struct ConnPlan {
    reset: bool,
    c2s: DirPlan,
    s2c: DirPlan,
}

impl ConnPlan {
    /// Draws connection `n`'s plan. Every coin and value is drawn
    /// unconditionally, in a fixed order, so one fault class's rate
    /// never shifts another's positions.
    fn draw(rng: &mut SplitMix64, cfg: &ChaosConfig) -> Self {
        let window = cfg.fault_window.max(1);
        let reset = rng.chance(cfg.reset_rate);
        let mid_reset = rng.chance(cfg.mid_reset_rate);
        let mid_reset_at = rng.below(window);
        let corrupt = rng.chance(cfg.corrupt_rate);
        let corrupt_at = rng.below(window);
        #[allow(clippy::cast_possible_truncation)]
        let corrupt_mask = (1 + rng.below(255)) as u8;
        let corrupt_c2s = rng.chance(0.25);
        let truncate = rng.chance(cfg.truncate_rate);
        let truncate_at = rng.below(window);
        let stall = rng.chance(cfg.stall_rate);
        let stall_at = rng.below(window);
        let stall_c2s = rng.chance(0.25);
        let partial = rng.chance(cfg.partial_write_rate);
        #[allow(clippy::cast_possible_truncation)]
        let chunk = (1 + rng.below(7)) as usize;

        // Mid-reply cuts hit the server→client stream; when both a
        // mid-reset and a truncation are drawn, the earlier offset wins.
        let cut_at = match (mid_reset, truncate) {
            (true, true) if truncate_at < mid_reset_at => Some((truncate_at, Cut::Truncate)),
            (true, _) => Some((mid_reset_at, Cut::Reset)),
            (false, true) => Some((truncate_at, Cut::Truncate)),
            (false, false) => None,
        };
        let shared = DirPlan {
            corrupt_at: None,
            cut_at: None,
            stall_at: None,
            stall: cfg.stall,
            chunk: None,
            delay: cfg.delay,
            throttle_bps: cfg.throttle_bytes_per_sec,
        };
        let mut c2s = shared;
        let mut s2c = shared;
        s2c.cut_at = cut_at;
        s2c.chunk = partial.then_some(chunk);
        let corrupt_dir = if corrupt_c2s { &mut c2s } else { &mut s2c };
        corrupt_dir.corrupt_at = corrupt.then_some((corrupt_at, corrupt_mask));
        let stall_dir = if stall_c2s { &mut c2s } else { &mut s2c };
        stall_dir.stall_at = stall.then_some(stall_at);
        ConnPlan {
            reset,
            c2s: c2s.normalize(),
            s2c: s2c.normalize(),
        }
    }
}

/// Live connections registered for severing: `(conn_index, client-side
/// socket, upstream-side socket)`.
type ConnRegistry = Arc<Mutex<Vec<(u64, TcpStream, TcpStream)>>>;

/// A seeded fault-injecting TCP proxy on loopback. See the [module
/// docs](self) for the fault model.
///
/// Start one with [`start`](Self::start), point clients at
/// [`addr`](Self::addr), and read back what it did with
/// [`counters`](Self::counters). Dropping the proxy severs every live
/// connection and joins its threads.
pub struct ChaosProxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    partitioned: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    conns: ConnRegistry,
    supervisors: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a listener on `127.0.0.1:0` and starts relaying to
    /// `upstream` with `config`'s faults.
    ///
    /// # Errors
    ///
    /// Binding the listener can fail.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = Arc::new(Mutex::new(upstream));
        let partitioned = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let conns = Arc::new(Mutex::new(Vec::new()));
        let supervisors = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let upstream = Arc::clone(&upstream);
            let partitioned = Arc::clone(&partitioned);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let conns = Arc::clone(&conns);
            let supervisors = Arc::clone(&supervisors);
            std::thread::spawn(move || {
                accept_loop(
                    &listener,
                    &config,
                    &upstream,
                    &partitioned,
                    &shutdown,
                    &counters,
                    &conns,
                    &supervisors,
                );
            })
        };
        Ok(ChaosProxy {
            addr,
            upstream,
            partitioned,
            shutdown,
            counters,
            conns,
            supervisors,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listen address — point clients here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Everything injected so far.
    #[must_use]
    pub fn counters(&self) -> ChaosSnapshot {
        self.counters.snapshot()
    }

    /// Enters (`true`) or leaves (`false`) a full partition. Entering
    /// severs every live connection (counted as
    /// [`partition_cuts`](ChaosSnapshot::partition_cuts)) and drops new
    /// ones on accept (counted as
    /// [`partition_rejects`](ChaosSnapshot::partition_rejects)) until
    /// the partition is lifted.
    pub fn set_partitioned(&self, on: bool) {
        self.partitioned.store(on, Ordering::Release);
        if on {
            for (_, client, server) in self.conns.lock().expect("chaos conns poisoned").iter() {
                sever(client, server);
                self.counters.partition_cuts.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Re-points the proxy at a new upstream address — e.g. a restarted
    /// server on a different port. Only affects connections accepted
    /// after the call.
    pub fn set_upstream(&self, upstream: SocketAddr) {
        *self.upstream.lock().expect("chaos upstream poisoned") = upstream;
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for (_, client, server) in self.conns.lock().expect("chaos conns poisoned").iter() {
            sever(client, server);
        }
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self
            .supervisors
            .lock()
            .expect("chaos supervisors poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn sever(client: &TcpStream, server: &TcpStream) {
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    config: &ChaosConfig,
    upstream: &Mutex<SocketAddr>,
    partitioned: &AtomicBool,
    shutdown: &AtomicBool,
    counters: &Arc<Counters>,
    conns: &ConnRegistry,
    supervisors: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut conn_index = 0u64;
    loop {
        let (client, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) if shutdown.load(Ordering::Acquire) => return,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        if partitioned.load(Ordering::Acquire) {
            counters.partition_rejects.fetch_add(1, Ordering::AcqRel);
            continue; // dropping the socket closes it
        }
        let n = conn_index;
        conn_index += 1;
        let mut rng = SplitMix64::new(mix64(config.seed, n));
        let plan = ConnPlan::draw(&mut rng, config);
        counters.connections.fetch_add(1, Ordering::AcqRel);
        if plan.reset {
            counters.resets.fetch_add(1, Ordering::AcqRel);
            continue; // dropped before any relay: the peer sees a dead conn
        }
        let upstream_addr = *upstream.lock().expect("chaos upstream poisoned");
        let server = match TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(2)) {
            Ok(server) => server,
            Err(_) => {
                counters.upstream_failures.fetch_add(1, Ordering::AcqRel);
                continue;
            }
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        conns
            .lock()
            .expect("chaos conns poisoned")
            .push((n, client, server));
        let supervisor = {
            let counters_a = Arc::clone(counters);
            let counters_b = Arc::clone(counters);
            let conns = Arc::clone(conns);
            std::thread::spawn(move || {
                let (Ok(server_w), Ok(client_w)) = (server_r.try_clone(), client_r.try_clone())
                else {
                    conns
                        .lock()
                        .expect("chaos conns poisoned")
                        .retain(|(id, ..)| *id != n);
                    return;
                };
                let c2s =
                    std::thread::spawn(move || relay(client_r, server_w, plan.c2s, &counters_a));
                let s2c =
                    std::thread::spawn(move || relay(server_r, client_w, plan.s2c, &counters_b));
                let _ = c2s.join();
                let _ = s2c.join();
                conns
                    .lock()
                    .expect("chaos conns poisoned")
                    .retain(|(id, ..)| *id != n);
            })
        };
        supervisors
            .lock()
            .expect("chaos supervisors poisoned")
            .push(supervisor);
    }
}

/// Relays one direction, applying the plan's faults at their absolute
/// byte offsets.
fn relay(mut from: TcpStream, mut to: TcpStream, plan: DirPlan, counters: &Counters) {
    let mut buf = [0u8; 2048];
    let mut offset = 0u64;
    let mut stalled = false;
    loop {
        let n = match from.read(&mut buf) {
            // EOF: propagate the half-close and let the other relay run.
            Ok(0) => {
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(_) => {
                sever(&from, &to);
                return;
            }
        };
        let chunk = &mut buf[..n];
        let end = offset + n as u64;
        if let Some(at) = plan.stall_at {
            if !stalled && at >= offset && at < end {
                stalled = true;
                counters.stalls.fetch_add(1, Ordering::AcqRel);
                std::thread::sleep(plan.stall);
            }
        }
        if let Some((at, mask)) = plan.corrupt_at {
            if at >= offset && at < end {
                #[allow(clippy::cast_possible_truncation)]
                let idx = (at - offset) as usize;
                chunk[idx] ^= mask;
                counters.corruptions.fetch_add(1, Ordering::AcqRel);
            }
        }
        if let Some((at, cut)) = plan.cut_at {
            if at < end {
                #[allow(clippy::cast_possible_truncation)]
                let keep = at.saturating_sub(offset) as usize;
                let _ = write_shaped(&mut to, &chunk[..keep], &plan, counters);
                match cut {
                    Cut::Reset => counters.mid_resets.fetch_add(1, Ordering::AcqRel),
                    Cut::Truncate => counters.truncations.fetch_add(1, Ordering::AcqRel),
                };
                sever(&from, &to);
                return;
            }
        }
        if write_shaped(&mut to, chunk, &plan, counters).is_err() {
            sever(&from, &to);
            return;
        }
        offset = end;
    }
}

/// Writes `data` through the direction's shaping: partial-write
/// chunking, fixed per-write delay, and bandwidth throttling.
fn write_shaped(
    to: &mut TcpStream,
    data: &[u8],
    plan: &DirPlan,
    counters: &Counters,
) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    let piece = plan.chunk.unwrap_or(data.len());
    for part in data.chunks(piece) {
        if !plan.delay.is_zero() {
            std::thread::sleep(plan.delay);
        }
        to.write_all(part)?;
        if plan.chunk.is_some() {
            counters.shaped_chunks.fetch_add(1, Ordering::AcqRel);
            to.flush()?;
        }
        if plan.throttle_bps > 0 {
            #[allow(clippy::cast_precision_loss)]
            let pause = part.len() as f64 / plan.throttle_bps as f64;
            std::thread::sleep(Duration::from_secs_f64(pause));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// An echo server good for one connection: reads until EOF, echoing
    /// everything back.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = match listener.accept() {
                Ok(conn) => conn,
                Err(_) => return,
            };
            let mut buf = [0u8; 1024];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => {
                        if conn.write_all(&buf[..n]).is_err() {
                            return;
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn transparent_proxy_relays_bytes_faithfully() {
        let (upstream, echo) = echo_server();
        let proxy = ChaosProxy::start(upstream, ChaosConfig::default()).expect("start proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        conn.write_all(&payload).expect("write");
        let mut back = vec![0u8; payload.len()];
        conn.read_exact(&mut back).expect("read echo");
        assert_eq!(back, payload, "transparent proxy must not alter bytes");
        let snap = proxy.counters();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.injected_total(), 0, "no faults configured: {snap:?}");
        drop(conn);
        drop(proxy);
        let _ = echo.join();
    }

    #[test]
    fn immediate_resets_are_injected_and_counted() {
        let (upstream, echo) = echo_server();
        let config = ChaosConfig {
            reset_rate: 1.0,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::start(upstream, config).expect("start proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = conn.write_all(b"ping");
        // The proxy drops the socket without relaying: the read must end
        // in EOF or a reset error, never data.
        let mut buf = [0u8; 16];
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("reset connection returned {n} bytes"),
        }
        let t0 = Instant::now();
        while proxy.counters().resets == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(proxy.counters().resets, 1);
        drop(proxy);
        // The echo server never saw a connection; unblock its accept.
        let _ = TcpStream::connect(upstream);
        let _ = echo.join();
    }

    #[test]
    fn partition_rejects_new_connections_until_lifted() {
        let (upstream, echo) = echo_server();
        let proxy = ChaosProxy::start(upstream, ChaosConfig::default()).expect("start proxy");
        proxy.set_partitioned(true);
        let mut conn = TcpStream::connect(proxy.addr()).expect("tcp connect still lands");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = conn.write_all(b"ping");
        let mut buf = [0u8; 16];
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("partitioned proxy relayed {n} bytes"),
        }
        let t0 = Instant::now();
        while proxy.counters().partition_rejects == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(proxy.counters().partition_rejects >= 1);

        proxy.set_partitioned(false);
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect after heal");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"hello").expect("write");
        let mut back = [0u8; 5];
        conn.read_exact(&mut back).expect("echo after heal");
        assert_eq!(&back, b"hello");
        drop(conn);
        drop(proxy);
        let _ = echo.join();
    }

    #[test]
    fn plans_are_deterministic_per_seed_and_independent_of_other_rates() {
        let cfg = ChaosConfig {
            seed: 42,
            reset_rate: 0.2,
            mid_reset_rate: 0.3,
            corrupt_rate: 0.3,
            truncate_rate: 0.2,
            stall_rate: 0.2,
            ..ChaosConfig::default()
        };
        for n in 0..64u64 {
            let mut a = SplitMix64::new(mix64(cfg.seed, n));
            let mut b = SplitMix64::new(mix64(cfg.seed, n));
            let pa = ConnPlan::draw(&mut a, &cfg);
            let pb = ConnPlan::draw(&mut b, &cfg);
            assert_eq!(pa.reset, pb.reset);
            assert_eq!(pa.s2c.corrupt_at, pb.s2c.corrupt_at);
            assert_eq!(pa.s2c.stall_at, pb.s2c.stall_at);
            assert_eq!(
                pa.s2c.cut_at.map(|(at, _)| at),
                pb.s2c.cut_at.map(|(at, _)| at)
            );
        }
    }
}
