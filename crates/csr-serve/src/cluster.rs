//! Cluster mode: consistent-hash routing, peer forwarding, and hot-key
//! replication over the single-node server and clients.
//!
//! # Model
//!
//! A cluster is a fixed membership list of [`ClusterNode`]s, each a
//! `(id, addr)` pair. Every node and every client builds the *same*
//! [`Ring`] over the node **ids** (a pure function of the membership,
//! the virtual-node count, and a seed), so ownership is agreed upon
//! without any coordination protocol. The `id`/`addr` split matters for
//! fault injection: a chaos proxy can front a node's `addr` while the
//! ring keeps hashing its stable `id`.
//!
//! Three mechanisms share that ring:
//!
//! * **Server-side peer forwarding** ([`PeerRouter`]): a node that
//!   receives a `GET` for a key it does not own fetches the value from
//!   the owner over the internal `FGET` verb — **one hop max**: an
//!   `FGET` is always answered locally, never re-forwarded, never
//!   `MOVED`, so forwarding cannot loop. The forwarded fetch is timed
//!   and charged as the entry's miss cost, so the cost-sensitive
//!   policies rank peer-filled entries (one loopback hop, ~10²µs) below
//!   origin-filled ones (~10³-10⁴µs) and evict them first — the paper's
//!   non-uniform miss-cost regime arising naturally from topology.
//!   Forwarded values are cached locally, which *is* the hot-key
//!   replication mechanism: the next `GET` for that key on this node is
//!   a local hit. When the owner is unreachable, the node falls back to
//!   its own origin fetch — availability under partition — and when
//!   forwarding is disabled it replies `MOVED <addr>` instead.
//!
//! * **Client-side routing** ([`ClusterClient`]): each key's `GET` goes
//!   to its ring owner; a sampled count-min sketch ([`FreqSketch`])
//!   spots hot keys and fans their reads round-robin across the key's
//!   first R replicas (exploiting the server-side replication above);
//!   nodes that fail ops are marked unhealthy and traffic re-routes to
//!   the next replica in ring order until they recover.
//!
//! * **Coherence (best effort)**: `SET` stores on the owner and then
//!   broadcasts a `DEL` to every other node so previously forwarded
//!   copies cannot serve the old value; `DEL` broadcasts everywhere.
//!   This is cache-aside semantics, not a consistency protocol — a
//!   racing forward can still resurrect a just-overwritten value until
//!   the next write.

use crate::client::{Client, FailoverClient, FailoverConfig, Moved, OriginError, Timeouts, Value};
use crate::resilience::{mix64, BackoffSchedule};
use crate::ring::Ring;
use csr_obs::{Counter, Histogram, Registry, TraceContext};
use std::collections::HashSet;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One cluster member: a stable ring identity plus the address to dial.
///
/// The ring hashes `id`, the sockets dial `addr`. They usually coincide,
/// but splitting them lets a chaos proxy (or a load balancer) front the
/// `addr` without changing key ownership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterNode {
    /// Stable ring identity (what the consistent hash sees).
    pub id: String,
    /// Dialable address, e.g. `127.0.0.1:11321`.
    pub addr: String,
}

impl ClusterNode {
    /// A node whose ring id *is* its address — the common case.
    #[must_use]
    pub fn addr_only(addr: impl Into<String>) -> ClusterNode {
        let addr = addr.into();
        ClusterNode {
            id: addr.clone(),
            addr,
        }
    }

    /// Parses `id=addr` (split identity) or a bare `addr` (id = addr),
    /// the grammar of the `--peers` flag and loadgen's `--cluster`.
    #[must_use]
    pub fn parse(spec: &str) -> ClusterNode {
        match spec.split_once('=') {
            Some((id, addr)) => ClusterNode {
                id: id.to_owned(),
                addr: addr.to_owned(),
            },
            None => ClusterNode::addr_only(spec),
        }
    }
}

/// Parses a comma-separated list of [`ClusterNode::parse`] specs,
/// skipping empty items.
#[must_use]
pub fn parse_nodes(list: &str) -> Vec<ClusterNode> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(ClusterNode::parse)
        .collect()
}

// ---------------------------------------------------------------------------
// Hot-key detection

/// A sampled count-min sketch over key frequencies.
///
/// Four rows of `width` saturating `u32` counters; a key's estimate is
/// the minimum over its four row cells, so collisions only ever
/// *overestimate*. Observations are sampled (`sample_every`) to keep the
/// per-op cost at a hash most of the time, and the whole sketch halves
/// periodically ([`decay`](Self::decay)) so yesterday's hot key cools
/// off — the same aging idea the cache policies use for recency.
pub struct FreqSketch {
    rows: Vec<Vec<u32>>,
    mask: u64,
    sample_every: u32,
    seen: u32,
}

const SKETCH_ROWS: u64 = 4;

impl FreqSketch {
    /// A sketch with `width` counters per row (rounded up to a power of
    /// two, min 16), observing every `sample_every`-th call (`0` and `1`
    /// both mean every call).
    #[must_use]
    pub fn new(width: usize, sample_every: u32) -> FreqSketch {
        let width = width.max(16).next_power_of_two();
        FreqSketch {
            rows: (0..SKETCH_ROWS as usize)
                .map(|_| vec![0u32; width])
                .collect(),
            mask: width as u64 - 1,
            sample_every: sample_every.max(1),
            seen: 0,
        }
    }

    fn cell(&self, row: u64, key: &str) -> usize {
        let h = mix64(crate::backing::fnv1a(key), row + 1);
        usize::try_from(h & self.mask).expect("mask fits usize")
    }

    /// Counts one occurrence of `key` if this call is on the sampling
    /// cadence, then returns the (possibly updated) estimate.
    pub fn observe(&mut self, key: &str) -> u32 {
        self.seen = self.seen.wrapping_add(1);
        if self.seen.is_multiple_of(self.sample_every) {
            for row in 0..SKETCH_ROWS {
                let c = self.cell(row, key);
                let cell = &mut self.rows[usize::try_from(row).expect("tiny")][c];
                *cell = cell.saturating_add(1);
            }
        }
        self.estimate(key)
    }

    /// The current (over-)estimate of `key`'s sampled count.
    #[must_use]
    pub fn estimate(&self, key: &str) -> u32 {
        (0..SKETCH_ROWS)
            .map(|row| self.rows[usize::try_from(row).expect("tiny")][self.cell(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter (aging).
    pub fn decay(&mut self) {
        for row in &mut self.rows {
            for cell in row {
                *cell /= 2;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client side

/// Tuning for a [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct ClusterClientConfig {
    /// Virtual nodes per member (must match the servers').
    pub vnodes: usize,
    /// Ring seed (must match the servers').
    pub seed: u64,
    /// Replicas a hot key's reads fan out across (1 disables fan-out).
    pub hot_replicas: usize,
    /// Sketch sampling cadence: observe every Nth `get`.
    pub hot_sample_every: u32,
    /// Sampled-count estimate at which a key is considered hot.
    pub hot_threshold: u32,
    /// Ops between sketch decays (halving); `0` disables decay.
    pub hot_decay_every: u64,
    /// Per-node failover tuning. Keep `max_attempts` small: in a
    /// cluster the healing path is *re-routing to another node*, not
    /// hammering a dead one — a partition then costs one tight timeout,
    /// not a retry storm.
    pub failover: FailoverConfig,
}

impl Default for ClusterClientConfig {
    /// 64 vnodes, fan hot keys across 2 replicas, hot = 16 sampled
    /// (1-in-8) hits per 4096-op window; 2 tight attempts per node.
    fn default() -> Self {
        ClusterClientConfig {
            vnodes: 64,
            seed: 0,
            hot_replicas: 2,
            hot_sample_every: 8,
            hot_threshold: 16,
            hot_decay_every: 4096,
            failover: FailoverConfig {
                timeouts: Timeouts {
                    connect: Duration::from_millis(1000),
                    read: Duration::from_millis(1000),
                    write: Duration::from_millis(1000),
                },
                backoff: BackoffSchedule {
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(20),
                },
                max_attempts: 2,
                probe_every: 4,
                seed: 0,
            },
        }
    }
}

/// The `csr_serve_cluster_*` families a [`ClusterClient`] feeds.
#[derive(Clone)]
pub struct ClusterMetrics {
    /// Keys whose sampled frequency crossed the hot threshold (counted
    /// once per hot episode, re-armed by decay).
    pub hot_key_promotions: Arc<Counter>,
    /// Ops served by a node other than the routed-to primary because of
    /// health (skips and mid-op failovers both count).
    pub reroutes: Arc<Counter>,
    /// Transitions of any node between healthy and unhealthy in the
    /// client's passive view.
    pub ring_flips: Arc<Counter>,
}

impl ClusterMetrics {
    /// Registers the cluster-client families in `registry`.
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        ClusterMetrics {
            hot_key_promotions: registry.counter(
                "csr_serve_cluster_hot_key_promotions_total",
                "Keys promoted to hot (reads fan out across replicas)",
                &[],
            ),
            reroutes: registry.counter(
                "csr_serve_cluster_reroutes_total",
                "Ops re-routed away from their primary node by passive health",
                &[],
            ),
            ring_flips: registry.counter(
                "csr_serve_cluster_ring_flips_total",
                "Node health transitions observed by the cluster client",
                &[],
            ),
        }
    }
}

/// A cluster-aware client: consistent-hash routing with hot-key fan-out
/// and partition-aware re-routing, one [`FailoverClient`] per node.
///
/// Reads route to the key's ring owner (or, for hot keys, round-robin
/// across its first R replicas); a node that fails an op is marked
/// unhealthy and subsequent reads prefer the next replicas in ring
/// order until it succeeds again. `MOVED` redirects are followed once.
/// Writes go to the owner, with best-effort `DEL` broadcast to the
/// other nodes so stale forwarded copies cannot linger (see the module
/// docs for the coherence caveats).
pub struct ClusterClient {
    ring: Ring,
    nodes: Vec<ClusterNode>,
    clients: Vec<FailoverClient>,
    /// Passive per-node health from this client's own op outcomes
    /// (distinct from each `FailoverClient`'s endpoint health: re-routing
    /// must not wait for a node's internal retries to exhaust).
    health: Vec<bool>,
    sketch: FreqSketch,
    /// Keys currently counted as promoted (cleared on decay so a
    /// still-hot key re-promotes once per window).
    hot_now: HashSet<String>,
    config: ClusterClientConfig,
    metrics: Option<ClusterMetrics>,
    ops: u64,
    /// Round-robin cursor for hot-key replica fan-out.
    rr: u64,
}

impl ClusterClient {
    /// A client over `nodes` (deduplicated by id; at least one required).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty after deduplication.
    #[must_use]
    pub fn new(nodes: Vec<ClusterNode>, config: ClusterClientConfig) -> ClusterClient {
        let mut uniq: Vec<ClusterNode> = Vec::with_capacity(nodes.len());
        for n in nodes {
            if !uniq.iter().any(|u| u.id == n.id) {
                uniq.push(n);
            }
        }
        assert!(!uniq.is_empty(), "a ClusterClient needs at least one node");
        let ring = Ring::new(
            uniq.iter().map(|n| n.id.clone()).collect(),
            config.vnodes,
            config.seed,
        );
        let clients = uniq
            .iter()
            .map(|n| FailoverClient::new(vec![n.addr.clone()], config.failover))
            .collect();
        let health = vec![true; uniq.len()];
        ClusterClient {
            ring,
            clients,
            health,
            sketch: FreqSketch::new(1024, config.hot_sample_every),
            hot_now: HashSet::new(),
            nodes: uniq,
            config,
            metrics: None,
            ops: 0,
            rr: 0,
        }
    }

    /// Attaches the `csr_serve_cluster_*` counters this client feeds.
    #[must_use]
    pub fn with_metrics(mut self, metrics: ClusterMetrics) -> ClusterClient {
        self.metrics = Some(metrics);
        self
    }

    /// The cluster membership, in ring order.
    #[must_use]
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// The node index owning `key` on the shared ring.
    #[must_use]
    pub fn owner_index(&self, key: &str) -> usize {
        self.ring.owner_index(key)
    }

    /// This client's passive view of node health, in `nodes()` order.
    #[must_use]
    pub fn node_health(&self) -> &[bool] {
        &self.health
    }

    /// Per-node `STATS` tables (node index, table) from every node that
    /// answers — the cluster-wide aggregation loadgen sums.
    pub fn stats_all(&mut self) -> Vec<(usize, Vec<(String, String)>)> {
        (0..self.clients.len())
            .filter_map(|i| self.clients[i].stats().ok().map(|t| (i, t)))
            .collect()
    }

    /// Per-node kept-trace rings (node index, JSONL body) from every node
    /// that answers — loadgen merges these fragments by trace id into the
    /// cluster-wide trace dump.
    pub fn traces_all(&mut self) -> Vec<(usize, String)> {
        (0..self.clients.len())
            .filter_map(|i| self.clients[i].traces().ok().map(|t| (i, t)))
            .collect()
    }

    /// Looks `key` up (idempotent; re-routes across nodes).
    ///
    /// # Errors
    ///
    /// The last node's error once every candidate failed, or a
    /// passed-through [`OriginError`] from a node that answered.
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.get_value(key)?.map(|v| v.data))
    }

    /// Looks `key` up with its reply flags (idempotent; re-routes).
    ///
    /// # Errors
    ///
    /// As [`get`](Self::get).
    pub fn get_value(&mut self, key: &str) -> io::Result<Option<Value>> {
        self.get_value_traced(key, None)
    }

    /// [`get_value`](Self::get_value) with an optional trace context on
    /// the request line — the serving node joins (or starts) that
    /// distributed trace and always retains it.
    ///
    /// # Errors
    ///
    /// As [`get`](Self::get).
    pub fn get_value_traced(
        &mut self,
        key: &str,
        trace: Option<TraceContext>,
    ) -> io::Result<Option<Value>> {
        self.tick();
        let primary = self.route(key);
        let candidates = self.candidates(key, primary);
        let mut last: Option<io::Error> = None;
        for &i in &candidates {
            if i != primary {
                self.count_reroute();
            }
            match self.clients[i].get_value_traced(key, trace) {
                Ok(v) => {
                    self.mark(i, true);
                    return Ok(v);
                }
                Err(e) if Moved::from_io(&e).is_some() => {
                    // The node is healthy (it answered) but forwarding is
                    // off; follow the redirect once.
                    self.mark(i, true);
                    let addr = Moved::from_io(&e).expect("checked").addr.clone();
                    match self.follow_moved(&addr, key) {
                        Ok(v) => return Ok(v),
                        Err(e2) => last = Some(e2),
                    }
                }
                Err(e) if is_origin_error(&e) => {
                    // The node answered inside intact framing: the origin
                    // is the problem, not the route.
                    self.mark(i, true);
                    return Err(e);
                }
                Err(e) => {
                    self.mark(i, false);
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no cluster node usable")))
    }

    /// Stores `key -> value` on its owner, then broadcasts a best-effort
    /// `DEL` to every other node so previously forwarded copies of the
    /// old value cannot be served (cache-aside invalidation).
    ///
    /// # Errors
    ///
    /// The owner's error; invalidation failures are swallowed (they only
    /// widen the staleness window the module docs already grant).
    pub fn set(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        self.tick();
        let owner = self.ring.owner_index(key);
        let result = self.clients[owner].set(key, value);
        self.mark(owner, result.is_ok());
        if result.is_ok() {
            for i in 0..self.clients.len() {
                if i != owner {
                    let _ = self.clients[i].del(key);
                }
            }
        }
        result
    }

    /// Deletes `key` on every node (owner and any forwarded copies);
    /// `true` if any node held it.
    ///
    /// # Errors
    ///
    /// The owner's error, if the owner failed; other nodes' failures are
    /// swallowed.
    pub fn del(&mut self, key: &str) -> io::Result<bool> {
        self.tick();
        let owner = self.ring.owner_index(key);
        let mut any = false;
        let mut owner_err: Option<io::Error> = None;
        for i in 0..self.clients.len() {
            match self.clients[i].del(key) {
                Ok(deleted) => {
                    self.mark(i, true);
                    any |= deleted;
                }
                Err(e) => {
                    self.mark(i, false);
                    if i == owner {
                        owner_err = Some(e);
                    }
                }
            }
        }
        match owner_err {
            Some(e) => Err(e),
            None => Ok(any),
        }
    }

    /// Closes all connections cleanly (best effort); the client remains
    /// usable.
    pub fn close(&mut self) {
        for c in &mut self.clients {
            c.close();
        }
    }

    /// Advances the op clock: sketch decay on its cadence.
    fn tick(&mut self) {
        self.ops += 1;
        if self.config.hot_decay_every > 0 && self.ops.is_multiple_of(self.config.hot_decay_every) {
            self.sketch.decay();
            self.hot_now.clear();
        }
    }

    /// The primary node for this `get`: the ring owner, or — for a hot
    /// key — a round-robin pick among its first R replicas.
    fn route(&mut self, key: &str) -> usize {
        let owner = self.ring.owner_index(key);
        if self.config.hot_replicas <= 1 || self.nodes.len() <= 1 {
            return owner;
        }
        let est = self.sketch.observe(key);
        if est < self.config.hot_threshold {
            return owner;
        }
        if self.hot_now.insert(key.to_owned()) {
            if let Some(m) = &self.metrics {
                m.hot_key_promotions.inc();
            }
        }
        let replicas = self.ring.replicas(key, self.config.hot_replicas);
        let pick = replicas[usize::try_from(self.rr % replicas.len() as u64).expect("small")];
        self.rr += 1;
        pick
    }

    /// Candidate nodes for a read, primary first, then the key's ring
    /// order — known-healthy nodes before known-unhealthy ones (which
    /// stay listed: when everything is down we still must try).
    fn candidates(&self, key: &str, primary: usize) -> Vec<usize> {
        let mut order = self.ring.replicas(key, self.nodes.len());
        order.retain(|&i| i != primary);
        order.insert(0, primary);
        let mut healthy: Vec<usize> = order.iter().copied().filter(|&i| self.health[i]).collect();
        let unhealthy = order.into_iter().filter(|&i| !self.health[i]);
        healthy.extend(unhealthy);
        healthy
    }

    /// Follows a `MOVED <addr>` redirect once: straight to `addr`, no
    /// further redirects accepted (mirrors the server's one-hop rule).
    fn follow_moved(&mut self, addr: &str, key: &str) -> io::Result<Option<Value>> {
        let Some(i) = self.nodes.iter().position(|n| n.addr == addr) else {
            return Err(io::Error::other(format!(
                "MOVED to {addr}, which is not in the cluster membership"
            )));
        };
        match self.clients[i].get_value(key) {
            Ok(v) => {
                self.mark(i, true);
                Ok(v)
            }
            Err(e) if Moved::from_io(&e).is_some() => {
                // A second redirect would be a routing disagreement loop.
                self.mark(i, true);
                Err(io::Error::other(format!(
                    "MOVED twice for {key:?}: ring disagreement between nodes"
                )))
            }
            Err(e) => {
                self.mark(i, !is_transport_error(&e));
                Err(e)
            }
        }
    }

    fn mark(&mut self, i: usize, healthy: bool) {
        if self.health[i] != healthy {
            self.health[i] = healthy;
            if let Some(m) = &self.metrics {
                m.ring_flips.inc();
            }
        }
    }

    fn count_reroute(&self) {
        if let Some(m) = &self.metrics {
            m.reroutes.inc();
        }
    }
}

fn is_origin_error(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<OriginError>())
}

fn is_transport_error(e: &io::Error) -> bool {
    !is_origin_error(e) && Moved::from_io(e).is_none()
}

// ---------------------------------------------------------------------------
// Server side

/// Server-side cluster configuration (one per node).
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// This node's ring id. Empty string: substitute the bound listen
    /// address at startup (the common single-machine case).
    pub node_id: String,
    /// The full membership, **including this node** (matched by id).
    pub nodes: Vec<ClusterNode>,
    /// Virtual nodes per member (must match clients and peers).
    pub vnodes: usize,
    /// Ring seed (must match clients and peers).
    pub seed: u64,
    /// `true`: answer non-owned `GET`s by forwarding to the owner;
    /// `false`: reply `MOVED <owner addr>` and let the client re-route.
    pub forward: bool,
    /// Socket deadlines for peer (`FGET`) connections — tight, so a
    /// partitioned owner costs one bounded timeout before the local
    /// origin fallback.
    pub timeouts: Timeouts,
    /// Pooled idle connections kept per peer.
    pub max_pool: usize,
}

impl Default for PeerConfig {
    /// Forwarding on; 500 ms peer deadlines; 4 pooled conns per peer.
    fn default() -> Self {
        PeerConfig {
            node_id: String::new(),
            nodes: Vec::new(),
            vnodes: 64,
            seed: 0,
            forward: true,
            timeouts: Timeouts {
                connect: Duration::from_millis(500),
                read: Duration::from_millis(500),
                write: Duration::from_millis(500),
            },
            max_pool: 4,
        }
    }
}

/// A node's view of the ring plus pooled connections to its peers: the
/// machinery behind server-side `GET` forwarding.
pub struct PeerRouter {
    ring: Ring,
    nodes: Vec<ClusterNode>,
    self_index: usize,
    pools: Vec<Mutex<Vec<Client>>>,
    timeouts: Timeouts,
    max_pool: usize,
    /// Whether non-owned `GET`s forward (`true`) or `MOVED` (`false`).
    pub forward: bool,
}

impl PeerRouter {
    /// Builds the router for `config` (nodes deduplicated by id).
    ///
    /// # Panics
    ///
    /// Panics if the membership is empty or does not contain
    /// `config.node_id`.
    #[must_use]
    pub fn new(config: &PeerConfig) -> PeerRouter {
        let mut uniq: Vec<ClusterNode> = Vec::with_capacity(config.nodes.len());
        for n in &config.nodes {
            if !uniq.iter().any(|u| u.id == n.id) {
                uniq.push(n.clone());
            }
        }
        assert!(!uniq.is_empty(), "cluster membership is empty");
        let self_index = uniq
            .iter()
            .position(|n| n.id == config.node_id)
            .unwrap_or_else(|| {
                panic!(
                    "node id {:?} is not in the cluster membership",
                    config.node_id
                )
            });
        let ring = Ring::new(
            uniq.iter().map(|n| n.id.clone()).collect(),
            config.vnodes,
            config.seed,
        );
        let pools = uniq.iter().map(|_| Mutex::new(Vec::new())).collect();
        PeerRouter {
            ring,
            pools,
            self_index,
            nodes: uniq,
            timeouts: config.timeouts,
            max_pool: config.max_pool,
            forward: config.forward,
        }
    }

    /// This node's ring id.
    #[must_use]
    pub fn node_id(&self) -> &str {
        &self.nodes[self.self_index].id
    }

    /// The cluster membership, deduplicated, in configuration order.
    #[must_use]
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// The owner of `key`, or `None` when this node owns it.
    #[must_use]
    pub fn owner_of(&self, key: &str) -> Option<(usize, &ClusterNode)> {
        let idx = self.ring.owner_index(key);
        (idx != self.self_index).then(|| (idx, &self.nodes[idx]))
    }

    /// Fetches `key` from the owner peer over `FGET` (one pooled
    /// connection per call; the connection returns to the pool unless it
    /// failed at the transport level). A trace context, when given, rides
    /// the `FGET` line as its `TRACE` token so the peer's spans join the
    /// caller's trace.
    ///
    /// # Errors
    ///
    /// Transport failures and the peer's own `ORIGIN_ERROR` — either
    /// way the caller falls back to its local origin.
    pub fn fetch_from_peer(
        &self,
        peer: usize,
        key: &str,
        trace: Option<TraceContext>,
    ) -> io::Result<Option<Value>> {
        let pooled = self.pools[peer].lock().expect("peer pool poisoned").pop();
        let mut client = match pooled {
            Some(c) => c,
            None => Client::connect_with(self.nodes[peer].addr.as_str(), &self.timeouts)?,
        };
        match client.forward_get_traced(key, trace) {
            Ok(v) => {
                self.put_back(peer, client);
                Ok(v)
            }
            Err(e) if is_origin_error(&e) => {
                // Framing intact: the connection survives the error.
                self.put_back(peer, client);
                Err(e)
            }
            Err(e) => Err(e), // poisoned connection: drop it
        }
    }

    fn put_back(&self, peer: usize, client: Client) {
        let mut pool = self.pools[peer].lock().expect("peer pool poisoned");
        if pool.len() < self.max_pool {
            pool.push(client);
        }
    }
}

/// The server-side `csr_serve_cluster_*` metric families.
pub struct ClusterServerMetrics {
    /// Non-owned `GET`s answered by forwarding to the owner peer.
    pub forwards: Arc<Counter>,
    /// Forwards that failed and fell back to the local origin.
    pub forward_fallbacks: Arc<Counter>,
    /// Non-owned `GET`s answered with `MOVED` (forwarding disabled).
    pub moved: Arc<Counter>,
    /// Measured one-hop forward latency in µs (charged as miss cost).
    pub forward_us: Arc<Histogram>,
}

impl ClusterServerMetrics {
    /// Registers the families in `registry`.
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        ClusterServerMetrics {
            forwards: registry.counter(
                "csr_serve_cluster_forwards_total",
                "Non-owned GETs answered by forwarding to the owner peer",
                &[],
            ),
            forward_fallbacks: registry.counter(
                "csr_serve_cluster_forward_fallbacks_total",
                "Peer forwards that failed and fell back to the local origin",
                &[],
            ),
            moved: registry.counter(
                "csr_serve_cluster_moved_total",
                "Non-owned GETs answered with MOVED (forwarding disabled)",
                &[],
            ),
            forward_us: registry.histogram(
                "csr_serve_cluster_forward_us",
                "Measured one-hop peer fetch latency in microseconds (charged as miss cost)",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_specs_parse_both_grammars() {
        assert_eq!(
            ClusterNode::parse("n1=127.0.0.1:7001"),
            ClusterNode {
                id: "n1".into(),
                addr: "127.0.0.1:7001".into()
            }
        );
        assert_eq!(
            ClusterNode::parse("127.0.0.1:7001"),
            ClusterNode::addr_only("127.0.0.1:7001")
        );
        let nodes = parse_nodes("a=1:1, b=2:2,,3:3");
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[2].id, "3:3");
    }

    #[test]
    fn sketch_estimates_grow_and_decay() {
        let mut s = FreqSketch::new(64, 1); // unsampled: every observe counts
        for _ in 0..10 {
            s.observe("hot");
        }
        assert!(s.estimate("hot") >= 10);
        assert_eq!(s.estimate("never-seen"), 0, "min over rows bounds noise");
        s.decay();
        assert!(s.estimate("hot") >= 5);
        assert!(s.estimate("hot") < 10);
    }

    #[test]
    fn sketch_sampling_counts_a_fraction() {
        let mut s = FreqSketch::new(64, 4);
        for _ in 0..100 {
            s.observe("k");
        }
        let est = s.estimate("k");
        assert!(est >= 25, "every 4th observation counts, got {est}");
        assert!(est <= 30, "sampling must not overcount 100 by much: {est}");
    }

    #[test]
    fn router_identifies_owned_and_foreign_keys() {
        let nodes: Vec<ClusterNode> = (1..=4)
            .map(|i| ClusterNode::addr_only(format!("10.0.0.{i}:7000")))
            .collect();
        let mk = |idx: usize| {
            PeerRouter::new(&PeerConfig {
                node_id: nodes[idx].id.clone(),
                nodes: nodes.clone(),
                ..PeerConfig::default()
            })
        };
        let routers: Vec<PeerRouter> = (0..4).map(mk).collect();
        let mut foreign = 0;
        for k in 0..200 {
            let key = format!("key-{k}");
            // Exactly one router owns each key; the rest agree on who.
            let owners: Vec<Option<(usize, &ClusterNode)>> =
                routers.iter().map(|r| r.owner_of(&key)).collect();
            let selfish = owners.iter().filter(|o| o.is_none()).count();
            assert_eq!(selfish, 1, "exactly one owner for {key}");
            let named: HashSet<&str> = owners
                .iter()
                .flatten()
                .map(|(_, n)| n.id.as_str())
                .collect();
            assert_eq!(named.len(), 1, "everyone names the same owner for {key}");
            foreign += owners.iter().filter(|o| o.is_some()).count();
        }
        assert_eq!(foreign, 600);
    }

    #[test]
    #[should_panic(expected = "not in the cluster membership")]
    fn router_rejects_an_unknown_self_id() {
        let _ = PeerRouter::new(&PeerConfig {
            node_id: "ghost".into(),
            nodes: vec![ClusterNode::addr_only("1:1")],
            ..PeerConfig::default()
        });
    }

    #[test]
    fn cluster_client_routes_deterministically() {
        let nodes: Vec<ClusterNode> = (1..=4)
            .map(|i| ClusterNode::addr_only(format!("10.0.0.{i}:7000")))
            .collect();
        let a = ClusterClient::new(nodes.clone(), ClusterClientConfig::default());
        let b = ClusterClient::new(nodes, ClusterClientConfig::default());
        for k in 0..100 {
            let key = format!("key-{k}");
            assert_eq!(a.owner_index(&key), b.owner_index(&key));
        }
    }
}
