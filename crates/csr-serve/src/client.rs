//! A blocking client for the csr-serve protocol.
//!
//! One [`Client`] owns one connection. Calls are synchronous
//! request/response by default; [`Client::get_pipelined`] demonstrates the
//! protocol's pipelining (many requests on the wire before the first
//! response is read), which is how a latency-bound workload recovers
//! throughput without more connections.

use crate::proto::{self, MAX_VALUE_LEN};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connection to a csr-serve server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sets read/write timeouts on the underlying socket (`None`
    /// blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_timeouts(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Looks `key` up; `None` means neither the cache nor the origin has
    /// it.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        write!(self.writer, "GET {key}\r\n")?;
        self.writer.flush()?;
        self.read_get_reply()
    }

    /// Issues every `GET` before reading any reply (one flush, one
    /// round-trip's worth of latency for the whole batch).
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn get_pipelined(&mut self, keys: &[&str]) -> io::Result<Vec<Option<Vec<u8>>>> {
        for key in keys {
            write!(self.writer, "GET {key}\r\n")?;
        }
        self.writer.flush()?;
        keys.iter().map(|_| self.read_get_reply()).collect()
    }

    /// Stores `key -> value`.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn set(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        write!(self.writer, "SET {key} {}\r\n", value.len())?;
        self.writer.write_all(value)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()?;
        match self.read_line()?.as_str() {
            "STORED" => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Deletes `key`; `true` if it was resident.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn del(&mut self, key: &str) -> io::Result<bool> {
        write!(self.writer, "DEL {key}\r\n")?;
        self.writer.flush()?;
        match self.read_line()?.as_str() {
            "DELETED" => Ok(true),
            "NOT_FOUND" => Ok(false),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's `STATS` table as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.writer.write_all(b"STATS\r\n")?;
        self.writer.flush()?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(out);
            }
            match line
                .strip_prefix("STAT ")
                .and_then(|rest| rest.split_once(' '))
            {
                Some((name, value)) => out.push((name.to_owned(), value.to_owned())),
                None => return Err(unexpected(&line)),
            }
        }
    }

    /// Fetches the Prometheus metrics exposition.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.writer.write_all(b"METRICS\r\n")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        let len = line
            .strip_prefix("DATA ")
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n <= MAX_VALUE_LEN)
            .ok_or_else(|| unexpected(&line))?;
        let body = self.read_payload(len)?;
        String::from_utf8(body).map_err(|_| io::Error::other("metrics body was not UTF-8"))
    }

    /// Sends `QUIT` and closes the connection cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn quit(mut self) -> io::Result<()> {
        self.writer.write_all(b"QUIT\r\n")?;
        self.writer.flush()
    }

    /// Reads one `GET` reply: `VALUE`+payload+`END`, or a bare `END`.
    fn read_get_reply(&mut self) -> io::Result<Option<Vec<u8>>> {
        let line = self.read_line()?;
        if line == "END" {
            return Ok(None);
        }
        let len = line
            .strip_prefix("VALUE ")
            .and_then(|rest| rest.rsplit_once(' '))
            .and_then(|(_, n)| n.parse::<usize>().ok())
            .filter(|n| *n <= MAX_VALUE_LEN)
            .ok_or_else(|| unexpected(&line))?;
        let body = self.read_payload(len)?;
        match self.read_line()?.as_str() {
            "END" => Ok(Some(body)),
            other => Err(unexpected(other)),
        }
    }

    /// Reads `len` payload bytes plus the trailing CRLF.
    fn read_payload(&mut self, len: usize) -> io::Result<Vec<u8>> {
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let mut tail = [0u8; 2];
        self.reader.read_exact(&mut tail)?;
        if &tail != b"\r\n" {
            return Err(io::Error::other("payload not CRLF-terminated"));
        }
        Ok(body)
    }

    /// Reads one response line, without its terminator.
    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        loop {
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.ends_with('\n') {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                return Ok(line);
            }
            if line.len() > proto::MAX_LINE_LEN {
                return Err(io::Error::other("overlong response line"));
            }
        }
    }
}

/// Maps an error or unexpected reply line to an `io::Error`, preserving
/// the server's wording (`SERVER_BUSY`, `CLIENT_ERROR ...`).
fn unexpected(line: &str) -> io::Error {
    io::Error::other(format!("unexpected server reply: {line}"))
}
