//! Blocking clients for the csr-serve protocol.
//!
//! One [`Client`] owns one connection. Calls are synchronous
//! request/response by default; [`Client::get_pipelined`] demonstrates the
//! protocol's pipelining (many requests on the wire before the first
//! response is read), which is how a latency-bound workload recovers
//! throughput without more connections. Every socket carries connect,
//! read, and write deadlines ([`Timeouts`]) — a hung or half-open server
//! can never wedge the caller forever.
//!
//! [`FailoverClient`] is the self-healing layer on top: it owns a replica
//! list instead of a connection, reconnects through failures with capped
//! backoff and seeded jitter (the [`BackoffSchedule`] from
//! [`crate::resilience`]), transparently replays *idempotent* ops
//! (`GET`/`STATS`/`METRICS`) after a mid-call disconnect, and refuses to
//! replay `SET`/`DEL` — a non-idempotent op that died mid-flight surfaces
//! as the typed [`ConnectionError::MaybeApplied`] so the caller decides.
//! Endpoints are passively marked unhealthy when they fail and probed back
//! into rotation round-robin ([`FailoverConfig::probe_every`]).

use crate::proto::{self, MAX_VALUE_LEN};
use crate::resilience::{mix64, BackoffSchedule};
use csr_obs::{Counter, Registry, TraceContext};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Socket deadlines applied to every connection a client makes. All three
/// must be non-zero (a zero socket timeout is rejected by the OS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// Deadline for establishing the TCP connection.
    pub connect: Duration,
    /// Deadline for each socket read (a reply that stalls longer fails
    /// with `TimedOut`/`WouldBlock` instead of blocking forever).
    pub read: Duration,
    /// Deadline for each socket write.
    pub write: Duration,
}

impl Default for Timeouts {
    /// Conservative interactive defaults: 5 s connect, 30 s read, 10 s
    /// write.
    fn default() -> Self {
        Timeouts {
            connect: Duration::from_secs(5),
            read: Duration::from_secs(30),
            write: Duration::from_secs(10),
        }
    }
}

/// A `GET` result carrying its reply flags: `stale` is set when the
/// server answered from its stale store because the origin failed (the
/// `STALE` token on the `VALUE` line), `forwarded` when a cluster node
/// fetched the value from the key's owner peer on our behalf (the
/// `FORWARDED` token).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The value bytes.
    pub data: Vec<u8>,
    /// Whether this is a stale copy served while the origin is degraded.
    pub stale: bool,
    /// Whether a cluster node fetched this from the key's owner peer.
    pub forwarded: bool,
}

/// The typed form of the server's recoverable `ORIGIN_ERROR` reply: the
/// origin fetch failed and no stale copy was available. Surfaced wrapped
/// in an [`io::Error`]; recover it with
/// `err.get_ref().and_then(|e| e.downcast_ref::<OriginError>())`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginError {
    /// The server's reason line.
    pub reason: String,
}

impl std::fmt::Display for OriginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ORIGIN_ERROR {}", self.reason)
    }
}

impl std::error::Error for OriginError {}

/// The typed form of the server's recoverable `MOVED` reply: the cluster
/// node addressed does not own the key and peer-forwarding is disabled,
/// so the request should be re-issued against [`addr`](Moved::addr).
/// Surfaced wrapped in an [`io::Error`]; recover it with
/// `err.get_ref().and_then(|e| e.downcast_ref::<Moved>())`. The
/// connection that answered `MOVED` is healthy and stays usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Moved {
    /// The owner node's advertised address.
    pub addr: String,
}

impl std::fmt::Display for Moved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MOVED {}", self.addr)
    }
}

impl std::error::Error for Moved {}

impl Moved {
    /// Recovers a typed `Moved` from an [`io::Error`], if it wraps one.
    #[must_use]
    pub fn from_io(e: &io::Error) -> Option<&Moved> {
        e.get_ref().and_then(|inner| inner.downcast_ref())
    }
}

/// The server rejected a `SET` because the payload checksum did not match
/// — the request was corrupted in flight. Framing is intact and the store
/// definitively did **not** happen, so re-issuing the `SET` is safe (the
/// one transport error after which a non-idempotent op may be replayed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRejected {
    /// The server's `CLIENT_ERROR` reply line.
    pub reason: String,
}

impl std::fmt::Display for StoreRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for StoreRejected {}

/// Why a [`FailoverClient`] call failed, surfaced wrapped in an
/// [`io::Error`]; recover it with [`ConnectionError::from_io`].
#[derive(Debug)]
pub enum ConnectionError {
    /// Every endpoint and retry attempt was exhausted without completing
    /// the call.
    Unavailable {
        /// Connection/replay attempts consumed before giving up.
        attempts: u32,
        /// The last underlying failure.
        source: io::Error,
    },
    /// A non-idempotent op (`SET`/`DEL`) failed *after* its request may
    /// have reached the server: the op was *not* replayed, and whether it
    /// was applied is unknown. The caller must decide (re-read, re-issue
    /// if its application is idempotent, or surface the ambiguity).
    MaybeApplied {
        /// The underlying failure.
        source: io::Error,
    },
}

impl std::fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectionError::Unavailable { attempts, source } => {
                write!(f, "no endpoint usable after {attempts} attempts: {source}")
            }
            ConnectionError::MaybeApplied { source } => write!(
                f,
                "connection failed mid-request; the operation may or may not have been applied: {source}"
            ),
        }
    }
}

impl std::error::Error for ConnectionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConnectionError::Unavailable { source, .. }
            | ConnectionError::MaybeApplied { source } => Some(source),
        }
    }
}

impl ConnectionError {
    /// Recovers a typed `ConnectionError` from an [`io::Error`] returned
    /// by a [`FailoverClient`] call, if it wraps one.
    #[must_use]
    pub fn from_io(e: &io::Error) -> Option<&ConnectionError> {
        e.get_ref().and_then(|inner| inner.downcast_ref())
    }

    /// Whether `e` is the [`ConnectionError::MaybeApplied`] ambiguity.
    #[must_use]
    pub fn is_maybe_applied(e: &io::Error) -> bool {
        matches!(
            ConnectionError::from_io(e),
            Some(ConnectionError::MaybeApplied { .. })
        )
    }
}

/// The `csr_serve_client_*` metric families: how often the self-healing
/// client had to heal. Register once per process and share across
/// [`FailoverClient`]s (the counters are `Arc`s into the registry).
#[derive(Clone)]
pub struct ClientMetrics {
    /// Successful connections after the first (healing events).
    pub reconnects: Arc<Counter>,
    /// Idempotent ops re-issued after a connection-level failure.
    pub replays: Arc<Counter>,
    /// Reconnections that landed on a different endpoint than the last.
    pub failovers: Arc<Counter>,
    /// Socket operations cut by their read/write/connect deadline.
    pub deadline_timeouts: Arc<Counter>,
}

impl ClientMetrics {
    /// Registers the client families in `registry`.
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        ClientMetrics {
            reconnects: registry.counter(
                "csr_serve_client_reconnects_total",
                "Successful client connections after the first (healing events)",
                &[],
            ),
            replays: registry.counter(
                "csr_serve_client_replays_total",
                "Idempotent client ops re-issued after a connection-level failure",
                &[],
            ),
            failovers: registry.counter(
                "csr_serve_client_failovers_total",
                "Client reconnections that switched to a different endpoint",
                &[],
            ),
            deadline_timeouts: registry.counter(
                "csr_serve_client_deadline_timeouts_total",
                "Client socket operations cut by a connect/read/write deadline",
                &[],
            ),
        }
    }
}

/// Shared view of a connection's one socket. `&TcpStream` is both `Read`
/// and `Write`, so the buffered reader and writer halves can share a
/// single file descriptor; the `try_clone` alternative `dup(2)`s a second
/// fd per connection, which halves how many connections fit under
/// `RLIMIT_NOFILE` — the difference between 10k and 20k open connections
/// for a scaling-curve load generator.
#[derive(Debug)]
struct SocketRef(Arc<TcpStream>);

impl Read for SocketRef {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&*self.0).read(buf)
    }
}

impl Write for SocketRef {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&*self.0).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&*self.0).flush()
    }
}

/// A connection to a csr-serve server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<SocketRef>,
    writer: BufWriter<SocketRef>,
}

impl Client {
    /// Connects to `addr` with the default [`Timeouts`] — connections made
    /// this way can no longer block forever on a hung or half-open server.
    ///
    /// # Errors
    ///
    /// Connection failures (including connect timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, &Timeouts::default())
    }

    /// Connects to `addr` with explicit socket deadlines.
    ///
    /// # Errors
    ///
    /// Connection failures; the connect attempt itself is bounded by
    /// `timeouts.connect` per resolved address.
    pub fn connect_with(addr: impl ToSocketAddrs, timeouts: &Timeouts) -> io::Result<Client> {
        let mut last: Option<io::Error> = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, timeouts.connect) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(timeouts.read))?;
                    stream.set_write_timeout(Some(timeouts.write))?;
                    let stream = Arc::new(stream);
                    return Ok(Client {
                        reader: BufReader::new(SocketRef(Arc::clone(&stream))),
                        writer: BufWriter::new(SocketRef(stream)),
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Sets read/write timeouts on the underlying socket (`None`
    /// blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_timeouts(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = &self.reader.get_ref().0;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Looks `key` up; `None` means neither the cache nor the origin has
    /// it. A stale copy served under origin failure is returned like any
    /// other value — use [`get_value`](Self::get_value) to observe the
    /// `STALE` flag.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors, including the
    /// recoverable `ORIGIN_ERROR` reply as a typed [`OriginError`].
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.get_value(key)?.map(|v| v.data))
    }

    /// Looks `key` up, surfacing the degradation flag: the returned
    /// [`Value`] says whether the server answered with a stale copy.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors, including the
    /// recoverable `ORIGIN_ERROR` reply as a typed [`OriginError`].
    pub fn get_value(&mut self, key: &str) -> io::Result<Option<Value>> {
        self.get_value_traced(key, None)
    }

    /// [`get_value`](Self::get_value) with an optional trace context
    /// riding the request line as its `TRACE` token — the server joins
    /// (or starts) that distributed trace and always retains it.
    ///
    /// # Errors
    ///
    /// As [`get_value`](Self::get_value).
    pub fn get_value_traced(
        &mut self,
        key: &str,
        trace: Option<TraceContext>,
    ) -> io::Result<Option<Value>> {
        match trace {
            Some(ctx) => write!(self.writer, "GET {key} TRACE {}\r\n", ctx.render())?,
            None => write!(self.writer, "GET {key}\r\n")?,
        }
        self.writer.flush()?;
        self.read_get_reply(key)
    }

    /// Issues a peer-forwarded lookup (`FGET`): the receiving cluster
    /// node answers from its own cache or origin and — by the one-hop
    /// rule — never forwards again and never replies `MOVED`. This is
    /// the hop a forwarding server makes on a client's behalf; ordinary
    /// callers want [`get_value`](Self::get_value).
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors, including the
    /// recoverable `ORIGIN_ERROR` reply as a typed [`OriginError`].
    pub fn forward_get(&mut self, key: &str) -> io::Result<Option<Value>> {
        self.forward_get_traced(key, None)
    }

    /// [`forward_get`](Self::forward_get) with an optional trace context
    /// on the `FGET` line, linking the peer's spans under the caller's
    /// forward span — one trace across both nodes.
    ///
    /// # Errors
    ///
    /// As [`forward_get`](Self::forward_get).
    pub fn forward_get_traced(
        &mut self,
        key: &str,
        trace: Option<TraceContext>,
    ) -> io::Result<Option<Value>> {
        match trace {
            Some(ctx) => write!(self.writer, "FGET {key} TRACE {}\r\n", ctx.render())?,
            None => write!(self.writer, "FGET {key}\r\n")?,
        }
        self.writer.flush()?;
        self.read_get_reply(key)
    }

    /// Issues every `GET` before reading any reply (one flush, one
    /// round-trip's worth of latency for the whole batch).
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors. An `ORIGIN_ERROR`
    /// for any key in the batch fails the whole call with the *first*
    /// such error — but `ORIGIN_ERROR` is recoverable, so the remaining
    /// replies are still drained off the wire first and the connection
    /// stays usable afterwards. Issue keys individually when origin
    /// failures must be told apart per key.
    pub fn get_pipelined(&mut self, keys: &[&str]) -> io::Result<Vec<Option<Vec<u8>>>> {
        for key in keys {
            write!(self.writer, "GET {key}\r\n")?;
        }
        self.writer.flush()?;
        let mut out = Vec::with_capacity(keys.len());
        let mut first_origin_err: Option<io::Error> = None;
        for key in keys {
            match self.read_get_reply(key) {
                Ok(v) => out.push(v.map(|v| v.data)),
                // The server keeps sending the batch's remaining replies
                // after a recoverable ORIGIN_ERROR or MOVED: returning
                // early here would desynchronize the stream and hand
                // leftover replies to the next call, so read every reply
                // before failing.
                Err(e) if is_recoverable_reply(&e) => {
                    first_origin_err.get_or_insert(e);
                }
                // Transport/framing failures: stream position is already
                // lost, nothing left to drain.
                Err(e) => return Err(e),
            }
        }
        match first_origin_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Stores `key -> value`. The payload CRC32 is always sent, so a
    /// store corrupted in flight is rejected by the server instead of
    /// silently persisting garbage.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors. A checksum reject
    /// surfaces as a typed [`StoreRejected`] — the server definitively
    /// did *not* apply the store, so re-issuing it is safe.
    pub fn set(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        write!(
            self.writer,
            "SET {key} {} {:08x}\r\n",
            value.len(),
            proto::crc32(value)
        )?;
        self.writer.write_all(value)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        match line.as_str() {
            "STORED" => Ok(()),
            l if l.starts_with("CLIENT_ERROR payload checksum mismatch") => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                StoreRejected { reason: line },
            )),
            other => Err(unexpected(other)),
        }
    }

    /// Deletes `key`; `true` if it was resident.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn del(&mut self, key: &str) -> io::Result<bool> {
        write!(self.writer, "DEL {key}\r\n")?;
        self.writer.flush()?;
        match self.read_line()?.as_str() {
            "DELETED" => Ok(true),
            "NOT_FOUND" => Ok(false),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's `STATS` table as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.writer.write_all(b"STATS\r\n")?;
        self.writer.flush()?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(out);
            }
            match line
                .strip_prefix("STAT ")
                .and_then(|rest| rest.split_once(' '))
            {
                Some((name, value)) => out.push((name.to_owned(), value.to_owned())),
                None => return Err(unexpected(&line)),
            }
        }
    }

    /// Fetches the Prometheus metrics exposition.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.fetch_data(b"METRICS\r\n")
    }

    /// Fetches the node's kept-trace ring as JSONL (one trace per line;
    /// empty string when nothing was retained yet).
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn traces(&mut self) -> io::Result<String> {
        self.fetch_data(b"TRACES\r\n")
    }

    /// Issues a verb answered with a length-prefixed `DATA` frame
    /// (`METRICS`, `TRACES`) and returns its UTF-8 body.
    fn fetch_data(&mut self, verb: &[u8]) -> io::Result<String> {
        self.writer.write_all(verb)?;
        self.writer.flush()?;
        let line = self.read_line()?;
        let rest = line
            .strip_prefix("DATA ")
            .ok_or_else(|| unexpected(&line))?;
        let mut fields = rest.split(' ');
        let len = fields
            .next()
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n <= MAX_VALUE_LEN)
            .ok_or_else(|| unexpected(&line))?;
        let crc = match fields.next() {
            None => None,
            Some(tok) => Some(parse_crc_token(tok).ok_or_else(|| unexpected(&line))?),
        };
        if fields.next().is_some() {
            return Err(unexpected(&line));
        }
        let body = self.read_payload(len)?;
        verify_crc(&body, crc)?;
        match self.read_line()?.as_str() {
            "END" => {
                String::from_utf8(body).map_err(|_| io::Error::other("data body was not UTF-8"))
            }
            other => Err(unexpected(other)),
        }
    }

    /// Sends `QUIT` and closes the connection cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn quit(mut self) -> io::Result<()> {
        self.writer.write_all(b"QUIT\r\n")?;
        self.writer.flush()
    }

    /// Reads one `GET` reply: `VALUE [STALE] [FORWARDED] <crc32>` +
    /// payload + `END`, a bare `END`, or the recoverable `ORIGIN_ERROR` /
    /// `MOVED` lines. The payload CRC is verified when present, so
    /// corrupted bytes inside the payload are reported as a malformed
    /// frame instead of returned as data — and the echoed key must match
    /// `expect_key`, so a request corrupted in flight into a *different
    /// valid key* can never return that other key's value as this one's.
    fn read_get_reply(&mut self, expect_key: &str) -> io::Result<Option<Value>> {
        let line = self.read_line()?;
        if line == "END" {
            return Ok(None);
        }
        if let Some(reason) = line.strip_prefix("ORIGIN_ERROR") {
            return Err(io::Error::other(OriginError {
                reason: reason.trim_start().to_owned(),
            }));
        }
        if let Some(addr) = line.strip_prefix("MOVED ") {
            return Err(io::Error::other(Moved {
                addr: addr.to_owned(),
            }));
        }
        let rest = line
            .strip_prefix("VALUE ")
            .ok_or_else(|| unexpected(&line))?;
        let mut fields = rest.split(' ');
        let key = fields.next().ok_or_else(|| unexpected(&line))?;
        if key != expect_key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply key {key:?} does not match requested {expect_key:?}"),
            ));
        }
        let len = fields
            .next()
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n <= MAX_VALUE_LEN)
            .ok_or_else(|| unexpected(&line))?;
        let mut stale = false;
        let mut forwarded = false;
        let mut crc: Option<u32> = None;
        for tok in fields {
            if tok == "STALE" && !stale && !forwarded && crc.is_none() {
                stale = true;
            } else if tok == "FORWARDED" && !forwarded && crc.is_none() {
                forwarded = true;
            } else if crc.is_none() {
                crc = Some(parse_crc_token(tok).ok_or_else(|| unexpected(&line))?);
            } else {
                return Err(unexpected(&line));
            }
        }
        let body = self.read_payload(len)?;
        verify_crc(&body, crc)?;
        match self.read_line()?.as_str() {
            "END" => Ok(Some(Value {
                data: body,
                stale,
                forwarded,
            })),
            other => Err(unexpected(other)),
        }
    }

    /// Reads `len` payload bytes plus the trailing CRLF.
    fn read_payload(&mut self, len: usize) -> io::Result<Vec<u8>> {
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let mut tail = [0u8; 2];
        self.reader.read_exact(&mut tail)?;
        if &tail != b"\r\n" {
            return Err(io::Error::other("payload not CRLF-terminated"));
        }
        Ok(body)
    }

    /// Reads one response line, without its terminator.
    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        loop {
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.ends_with('\n') {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                return Ok(line);
            }
            if line.len() > proto::MAX_LINE_LEN {
                return Err(io::Error::other("overlong response line"));
            }
        }
    }
}

/// Maps an error or unexpected reply line to an `io::Error`, preserving
/// the server's wording (`SERVER_BUSY`, `CLIENT_ERROR ...`).
fn unexpected(line: &str) -> io::Error {
    io::Error::other(format!("unexpected server reply: {line}"))
}

/// Whether `e` wraps the recoverable [`OriginError`] reply (the stream
/// framing is intact; transport and framing errors are not recoverable).
fn is_origin_error(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<OriginError>())
}

/// Whether `e` wraps the recoverable [`Moved`] redirect reply.
fn is_moved(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<Moved>())
}

/// Whether `e` is a reply the server sent *inside intact framing* —
/// `ORIGIN_ERROR` or `MOVED`. The connection answered correctly; there
/// is nothing for the failover layer to heal and nothing to drain-skip.
fn is_recoverable_reply(e: &io::Error) -> bool {
    is_origin_error(e) || is_moved(e)
}

/// Whether `e` wraps a [`StoreRejected`] checksum reject (the server
/// answered inside intact framing and definitively did not store).
fn is_store_rejected(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<StoreRejected>())
}

/// Parses an 8-hex-digit CRC32 reply token.
fn parse_crc_token(tok: &str) -> Option<u32> {
    (tok.len() == 8 && tok.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| u32::from_str_radix(tok, 16).ok())
        .flatten()
}

/// Verifies a payload against its reply-line CRC (absent CRC passes, for
/// compatibility with servers predating the integrity token).
fn verify_crc(body: &[u8], crc: Option<u32>) -> io::Result<()> {
    match crc {
        Some(expect) if proto::crc32(body) != expect => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "payload checksum mismatch",
        )),
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// The self-healing failover client

/// Tuning for a [`FailoverClient`].
#[derive(Debug, Clone, Copy)]
pub struct FailoverConfig {
    /// Socket deadlines for every connection.
    pub timeouts: Timeouts,
    /// Backoff between reconnect/replay attempts (capped exponential with
    /// seeded jitter — the same schedule the server uses against its
    /// origin).
    pub backoff: BackoffSchedule,
    /// Total connection + replay attempts per call before giving up.
    pub max_attempts: u32,
    /// Every `probe_every`-th endpoint pick tries an *unhealthy* endpoint
    /// first (the round-robin recovery probe); `0` disables probing, so
    /// unhealthy endpoints only re-enter rotation when every healthy one
    /// is down.
    pub probe_every: u32,
    /// Seed for the backoff jitter — decorrelates concurrent clients.
    pub seed: u64,
}

impl Default for FailoverConfig {
    /// 1 ms → 200 ms backoff, 8 attempts, probe every 4th pick.
    fn default() -> Self {
        FailoverConfig {
            timeouts: Timeouts::default(),
            backoff: BackoffSchedule {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(200),
            },
            max_attempts: 8,
            probe_every: 4,
            seed: 0,
        }
    }
}

#[derive(Debug)]
struct Endpoint {
    addr: String,
    /// Passive health: cleared when a connection or op against this
    /// endpoint fails, set again on any success.
    healthy: bool,
}

struct Conn {
    endpoint: usize,
    client: Client,
}

/// A self-healing client over a replica list.
///
/// Connections are made lazily and healed transparently: any
/// connection-level failure (transport error, deadline, corrupted or
/// unparseable reply) poisons the connection, marks the endpoint
/// unhealthy, and reconnects — preferring healthy endpoints, with a
/// capped-backoff sleep between attempts. Idempotent ops
/// ([`get`](Self::get), [`get_value`](Self::get_value),
/// [`get_pipelined`](Self::get_pipelined), [`stats`](Self::stats),
/// [`metrics`](Self::metrics)) are then replayed; non-idempotent ops
/// ([`set`](Self::set), [`del`](Self::del)) are **not** — once their
/// request may have left, failure surfaces as
/// [`ConnectionError::MaybeApplied`]. The server's recoverable
/// `ORIGIN_ERROR` reply passes straight through: the connection answered
/// correctly, there is nothing to heal.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    config: FailoverConfig,
    metrics: Option<ClientMetrics>,
    conn: Option<Conn>,
    /// Whether any connection ever succeeded (reconnect accounting).
    ever_connected: bool,
    /// The endpoint index of the most recent successful connection
    /// (failover accounting).
    last_endpoint: Option<usize>,
    /// Round-robin cursor over the endpoint list.
    cursor: usize,
    /// Independent round-robin cursor over *unhealthy* endpoints for
    /// recovery probes. Without it, probes would search from `cursor` —
    /// which healthy-pick traffic keeps resetting — so a long-dead
    /// first endpoint would absorb every probe and starve later dead
    /// endpoints of recovery forever.
    probe_cursor: usize,
    /// Endpoint picks made (drives the recovery-probe cadence).
    picks: u64,
    /// Backoff sleeps taken (jitter decorrelation stream).
    retries: u64,
}

impl FailoverClient {
    /// A client over `endpoints` (tried round-robin; at least one
    /// required). No connection is made until the first call.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty.
    #[must_use]
    pub fn new(endpoints: Vec<String>, config: FailoverConfig) -> FailoverClient {
        assert!(
            !endpoints.is_empty(),
            "a FailoverClient needs at least one endpoint"
        );
        FailoverClient {
            endpoints: endpoints
                .into_iter()
                .map(|addr| Endpoint {
                    addr,
                    healthy: true,
                })
                .collect(),
            config,
            metrics: None,
            conn: None,
            ever_connected: false,
            last_endpoint: None,
            cursor: 0,
            probe_cursor: 0,
            picks: 0,
            retries: 0,
        }
    }

    /// Attaches the `csr_serve_client_*` counters this client feeds.
    #[must_use]
    pub fn with_metrics(mut self, metrics: ClientMetrics) -> FailoverClient {
        self.metrics = Some(metrics);
        self
    }

    /// Looks `key` up (idempotent: replayed through failures).
    ///
    /// # Errors
    ///
    /// [`ConnectionError::Unavailable`] when every attempt failed, or a
    /// passed-through recoverable server reply ([`OriginError`]).
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        validate_key(key)?;
        self.run_op(true, |c| c.get(key))
    }

    /// Looks `key` up with its degradation flag (idempotent).
    ///
    /// # Errors
    ///
    /// As [`get`](Self::get).
    pub fn get_value(&mut self, key: &str) -> io::Result<Option<Value>> {
        validate_key(key)?;
        self.run_op(true, |c| c.get_value(key))
    }

    /// [`get_value`](Self::get_value) with an optional trace context on
    /// the request line (idempotent; the context is re-sent verbatim on
    /// replays, so a healed request still belongs to its trace).
    ///
    /// # Errors
    ///
    /// As [`get`](Self::get).
    pub fn get_value_traced(
        &mut self,
        key: &str,
        trace: Option<TraceContext>,
    ) -> io::Result<Option<Value>> {
        validate_key(key)?;
        self.run_op(true, |c| c.get_value_traced(key, trace))
    }

    /// Pipelined batch of `GET`s (idempotent: the whole batch is replayed
    /// on a mid-batch disconnect).
    ///
    /// # Errors
    ///
    /// As [`get`](Self::get); an `ORIGIN_ERROR` inside the batch passes
    /// through after the batch's replies are drained.
    pub fn get_pipelined(&mut self, keys: &[&str]) -> io::Result<Vec<Option<Vec<u8>>>> {
        for key in keys {
            validate_key(key)?;
        }
        self.run_op(true, |c| c.get_pipelined(keys))
    }

    /// Stores `key -> value`. **Not replayed**: a failure after the
    /// request may have left surfaces as [`ConnectionError::MaybeApplied`]
    /// (the one exception is a server-side checksum reject, which
    /// definitively did not store and is retried).
    ///
    /// # Errors
    ///
    /// [`ConnectionError`] variants as above.
    pub fn set(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        validate_key(key)?;
        if value.len() > MAX_VALUE_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("value over MAX_VALUE_LEN ({MAX_VALUE_LEN} bytes)"),
            ));
        }
        self.run_op(false, |c| c.set(key, value))
    }

    /// Deletes `key`; `true` if it was resident. **Not replayed** — see
    /// [`set`](Self::set).
    ///
    /// # Errors
    ///
    /// [`ConnectionError`] variants as above.
    pub fn del(&mut self, key: &str) -> io::Result<bool> {
        validate_key(key)?;
        self.run_op(false, |c| c.del(key))
    }

    /// Fetches the `STATS` table (idempotent).
    ///
    /// # Errors
    ///
    /// [`ConnectionError::Unavailable`] when every attempt failed.
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.run_op(true, Client::stats)
    }

    /// Fetches the Prometheus metrics exposition (idempotent).
    ///
    /// # Errors
    ///
    /// [`ConnectionError::Unavailable`] when every attempt failed.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.run_op(true, Client::metrics)
    }

    /// Fetches the node's kept-trace ring as JSONL (idempotent).
    ///
    /// # Errors
    ///
    /// [`ConnectionError::Unavailable`] when every attempt failed.
    pub fn traces(&mut self) -> io::Result<String> {
        self.run_op(true, Client::traces)
    }

    /// Closes the current connection cleanly (best effort). The client
    /// remains usable — the next call reconnects.
    pub fn close(&mut self) {
        if let Some(conn) = self.conn.take() {
            let _ = conn.client.quit();
        }
    }

    /// Passive health of each endpoint, in construction order.
    #[must_use]
    pub fn endpoint_health(&self) -> Vec<bool> {
        self.endpoints.iter().map(|e| e.healthy).collect()
    }

    /// Runs `op`, healing the connection through failures. `idempotent`
    /// gates replay: a non-idempotent op whose request may have left the
    /// building fails with [`ConnectionError::MaybeApplied`] instead of
    /// being re-issued.
    fn run_op<T>(
        &mut self,
        idempotent: bool,
        mut op: impl FnMut(&mut Client) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempt: u32 = 0;
        loop {
            if let Err(e) = self.ensure_connected(&mut attempt) {
                return Err(io::Error::other(ConnectionError::Unavailable {
                    attempts: attempt,
                    source: e,
                }));
            }
            let conn = self.conn.as_mut().expect("ensure_connected succeeded");
            let endpoint = conn.endpoint;
            match op(&mut conn.client) {
                Ok(v) => {
                    self.endpoints[endpoint].healthy = true;
                    return Ok(v);
                }
                // The server answered inside intact framing (ORIGIN_ERROR
                // or MOVED): nothing to heal, the error is the answer.
                Err(e) if is_recoverable_reply(&e) => return Err(e),
                // Checksum reject: the server definitively did NOT apply
                // the store and the stream is aligned — safe to re-issue
                // even for SET, on the same connection.
                Err(e) if is_store_rejected(&e) => {
                    attempt += 1;
                    if attempt >= self.config.max_attempts {
                        return Err(e);
                    }
                    self.count_replay();
                    self.sleep_backoff(attempt);
                }
                // Anything else poisons the connection: transport failure,
                // deadline, or a reply we could not trust (corruption).
                Err(e) => {
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) {
                        if let Some(m) = &self.metrics {
                            m.deadline_timeouts.inc();
                        }
                    }
                    self.conn = None;
                    self.endpoints[endpoint].healthy = false;
                    if !idempotent {
                        return Err(io::Error::other(ConnectionError::MaybeApplied {
                            source: e,
                        }));
                    }
                    attempt += 1;
                    if attempt >= self.config.max_attempts {
                        return Err(io::Error::other(ConnectionError::Unavailable {
                            attempts: attempt,
                            source: e,
                        }));
                    }
                    self.count_replay();
                    self.sleep_backoff(attempt);
                }
            }
        }
    }

    /// Connects if not connected, consuming attempts from the shared
    /// per-call budget and sleeping the backoff between failures.
    fn ensure_connected(&mut self, attempt: &mut u32) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        loop {
            let idx = self.pick_endpoint();
            match Client::connect_with(self.endpoints[idx].addr.as_str(), &self.config.timeouts) {
                Ok(client) => {
                    self.endpoints[idx].healthy = true;
                    if let Some(m) = &self.metrics {
                        if self.ever_connected {
                            m.reconnects.inc();
                        }
                        if self.last_endpoint.is_some_and(|prev| prev != idx) {
                            m.failovers.inc();
                        }
                    }
                    self.ever_connected = true;
                    self.last_endpoint = Some(idx);
                    self.conn = Some(Conn {
                        endpoint: idx,
                        client,
                    });
                    return Ok(());
                }
                Err(e) => {
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) {
                        if let Some(m) = &self.metrics {
                            m.deadline_timeouts.inc();
                        }
                    }
                    self.endpoints[idx].healthy = false;
                    *attempt += 1;
                    if *attempt >= self.config.max_attempts {
                        return Err(e);
                    }
                    self.sleep_backoff(*attempt);
                }
            }
        }
    }

    /// Picks the next endpoint: healthy ones round-robin, except that
    /// every [`probe_every`](FailoverConfig::probe_every)-th pick tries an
    /// unhealthy endpoint first (the recovery probe), and when everything
    /// is marked unhealthy the rotation continues over all of them (marks
    /// are advisory, not a death sentence).
    fn pick_endpoint(&mut self) -> usize {
        let n = self.endpoints.len();
        self.picks += 1;
        let probing =
            self.config.probe_every > 0 && self.picks.is_multiple_of(u64::from(self.config.probe_every));
        let from = self.cursor;
        let find = |want_healthy: bool, eps: &[Endpoint]| -> Option<usize> {
            (0..n)
                .map(|k| (from + k) % n)
                .find(|&i| eps[i].healthy == want_healthy)
        };
        let probe_pick = if probing {
            // Probes walk their own cursor so each unhealthy endpoint
            // gets a turn; searching from the traffic cursor would
            // re-probe the first dead endpoint forever.
            let probe_from = self.probe_cursor;
            let found = (0..n)
                .map(|k| (probe_from + k) % n)
                .find(|&i| !self.endpoints[i].healthy);
            if let Some(i) = found {
                self.probe_cursor = (i + 1) % n;
            }
            found
        } else {
            None
        };
        let idx = probe_pick
            .or_else(|| find(true, &self.endpoints))
            .or_else(|| find(false, &self.endpoints))
            .unwrap_or(0);
        self.cursor = (idx + 1) % n;
        idx
    }

    fn count_replay(&self) {
        if let Some(m) = &self.metrics {
            m.replays.inc();
        }
    }

    /// Sleeps the capped-backoff delay before attempt `attempt`, jittered
    /// by a fresh deterministic stream per sleep.
    fn sleep_backoff(&mut self, attempt: u32) {
        self.retries += 1;
        let seed = mix64(self.config.seed, self.retries);
        std::thread::sleep(self.config.backoff.delay(attempt.saturating_sub(1), seed));
    }
}

fn validate_key(key: &str) -> io::Result<()> {
    if proto::valid_key(key) {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid key {key:?} (1..=250 printable ASCII, no spaces)"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_over(health: &[bool], probe_every: u32) -> FailoverClient {
        let mut fc = FailoverClient::new(
            (0..health.len()).map(|i| format!("ep{i}")).collect(),
            FailoverConfig {
                probe_every,
                ..FailoverConfig::default()
            },
        );
        for (ep, &h) in fc.endpoints.iter_mut().zip(health) {
            ep.healthy = h;
        }
        fc
    }

    #[test]
    fn healthy_endpoints_rotate_round_robin() {
        let mut fc = client_over(&[true, true, true], 0);
        let picks: Vec<usize> = (0..6).map(|_| fc.pick_endpoint()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn unhealthy_endpoints_are_skipped_until_probed() {
        let mut fc = client_over(&[true, false, true], 4);
        // Picks 1-3 avoid the unhealthy endpoint; pick 4 is the recovery
        // probe and goes straight to it.
        let picks: Vec<usize> = (0..4).map(|_| fc.pick_endpoint()).collect();
        assert_eq!(picks, vec![0, 2, 0, 1]);
    }

    #[test]
    fn recovery_probes_rotate_across_all_unhealthy_endpoints() {
        // Two dead endpoints: every probe must not land on endpoint 0.
        // Picks 1 and 3 are traffic (endpoint 2, the only healthy one);
        // picks 2 and 4 are probes and must visit 0 then 1 — with a
        // shared cursor the second probe would re-probe 0 and starve 1.
        let mut fc = client_over(&[false, false, true], 2);
        let picks: Vec<usize> = (0..4).map(|_| fc.pick_endpoint()).collect();
        assert_eq!(picks, vec![2, 0, 2, 1]);
    }

    #[test]
    fn all_unhealthy_still_rotates() {
        let mut fc = client_over(&[false, false], 0);
        let picks: Vec<usize> = (0..4).map(|_| fc.pick_endpoint()).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn connection_error_downcasts_from_io() {
        let e = io::Error::other(ConnectionError::MaybeApplied {
            source: io::Error::new(io::ErrorKind::BrokenPipe, "gone"),
        });
        assert!(ConnectionError::is_maybe_applied(&e));
        match ConnectionError::from_io(&e) {
            Some(ConnectionError::MaybeApplied { source }) => {
                assert_eq!(source.kind(), io::ErrorKind::BrokenPipe);
            }
            other => panic!("bad downcast: {other:?}"),
        }
        let plain = io::Error::other("nope");
        assert!(!ConnectionError::is_maybe_applied(&plain));
        assert!(ConnectionError::from_io(&plain).is_none());
    }

    #[test]
    fn invalid_keys_are_rejected_client_side() {
        let mut fc = FailoverClient::new(vec!["127.0.0.1:1".into()], FailoverConfig::default());
        let err = fc.get("has space").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = fc.set("", b"v").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
