//! A blocking client for the csr-serve protocol.
//!
//! One [`Client`] owns one connection. Calls are synchronous
//! request/response by default; [`Client::get_pipelined`] demonstrates the
//! protocol's pipelining (many requests on the wire before the first
//! response is read), which is how a latency-bound workload recovers
//! throughput without more connections.

use crate::proto::{self, MAX_VALUE_LEN};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A `GET` result carrying its degradation flag: `stale` is set when the
/// server answered from its stale store because the origin failed (the
/// `STALE` token on the `VALUE` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The value bytes.
    pub data: Vec<u8>,
    /// Whether this is a stale copy served while the origin is degraded.
    pub stale: bool,
}

/// The typed form of the server's recoverable `ORIGIN_ERROR` reply: the
/// origin fetch failed and no stale copy was available. Surfaced wrapped
/// in an [`io::Error`]; recover it with
/// `err.get_ref().and_then(|e| e.downcast_ref::<OriginError>())`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginError {
    /// The server's reason line.
    pub reason: String,
}

impl std::fmt::Display for OriginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ORIGIN_ERROR {}", self.reason)
    }
}

impl std::error::Error for OriginError {}

/// A connection to a csr-serve server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sets read/write timeouts on the underlying socket (`None`
    /// blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_timeouts(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Looks `key` up; `None` means neither the cache nor the origin has
    /// it. A stale copy served under origin failure is returned like any
    /// other value — use [`get_value`](Self::get_value) to observe the
    /// `STALE` flag.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors, including the
    /// recoverable `ORIGIN_ERROR` reply as a typed [`OriginError`].
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.get_value(key)?.map(|v| v.data))
    }

    /// Looks `key` up, surfacing the degradation flag: the returned
    /// [`Value`] says whether the server answered with a stale copy.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors, including the
    /// recoverable `ORIGIN_ERROR` reply as a typed [`OriginError`].
    pub fn get_value(&mut self, key: &str) -> io::Result<Option<Value>> {
        write!(self.writer, "GET {key}\r\n")?;
        self.writer.flush()?;
        self.read_get_reply()
    }

    /// Issues every `GET` before reading any reply (one flush, one
    /// round-trip's worth of latency for the whole batch).
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors. An `ORIGIN_ERROR`
    /// for any key in the batch fails the whole call with the *first*
    /// such error — but `ORIGIN_ERROR` is recoverable, so the remaining
    /// replies are still drained off the wire first and the connection
    /// stays usable afterwards. Issue keys individually when origin
    /// failures must be told apart per key.
    pub fn get_pipelined(&mut self, keys: &[&str]) -> io::Result<Vec<Option<Vec<u8>>>> {
        for key in keys {
            write!(self.writer, "GET {key}\r\n")?;
        }
        self.writer.flush()?;
        let mut out = Vec::with_capacity(keys.len());
        let mut first_origin_err: Option<io::Error> = None;
        for _ in keys {
            match self.read_get_reply() {
                Ok(v) => out.push(v.map(|v| v.data)),
                // The server keeps sending the batch's remaining replies
                // after a recoverable ORIGIN_ERROR: returning early here
                // would desynchronize the stream and hand leftover replies
                // to the next call, so read every reply before failing.
                Err(e) if is_origin_error(&e) => {
                    first_origin_err.get_or_insert(e);
                }
                // Transport/framing failures: stream position is already
                // lost, nothing left to drain.
                Err(e) => return Err(e),
            }
        }
        match first_origin_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Stores `key -> value`.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn set(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        write!(self.writer, "SET {key} {}\r\n", value.len())?;
        self.writer.write_all(value)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()?;
        match self.read_line()?.as_str() {
            "STORED" => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Deletes `key`; `true` if it was resident.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn del(&mut self, key: &str) -> io::Result<bool> {
        write!(self.writer, "DEL {key}\r\n")?;
        self.writer.flush()?;
        match self.read_line()?.as_str() {
            "DELETED" => Ok(true),
            "NOT_FOUND" => Ok(false),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's `STATS` table as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.writer.write_all(b"STATS\r\n")?;
        self.writer.flush()?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(out);
            }
            match line
                .strip_prefix("STAT ")
                .and_then(|rest| rest.split_once(' '))
            {
                Some((name, value)) => out.push((name.to_owned(), value.to_owned())),
                None => return Err(unexpected(&line)),
            }
        }
    }

    /// Fetches the Prometheus metrics exposition.
    ///
    /// # Errors
    ///
    /// Transport failures and server-reported errors.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.writer.write_all(b"METRICS\r\n")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        let len = line
            .strip_prefix("DATA ")
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n <= MAX_VALUE_LEN)
            .ok_or_else(|| unexpected(&line))?;
        let body = self.read_payload(len)?;
        String::from_utf8(body).map_err(|_| io::Error::other("metrics body was not UTF-8"))
    }

    /// Sends `QUIT` and closes the connection cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn quit(mut self) -> io::Result<()> {
        self.writer.write_all(b"QUIT\r\n")?;
        self.writer.flush()
    }

    /// Reads one `GET` reply: `VALUE [STALE]`+payload+`END`, a bare
    /// `END`, or the recoverable `ORIGIN_ERROR`.
    fn read_get_reply(&mut self) -> io::Result<Option<Value>> {
        let line = self.read_line()?;
        if line == "END" {
            return Ok(None);
        }
        if let Some(reason) = line.strip_prefix("ORIGIN_ERROR") {
            return Err(io::Error::other(OriginError {
                reason: reason.trim_start().to_owned(),
            }));
        }
        let rest = line
            .strip_prefix("VALUE ")
            .ok_or_else(|| unexpected(&line))?;
        let mut fields = rest.split(' ');
        let _key = fields.next().ok_or_else(|| unexpected(&line))?;
        let len = fields
            .next()
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n <= MAX_VALUE_LEN)
            .ok_or_else(|| unexpected(&line))?;
        let stale = match fields.next() {
            None => false,
            Some("STALE") => true,
            Some(_) => return Err(unexpected(&line)),
        };
        if fields.next().is_some() {
            return Err(unexpected(&line));
        }
        let body = self.read_payload(len)?;
        match self.read_line()?.as_str() {
            "END" => Ok(Some(Value { data: body, stale })),
            other => Err(unexpected(other)),
        }
    }

    /// Reads `len` payload bytes plus the trailing CRLF.
    fn read_payload(&mut self, len: usize) -> io::Result<Vec<u8>> {
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let mut tail = [0u8; 2];
        self.reader.read_exact(&mut tail)?;
        if &tail != b"\r\n" {
            return Err(io::Error::other("payload not CRLF-terminated"));
        }
        Ok(body)
    }

    /// Reads one response line, without its terminator.
    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        loop {
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.ends_with('\n') {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                return Ok(line);
            }
            if line.len() > proto::MAX_LINE_LEN {
                return Err(io::Error::other("overlong response line"));
            }
        }
    }
}

/// Maps an error or unexpected reply line to an `io::Error`, preserving
/// the server's wording (`SERVER_BUSY`, `CLIENT_ERROR ...`).
fn unexpected(line: &str) -> io::Error {
    io::Error::other(format!("unexpected server reply: {line}"))
}

/// Whether `e` wraps the recoverable [`OriginError`] reply (the stream
/// framing is intact; transport and framing errors are not recoverable).
fn is_origin_error(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<OriginError>())
}
