//! The read-through origin behind the cache server.
//!
//! A [`Backing`] is whatever the cache is *for* — the slow thing a hit
//! avoids. The server measures the wall-clock latency of every
//! [`Backing::try_fetch`] it performs and feeds that measurement back into
//! the cache as the entry's miss cost, which is exactly the paper's
//! cost-sensitivity premise (miss penalties measured in cycles, Section 4)
//! transplanted to a network service: the replacement policy optimizes a
//! *measured* signal, not a caller-supplied constant.
//!
//! Fetches are **fallible**: a real origin can refuse, stall, or break
//! mid-transfer, and retrieval cost is only meaningful when retrieval can
//! fail ([`BackingError`]). Origins that cannot fail implement the simpler
//! [`InfallibleBacking`] and are adapted automatically. The resilience
//! middleware that wraps fallible origins (deadlines, retry, circuit
//! breaking, fault injection) lives in [`crate::resilience`].
//!
//! [`SimBacking`] simulates a tiered origin (e.g. an SSD page cache in
//! front of a remote object store): a deterministic subset of the keyspace
//! is "far" and costs several times the base latency. Which tier a key
//! lives in is a pure function of the key, so a given key's miss cost is
//! stable across refetches — the property the reservation-based policies
//! (BCL/DCL/ACL) exploit.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Why an origin fetch failed — as opposed to succeeding with "no such
/// key", which is `Ok(None)` and is *not* an error.
///
/// The distinction matters end to end: an `Ok(None)` is authoritative (the
/// server replies an empty `END`, coalesced waiters share it), while a
/// `BackingError` is a degraded origin — the server serves a stale copy or
/// replies `ORIGIN_ERROR`, the resilience middleware may retry, and
/// single-flight waiters re-fetch instead of inheriting the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackingError {
    /// The origin refused or cannot currently serve (connection refused,
    /// dependency down).
    NotAvailable(String),
    /// The fetch did not complete within its deadline.
    Timeout,
    /// The origin failed mid-fetch with a transport or storage error.
    Io(String),
    /// The call failed fast *without touching the origin* (circuit
    /// breaker open, half-open probe already in flight). Unlike the other
    /// kinds this says nothing about origin health at this instant, so
    /// the retry layer neither retries it nor counts it as an origin
    /// error.
    Rejected(String),
}

impl std::fmt::Display for BackingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackingError::NotAvailable(why) => write!(f, "origin not available: {why}"),
            BackingError::Timeout => f.write_str("origin fetch timed out"),
            BackingError::Io(why) => write!(f, "origin i/o error: {why}"),
            BackingError::Rejected(why) => write!(f, "origin call rejected: {why}"),
        }
    }
}

impl std::error::Error for BackingError {}

impl BackingError {
    /// Short label for metrics (`csr_serve_origin_errors_total{kind=...}`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            BackingError::NotAvailable(_) => "not_available",
            BackingError::Timeout => "timeout",
            BackingError::Io(_) => "io",
            BackingError::Rejected(_) => "rejected",
        }
    }
}

/// An origin the server reads through to on a cache miss.
///
/// `Ok(None)` means the origin definitively has no entry for the key;
/// `Err` means the fetch *failed* and says nothing about whether the key
/// exists. Origins that cannot fail implement [`InfallibleBacking`]
/// instead and get this trait via its blanket impl.
pub trait Backing: Send + Sync + 'static {
    /// Fetches `key` from the origin.
    ///
    /// # Errors
    ///
    /// [`BackingError`] when the origin could not complete the fetch.
    fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError>;
}

/// An origin that can miss but never fail (in-memory maps, pure
/// simulations). Every `InfallibleBacking` is a [`Backing`] whose
/// `try_fetch` never errors, via the blanket adapter below — existing
/// infallible origins keep working against the fallible server path.
pub trait InfallibleBacking: Send + Sync + 'static {
    /// Fetches `key` from the origin; `None` when the origin has no entry.
    fn fetch(&self, key: &str) -> Option<Vec<u8>>;
}

impl<T: InfallibleBacking> Backing for T {
    fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError> {
        Ok(self.fetch(key))
    }
}

/// FNV-1a, the deterministic key hash used for tier selection (stable
/// across processes and runs, unlike `RandomState`).
#[must_use]
pub fn fnv1a(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A simulated tiered origin: every key resolves (synthesized value), but
/// 1 in [`slow_every`](SimBacking::slow_every) keys lives in the slow tier
/// and costs [`slow`](SimBacking::slow) instead of
/// [`fast`](SimBacking::fast) per fetch.
#[derive(Debug, Clone)]
pub struct SimBacking {
    /// Latency of a fast-tier fetch.
    pub fast: Duration,
    /// Latency of a slow-tier fetch.
    pub slow: Duration,
    /// One in `slow_every` keys is slow (0 disables the slow tier).
    pub slow_every: u64,
    /// Length of every synthesized value, in bytes.
    pub value_len: usize,
}

impl Default for SimBacking {
    /// The bimodal 1x/8x origin of the serving demo: 100 µs fast tier,
    /// 800 µs slow tier, one key in eight slow, 128-byte values.
    fn default() -> Self {
        SimBacking {
            fast: Duration::from_micros(100),
            slow: Duration::from_micros(800),
            slow_every: 8,
            value_len: 128,
        }
    }
}

impl SimBacking {
    /// Whether `key` lives in the slow tier (a pure function of the key).
    #[must_use]
    pub fn is_slow(&self, key: &str) -> bool {
        self.slow_every != 0 && fnv1a(key).is_multiple_of(self.slow_every)
    }

    /// The value every fetch of `key` returns: the key itself, then `#`
    /// padding to [`value_len`](Self::value_len) bytes (keeping at least
    /// the key so responses are self-describing in packet dumps).
    #[must_use]
    pub fn value_for(&self, key: &str) -> Vec<u8> {
        let mut v = key.as_bytes().to_vec();
        v.resize(v.len().max(self.value_len), b'#');
        v
    }
}

impl InfallibleBacking for SimBacking {
    fn fetch(&self, key: &str) -> Option<Vec<u8>> {
        let latency = if self.is_slow(key) {
            self.slow
        } else {
            self.fast
        };
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        Some(self.value_for(key))
    }
}

/// An in-memory origin for tests and for pure-cache deployments that
/// preload: fetches are instant and keys absent from the map miss.
#[derive(Debug, Default)]
pub struct MemoryBacking {
    entries: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemoryBacking {
    /// An empty origin.
    #[must_use]
    pub fn new() -> Self {
        MemoryBacking::default()
    }

    /// Puts `key -> value` into the origin.
    pub fn put(&self, key: impl Into<String>, value: impl Into<Vec<u8>>) {
        self.entries
            .lock()
            .expect("backing lock poisoned")
            .insert(key.into(), value.into());
    }

    /// Removes `key` from the origin.
    pub fn delete(&self, key: &str) {
        self.entries
            .lock()
            .expect("backing lock poisoned")
            .remove(key);
    }
}

impl InfallibleBacking for MemoryBacking {
    fn fetch(&self, key: &str) -> Option<Vec<u8>> {
        self.entries
            .lock()
            .expect("backing lock poisoned")
            .get(key)
            .cloned()
    }
}

/// No origin at all: every miss is a plain miss (`GET` of an unset key
/// returns nothing, exactly a memcached).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBacking;

impl InfallibleBacking for NoBacking {
    fn fetch(&self, _key: &str) -> Option<Vec<u8>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiering_is_deterministic_and_roughly_proportional() {
        let b = SimBacking {
            slow_every: 8,
            ..SimBacking::default()
        };
        let slow_keys = (0..8000).filter(|i| b.is_slow(&format!("key:{i}"))).count();
        // 1-in-8 by hash: allow generous slack either side.
        assert!(
            (600..=1500).contains(&slow_keys),
            "got {slow_keys} slow keys out of 8000"
        );
        for i in 0..100 {
            let k = format!("key:{i}");
            assert_eq!(b.is_slow(&k), b.is_slow(&k), "tier must be stable");
        }
    }

    #[test]
    fn sim_values_embed_the_key_and_pad() {
        let b = SimBacking {
            fast: Duration::ZERO,
            slow: Duration::ZERO,
            value_len: 16,
            ..SimBacking::default()
        };
        let v = b.fetch("abc").expect("sim origin always resolves");
        assert_eq!(v.len(), 16);
        assert!(v.starts_with(b"abc"));
        // Keys longer than value_len are kept whole.
        let long = "k".repeat(32);
        assert_eq!(b.fetch(&long).unwrap().len(), 32);
    }

    #[test]
    fn memory_backing_round_trips_and_misses() {
        let b = MemoryBacking::new();
        assert_eq!(b.fetch("a"), None);
        b.put("a", b"1".to_vec());
        assert_eq!(b.fetch("a"), Some(b"1".to_vec()));
        b.delete("a");
        assert_eq!(b.fetch("a"), None);
        assert_eq!(NoBacking.fetch("a"), None);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }
}
