//! The event-driven serving engine (`--io event`): a handful of reactor
//! threads multiplex every connection over [`crate::poller`], while a
//! pool of executor threads runs the requests.
//!
//! # Why split reactors from executors
//!
//! Request *execution* can block for real time: a cache miss runs the
//! resilience stack against the origin (deadlines, retries, a breaker —
//! seconds in the worst case), and single-flight coalescing parks
//! followers on a condvar. Running that on a reactor would stall every
//! connection the reactor owns. So reactors do only nonblocking work —
//! accept, read, parse, write — and hand each parsed request to the
//! executor pool ([`ServerConfig::workers`](crate::ServerConfig::workers)
//! threads). The executor renders the response into a pooled buffer and
//! posts it back to the owning reactor's completion queue, waking its
//! poller. This is the classic SEDA/staged shape: connection *count*
//! scales with the reactors (tens of thousands), request *concurrency*
//! with the executors.
//!
//! # Connection state machine
//!
//! Each connection is owned by exactly one reactor thread — no locks on
//! the hot path. Per connection: a read buffer accumulating at most one
//! frame, an output queue of response chunks flushed with vectored
//! writes, and two flags (`executing`, `close_after_flush`). Parsing
//! reuses the *blocking* [`crate::proto`] parser unchanged, fed through
//! [`SliceCursor`]: when the buffered bytes end mid-frame the cursor
//! reports `WouldBlock`, which classifies the outcome as *incomplete* —
//! re-parsed from scratch when more data arrives. That re-parse is
//! O(frame²) worst case, a deliberate trade for byte-identical grammar,
//! limits, and error strings across both engines.
//!
//! While a request executes, the connection's read interest is dropped:
//! one request in flight per connection, exactly the blocking engine's
//! cadence, with TCP's own receive window as the backpressure. That also
//! bounds the read buffer: a frame is capped by the protocol's limits,
//! and anything incomplete beyond [`READ_BUF_CAP`] can only be a
//! newline-less flood, cut with the protocol's overlong-line error.
//!
//! # Drain semantics
//!
//! Shutdown wakes every poller. Each reactor deregisters the listener,
//! closes idle connections once their output drains, and lets executing
//! requests finish — their responses still flush before the close. A
//! reactor exits when it owns nothing; dropping its job sender closes
//! the executors' queue, and the supervisor joins reactors, then
//! executors, then flushes the final metrics report.

use crate::poller::{Event, Interest, Poller, WAKE_TOKEN};
use crate::proto::{self, ProtoError, Request, MAX_LINE_LEN, MAX_SWALLOW_LEN};
use crate::server::{respond, ConnTimeouts, Shared};
use csr_obs::{Counter, Gauge, Reporter};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token the shared listener is registered under on every reactor.
const LISTENER_TOKEN: u64 = 0;

/// Hard cap on one connection's read buffer. The largest legitimate
/// frame is a maximal `SET` line plus a maximal swallowable payload and
/// its CRLF tail; only a newline-less flood can be *incomplete* at this
/// size, and it is cut with the overlong-line error instead of buffering
/// without bound. (The blocking engine discards such floods streamingly;
/// cutting the connection here is the documented hardening divergence.)
const READ_BUF_CAP: usize = MAX_LINE_LEN + 2 + MAX_SWALLOW_LEN + 2;

/// Per-read scratch size; bounded reads keep one chatty peer from
/// starving the reactor's other connections (level-triggering re-reports
/// the remainder).
const READ_CHUNK: usize = 64 * 1024;

/// Max chunks handed to one `write_vectored` call.
const MAX_IOVEC: usize = 16;

/// Response buffers above this capacity are dropped rather than pooled —
/// one `TRACES` dump must not pin megabytes forever.
const POOL_MAX_BUF: usize = 256 * 1024;

/// Max pooled buffers (shared across reactors and executors).
const POOL_MAX_BUFS: usize = 128;

/// How often each reactor sweeps its connections for timeouts.
const SWEEP_EVERY: Duration = Duration::from_millis(100);

/// Poll timeout: the upper bound on sweep latency when fully idle.
const POLL_TIMEOUT: Duration = Duration::from_millis(250);

/// Event-engine knobs, resolved by `serve` from the `ServerConfig`.
pub(crate) struct EventParams {
    /// Reactor threads (0: one per hardware thread, capped at 8).
    pub(crate) reactors: usize,
    /// Executor threads running requests.
    pub(crate) executors: usize,
    /// Resident-connection ceiling (0: unbounded); past it new accepts
    /// are shed with `SERVER_BUSY`.
    pub(crate) max_conns: usize,
    pub(crate) timeouts: ConnTimeouts,
}

/// `csr_serve_reactor_*`: the event engine's own families, alongside the
/// engine-agnostic `csr_serve_*` ones.
struct ReactorMetrics {
    threads: Arc<Gauge>,
    connections: Arc<Gauge>,
    polls: Arc<Counter>,
    events: Arc<Counter>,
    wakeups: Arc<Counter>,
    dispatched: Arc<Counter>,
    completions: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

impl ReactorMetrics {
    fn new(registry: &csr_obs::Registry) -> Self {
        ReactorMetrics {
            threads: registry.gauge(
                "csr_serve_reactor_threads",
                "Reactor threads serving the event engine",
                &[],
            ),
            connections: registry.gauge(
                "csr_serve_reactor_connections",
                "Connections currently resident across all reactors",
                &[],
            ),
            polls: registry.counter(
                "csr_serve_reactor_polls_total",
                "Poller wait calls across all reactors",
                &[],
            ),
            events: registry.counter(
                "csr_serve_reactor_events_total",
                "Readiness events delivered across all reactors",
                &[],
            ),
            wakeups: registry.counter(
                "csr_serve_reactor_wakeups_total",
                "Cross-thread poller wakeups observed (completions, shutdown)",
                &[],
            ),
            dispatched: registry.counter(
                "csr_serve_reactor_exec_dispatched_total",
                "Requests handed from reactors to the executor pool",
                &[],
            ),
            completions: registry.counter(
                "csr_serve_reactor_exec_completions_total",
                "Responses posted back from executors to reactors",
                &[],
            ),
            queue_depth: registry.gauge(
                "csr_serve_reactor_exec_queue_depth",
                "Requests queued for an executor right now",
                &[],
            ),
        }
    }
}

/// State shared by all reactors and executors of one event server.
struct EventShared {
    shared: Arc<Shared>,
    rm: ReactorMetrics,
    conn_count: AtomicUsize,
    max_conns: usize,
    timeouts: ConnTimeouts,
    /// Recycled response/output buffers (executors pop, reactors push
    /// back once flushed).
    buffers: Mutex<Vec<Vec<u8>>>,
}

impl EventShared {
    fn pop_buffer(&self) -> Vec<u8> {
        self.buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn recycle(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > POOL_MAX_BUF {
            return;
        }
        buf.clear();
        let mut pool = self.buffers.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < POOL_MAX_BUFS {
            pool.push(buf);
        }
    }
}

/// One reactor's cross-thread mailbox: executors post completions here
/// and wake the poller.
struct ReactorShared {
    poller: Arc<Poller>,
    completions: Mutex<Vec<Completion>>,
}

/// A parsed request in flight to the executor pool.
struct Job {
    reactor: usize,
    conn: u64,
    request: Request,
    anchor: Instant,
}

/// A rendered response on its way back to the owning reactor.
struct Completion {
    conn: u64,
    bytes: Vec<u8>,
    /// The handler panicked: close the connection without a reply (the
    /// blocking engine's behaviour), pool intact.
    panicked: bool,
}

/// What `spawn` hands back: the supervisor to join at shutdown, and the
/// per-reactor pollers (the shutdown wake strategy).
pub(crate) type EngineHandles = (JoinHandle<io::Result<()>>, Vec<Arc<Poller>>);

/// Spawns the event engine: reactors, executors, and a supervisor that
/// tears everything down in order. Returns the supervisor handle and the
/// per-reactor pollers (the shutdown wake strategy).
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
    reporter: Option<Reporter<std::fs::File>>,
    params: EventParams,
) -> io::Result<EngineHandles> {
    assert!(params.executors > 0, "need at least one executor");
    listener.set_nonblocking(true)?;
    let n_reactors = if params.reactors == 0 {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(8)
    } else {
        params.reactors
    };

    let rm = ReactorMetrics::new(&shared.registry);
    rm.threads.set(n_reactors as i64);
    let ev = Arc::new(EventShared {
        shared,
        rm,
        conn_count: AtomicUsize::new(0),
        max_conns: params.max_conns,
        timeouts: params.timeouts,
        buffers: Mutex::new(Vec::new()),
    });

    // Pollers and listener clones are created up front so a resource
    // failure fails `serve` itself, not a background thread.
    let mailboxes: Vec<Arc<ReactorShared>> = (0..n_reactors)
        .map(|_| {
            Ok(Arc::new(ReactorShared {
                poller: Arc::new(Poller::new()?),
                completions: Mutex::new(Vec::new()),
            }))
        })
        .collect::<io::Result<_>>()?;
    let pollers: Vec<Arc<Poller>> = mailboxes.iter().map(|m| Arc::clone(&m.poller)).collect();
    let listeners: Vec<TcpListener> = (0..n_reactors)
        .map(|_| listener.try_clone())
        .collect::<io::Result<_>>()?;

    let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let executors: Vec<JoinHandle<()>> = (0..params.executors)
        .map(|i| {
            let rx = Arc::clone(&job_rx);
            let ev = Arc::clone(&ev);
            let mailboxes = mailboxes.clone();
            std::thread::Builder::new()
                .name(format!("csr-exec-{i}"))
                .spawn(move || executor_loop(&rx, &ev, &mailboxes))
                .expect("spawn executor thread")
        })
        .collect();

    let reactors: Vec<JoinHandle<io::Result<()>>> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let ev = Arc::clone(&ev);
            let rs = Arc::clone(&mailboxes[i]);
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name(format!("csr-reactor-{i}"))
                .spawn(move || Reactor::new(i, ev, rs, listener, job_tx)?.run())
                .expect("spawn reactor thread")
        })
        .collect();
    // The executors' queue must close when the *reactors* are done, so
    // the supervisor keeps no sender of its own.
    drop(job_tx);

    let supervisor = std::thread::Builder::new()
        .name("csr-event-supervisor".to_owned())
        .spawn(move || {
            let mut result = Ok(());
            for r in reactors {
                match r.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => result = result.and(Err(e)),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            for e in executors {
                let _ = e.join();
            }
            match reporter {
                Some(rep) => result.and(rep.stop().map(|_| ())),
                None => result,
            }
        })?;
    Ok((supervisor, pollers))
}

/// One executor: run queued requests until the reactors drop the queue.
/// Panics are contained per-request (`csr_serve_worker_panics_total`),
/// mirroring the blocking workers.
fn executor_loop(rx: &Mutex<Receiver<Job>>, ev: &EventShared, mailboxes: &[Arc<ReactorShared>]) {
    loop {
        let job = {
            let queue = rx.lock().unwrap_or_else(PoisonError::into_inner);
            match queue.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        ev.rm.queue_depth.add(-1);
        let Job {
            reactor,
            conn,
            request,
            anchor,
        } = job;
        let shared = &ev.shared;
        let rendered = catch_unwind(AssertUnwindSafe(|| {
            let mut out = ev.pop_buffer();
            // Writing into a Vec cannot fail.
            let _ = respond(request, shared, &mut out, anchor);
            out
        }));
        let completion = match rendered {
            Ok(bytes) => Completion {
                conn,
                bytes,
                panicked: false,
            },
            Err(_) => {
                shared.metrics.worker_panics.inc();
                Completion {
                    conn,
                    bytes: Vec::new(),
                    panicked: true,
                }
            }
        };
        let mailbox = &mailboxes[reactor];
        mailbox
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(completion);
        ev.rm.completions.inc();
        mailbox.poller.wake();
    }
}

/// Output queue: response chunks flushed with vectored writes, drained
/// chunks recycled to the shared pool.
#[derive(Default)]
struct OutBuf {
    chunks: VecDeque<Vec<u8>>,
    /// Offset of the first unwritten byte in the front chunk.
    pos: usize,
    /// Total unwritten bytes.
    len: usize,
}

impl OutBuf {
    fn push(&mut self, chunk: Vec<u8>, ev: &EventShared) {
        if chunk.is_empty() {
            ev.recycle(chunk);
            return;
        }
        self.len += chunk.len();
        self.chunks.push_back(chunk);
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes as much as the socket accepts; `Ok(true)` once drained,
    /// `Ok(false)` on `WouldBlock`.
    fn flush(&mut self, stream: &mut TcpStream, ev: &EventShared) -> io::Result<bool> {
        while !self.chunks.is_empty() {
            let empty: &[u8] = &[];
            let mut slices = [IoSlice::new(empty); MAX_IOVEC];
            let mut n_slices = 0;
            for (i, chunk) in self.chunks.iter().take(MAX_IOVEC).enumerate() {
                let from = if i == 0 { self.pos } else { 0 };
                slices[i] = IoSlice::new(&chunk[from..]);
                n_slices = i + 1;
            }
            match stream.write_vectored(&slices[..n_slices]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.consume(n, ev),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    fn consume(&mut self, mut n: usize, ev: &EventShared) {
        self.len -= n;
        while n > 0 {
            let front_left = self.chunks[0].len() - self.pos;
            if n >= front_left {
                n -= front_left;
                self.pos = 0;
                let done = self.chunks.pop_front().expect("nonempty while consuming");
                ev.recycle(done);
            } else {
                self.pos += n;
                n = 0;
            }
        }
    }

    fn recycle_all(&mut self, ev: &EventShared) {
        self.pos = 0;
        self.len = 0;
        for chunk in self.chunks.drain(..) {
            ev.recycle(chunk);
        }
    }
}

/// A [`std::io::BufRead`] over already-buffered bytes that reports
/// `WouldBlock` at the end — unless `eof` is set, in which case it
/// reports a genuine end-of-stream. Feeding the unchanged blocking
/// parser through this is what guarantees grammar/limit/error parity:
/// with `eof` the parser produces exactly its blocking-mode outcomes
/// (`Ok(None)` clean close, fatal mid-line/mid-payload EOF errors), and
/// without it every "ran out of bytes" path surfaces as `WouldBlock`
/// (directly, or remapped by the payload reader — see [`try_parse`]).
struct SliceCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    eof: bool,
}

impl Read for SliceCursor<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let available = io::BufRead::fill_buf(self)?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        io::BufRead::consume(self, n);
        Ok(n)
    }
}

impl io::BufRead for SliceCursor<'_> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos < self.buf.len() {
            Ok(&self.buf[self.pos..])
        } else if self.eof {
            Ok(&[])
        } else {
            Err(io::ErrorKind::WouldBlock.into())
        }
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

/// One parse attempt over a connection's buffered bytes.
enum Parsed {
    /// A whole request, and how many bytes it consumed.
    Request(Request, usize),
    /// The bytes end mid-frame: wait for more data.
    Incomplete,
    /// A protocol error (recoverable or fatal), and the bytes consumed
    /// reaching the resync point.
    Error(ProtoError, usize),
    /// Clean EOF at a frame boundary.
    Eof,
}

/// Runs the blocking parser over `buf`. The *incomplete* classification
/// is the subtle part: besides a raw `WouldBlock`, the payload reader
/// maps every read failure to its fatal "unexpected EOF in payload" —
/// when the cursor is not at true EOF, that error *is* "not enough bytes
/// yet". With `eof` set neither mapping can trigger, so every blocking
/// outcome passes through verbatim.
fn try_parse(buf: &[u8], eof: bool) -> Parsed {
    let mut cur = SliceCursor { buf, pos: 0, eof };
    match proto::read_request(&mut cur) {
        Ok(Some(req)) => Parsed::Request(req, cur.pos),
        Ok(None) => Parsed::Eof,
        Err(ProtoError::Io(e)) if !eof && e.kind() == io::ErrorKind::WouldBlock => {
            Parsed::Incomplete
        }
        Err(ProtoError::Client { ref msg, fatal, .. })
            if !eof && fatal && msg == "unexpected EOF in payload" =>
        {
            Parsed::Incomplete
        }
        Err(e) => Parsed::Error(e, cur.pos),
    }
}

/// One connection, owned by one reactor.
struct Conn {
    token: u64,
    stream: TcpStream,
    /// Accumulated unparsed bytes (at most one partial frame plus
    /// whatever pipelined requests arrived with it).
    buf: Vec<u8>,
    out: OutBuf,
    /// A request is with the executor pool; reads are paused.
    executing: bool,
    /// Close once `out` drains (QUIT, fatal error, shutdown drain).
    close_after_flush: bool,
    /// The peer's write side is done; parse what is buffered with true
    /// EOF semantics and never read again.
    saw_eof: bool,
    /// Close now, discarding any undelivered output (transport error,
    /// timeout, handler panic).
    dead: bool,
    /// When the first byte of the currently-incomplete request arrived —
    /// the slowloris clock, and the trace anchor once it dispatches.
    started: Option<Instant>,
    /// Last read progress or completion — the idle clock.
    last_activity: Instant,
    /// Last write progress while output was pending — the write-stall
    /// clock.
    last_write_progress: Instant,
    /// Interest currently registered with the poller.
    interest: Interest,
}

/// Everything a connection needs from its reactor to make progress.
struct Ctx<'a> {
    ev: &'a EventShared,
    poller: &'a Poller,
    job_tx: &'a Sender<Job>,
    reactor: usize,
}

impl Conn {
    /// Parses and dispatches/answers as much of `buf` as possible, then
    /// flushes and re-registers interest. The single entry point after
    /// *any* progress: fresh reads, completions, or first registration.
    fn advance(&mut self, ctx: &Ctx<'_>) {
        while !(self.executing || self.close_after_flush || self.dead) {
            if self.buf.is_empty() {
                self.started = None;
                if self.saw_eof {
                    self.close_after_flush = true;
                }
                break;
            }
            // Entering a drain between requests drops the connection just
            // like the blocking engine's between-requests shutdown check.
            if ctx.ev.shared.shutting_down() {
                self.close_after_flush = true;
                break;
            }
            match try_parse(&self.buf, self.saw_eof) {
                Parsed::Request(request, consumed) => {
                    self.buf.drain(..consumed);
                    if matches!(request, Request::Quit) {
                        self.close_after_flush = true;
                        break;
                    }
                    let anchor = self.started.take().unwrap_or_else(Instant::now);
                    self.executing = true;
                    ctx.ev.rm.dispatched.inc();
                    ctx.ev.rm.queue_depth.add(1);
                    if ctx
                        .job_tx
                        .send(Job {
                            reactor: ctx.reactor,
                            conn: self.token,
                            request,
                            anchor,
                        })
                        .is_err()
                    {
                        // Executors are gone (drain raced us): nothing
                        // will answer, close out.
                        ctx.ev.rm.queue_depth.add(-1);
                        self.dead = true;
                    }
                    break;
                }
                Parsed::Incomplete => {
                    if self.buf.len() >= READ_BUF_CAP {
                        // A newline-less flood (see READ_BUF_CAP docs).
                        self.reply_error("CLIENT_ERROR command line too long", Some("line"), ctx);
                        self.close_after_flush = true;
                    } else if self.started.is_none() {
                        self.started = Some(Instant::now());
                    }
                    break;
                }
                Parsed::Error(ProtoError::Client { msg, fatal, limit }, consumed) => {
                    self.buf.drain(..consumed);
                    self.reply_error(&msg, limit, ctx);
                    if fatal {
                        self.close_after_flush = true;
                        break;
                    }
                    self.started = None; // resynced: next bytes are a new request
                }
                Parsed::Error(ProtoError::Io(_), _) => {
                    // Unreachable with a SliceCursor, but never trust it
                    // silently: treat as a dead transport.
                    self.dead = true;
                }
                Parsed::Eof => {
                    self.close_after_flush = true;
                    break;
                }
            }
        }
        self.flush_and_update(ctx);
    }

    /// Buffers the blocking engine's error reply for a client protocol
    /// error, bumping the same counters.
    fn reply_error(&mut self, msg: &str, limit: Option<&'static str>, ctx: &Ctx<'_>) {
        let metrics = &ctx.ev.shared.metrics;
        metrics.req_errors.inc();
        if let Some(kind) = limit {
            metrics.limit_reject(kind).inc();
        }
        let mut chunk = ctx.ev.pop_buffer();
        if msg.starts_with("CLIENT_ERROR") {
            let _ = proto::write_line(&mut chunk, msg);
        } else {
            let _ = proto::write_line(&mut chunk, &format!("CLIENT_ERROR {msg}"));
        }
        self.out.push(chunk, ctx.ev);
    }

    /// Reads until `WouldBlock`/EOF (bounded per event for fairness),
    /// then advances the state machine.
    fn on_readable(&mut self, ctx: &Ctx<'_>, scratch: &mut [u8]) {
        if self.executing || self.saw_eof || self.close_after_flush {
            // Interest should already exclude reads here; a stale event
            // from before a modify is harmless.
            self.flush_and_update(ctx);
            return;
        }
        let mut budget = 4; // × READ_CHUNK per readiness event
        while budget > 0 && !self.dead {
            budget -= 1;
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&scratch[..n]);
                    self.last_activity = Instant::now();
                    if self.buf.len() >= READ_BUF_CAP {
                        break; // advance() handles the flood
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => budget += 1,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                }
            }
        }
        self.advance(ctx);
    }

    /// A response came back from the executor pool.
    fn on_completion(&mut self, completion: Completion, ctx: &Ctx<'_>) {
        self.executing = false;
        self.last_activity = Instant::now();
        if completion.panicked {
            ctx.ev.recycle(completion.bytes);
            self.dead = true;
            self.flush_and_update(ctx);
            return;
        }
        self.out.push(completion.bytes, ctx.ev);
        // Pipelined follow-ups may already be buffered.
        self.advance(ctx);
    }

    /// Flushes what the socket will take, closes if drained-and-done,
    /// and re-registers the poller interest to match the new state.
    fn flush_and_update(&mut self, ctx: &Ctx<'_>) {
        if self.dead {
            return;
        }
        if !self.out.is_empty() {
            match self.out.flush(&mut self.stream, ctx.ev) {
                Ok(_) => self.last_write_progress = Instant::now(),
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.out.is_empty() && self.close_after_flush {
            self.dead = true;
            return;
        }
        let want = Interest {
            readable: !(self.executing || self.saw_eof || self.close_after_flush),
            writable: !self.out.is_empty(),
        };
        if want != self.interest {
            if ctx
                .poller
                .modify(self.stream.as_raw_fd(), self.token, want)
                .is_err()
            {
                self.dead = true;
                return;
            }
            self.interest = want;
        }
    }

    /// Timeout sweep for this connection; marks it dead / closing as the
    /// blocking engine's deadline plumbing would.
    fn sweep(&mut self, now: Instant, ctx: &Ctx<'_>) {
        let timeouts = &ctx.ev.timeouts;
        if !self.out.is_empty() && now.duration_since(self.last_write_progress) > timeouts.write {
            self.dead = true; // peer stopped reading: drop the connection
            return;
        }
        if self.executing {
            return; // the origin's own deadlines bound execution
        }
        if let Some(t0) = self.started {
            if now.duration_since(t0) > timeouts.partial {
                // Slowloris: same courtesy line, counter, and cut as the
                // blocking engine.
                ctx.ev.shared.metrics.slowloris_drops.inc();
                let mut chunk = ctx.ev.pop_buffer();
                let _ =
                    proto::write_line(&mut chunk, "CLIENT_ERROR request read deadline exceeded");
                self.out.push(chunk, ctx.ev);
                self.close_after_flush = true;
                self.flush_and_update(ctx);
            }
        } else if self.out.is_empty()
            && !self.close_after_flush
            && now.duration_since(self.last_activity) > timeouts.idle
        {
            self.dead = true; // idle cut, silent — as in blocking mode
        }
    }
}

/// One reactor thread: accepts, reads, parses, dispatches, flushes.
struct Reactor {
    idx: usize,
    ev: Arc<EventShared>,
    rs: Arc<ReactorShared>,
    listener: TcpListener,
    job_tx: Sender<Job>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
    scratch: Vec<u8>,
}

impl Reactor {
    fn new(
        idx: usize,
        ev: Arc<EventShared>,
        rs: Arc<ReactorShared>,
        listener: TcpListener,
        job_tx: Sender<Job>,
    ) -> io::Result<Reactor> {
        rs.poller
            .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        Ok(Reactor {
            idx,
            ev,
            rs,
            listener,
            job_tx,
            conns: HashMap::new(),
            next_token: LISTENER_TOKEN + 1,
            draining: false,
            scratch: vec![0; READ_CHUNK],
        })
    }

    fn run(mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut next_sweep = Instant::now() + SWEEP_EVERY;
        loop {
            if self.ev.shared.shutting_down() && !self.draining {
                self.enter_drain();
            }
            if self.draining && self.conns.is_empty() {
                return Ok(());
            }
            self.ev.rm.polls.inc();
            self.rs.poller.wait(&mut events, Some(POLL_TIMEOUT))?;
            self.ev.rm.events.add(events.len() as u64);
            let batch = std::mem::take(&mut events);
            for event in &batch {
                match event.token {
                    WAKE_TOKEN => self.ev.rm.wakeups.inc(),
                    LISTENER_TOKEN => self.accept_burst(),
                    token => self.on_conn_event(token, event),
                }
            }
            events = batch;
            self.drain_completions();
            let now = Instant::now();
            if now >= next_sweep {
                next_sweep = now + SWEEP_EVERY;
                self.sweep(now);
            }
        }
    }

    /// Accepts until `WouldBlock`, registering or shedding each socket.
    fn accept_burst(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (EMFILE, aborted handshakes):
                // level-triggering retries on the next poll.
                Err(_) => break,
            };
            if self.draining || self.ev.shared.shutting_down() {
                continue; // drop: mirrors the blocking engine's drain
            }
            let metrics = &self.ev.shared.metrics;
            metrics.accepted.inc();
            if self.ev.max_conns > 0
                && self.ev.conn_count.load(Ordering::Relaxed) >= self.ev.max_conns
            {
                // Best-effort SERVER_BUSY: one nonblocking write. If the
                // kernel buffer cannot even take 13 bytes, the bare close
                // sheds just as clearly.
                metrics.shed.inc();
                let _ = stream.set_nonblocking(true);
                let _ = (&stream).write_all(b"SERVER_BUSY\r\n");
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                metrics.closed.inc();
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            let interest = Interest::READ;
            if self
                .rs
                .poller
                .register(stream.as_raw_fd(), token, interest)
                .is_err()
            {
                metrics.closed.inc();
                continue;
            }
            self.ev.conn_count.fetch_add(1, Ordering::Relaxed);
            self.ev.rm.connections.add(1);
            metrics.active.add(1);
            let now = Instant::now();
            let conn = Conn {
                token,
                stream,
                buf: Vec::new(),
                out: OutBuf::default(),
                executing: false,
                close_after_flush: false,
                saw_eof: false,
                dead: false,
                started: None,
                last_activity: now,
                last_write_progress: now,
                interest,
            };
            self.conns.insert(token, conn);
            // A first request may already be queued on the socket; the
            // level-triggered poller reports it on the next wait.
        }
    }

    fn on_conn_event(&mut self, token: u64, event: &Event) {
        let ctx = Ctx {
            ev: &self.ev,
            poller: &self.rs.poller,
            job_tx: &self.job_tx,
            reactor: self.idx,
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // closed earlier this batch
        };
        if event.error {
            // RST / full hangup: undeliverable either way. Reported even
            // with reads paused, so close now rather than spin on it.
            conn.dead = true;
        } else {
            if event.writable && !conn.out.is_empty() {
                conn.flush_and_update(&ctx);
            }
            if (event.readable || event.hangup) && !conn.dead {
                conn.on_readable(&ctx, &mut self.scratch);
            }
        }
        if self.conns.get(&token).is_some_and(|c| c.dead) {
            self.close(token);
        }
    }

    fn drain_completions(&mut self) {
        let completed: Vec<Completion> = std::mem::take(
            &mut *self
                .rs
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for completion in completed {
            let ctx = Ctx {
                ev: &self.ev,
                poller: &self.rs.poller,
                job_tx: &self.job_tx,
                reactor: self.idx,
            };
            let token = completion.conn;
            match self.conns.get_mut(&token) {
                Some(conn) => {
                    if self.draining {
                        conn.close_after_flush = true;
                    }
                    conn.on_completion(completion, &ctx);
                    if conn.dead {
                        self.close(token);
                    }
                }
                // The connection died while its request executed.
                None => self.ev.recycle(completion.bytes),
            }
        }
    }

    fn sweep(&mut self, now: Instant) {
        let mut dead: Vec<u64> = Vec::new();
        {
            let ctx = Ctx {
                ev: &self.ev,
                poller: &self.rs.poller,
                job_tx: &self.job_tx,
                reactor: self.idx,
            };
            for conn in self.conns.values_mut() {
                conn.sweep(now, &ctx);
                if conn.dead {
                    dead.push(conn.token);
                }
            }
        }
        for token in dead {
            self.close(token);
        }
    }

    /// Stops accepting and pushes every connection toward closure; called
    /// once when the shutdown flag is first observed.
    fn enter_drain(&mut self) {
        self.draining = true;
        let _ = self.rs.poller.deregister(self.listener.as_raw_fd());
        let mut dead: Vec<u64> = Vec::new();
        {
            let ctx = Ctx {
                ev: &self.ev,
                poller: &self.rs.poller,
                job_tx: &self.job_tx,
                reactor: self.idx,
            };
            for conn in self.conns.values_mut() {
                if !conn.executing {
                    // Idle or mid-read: close once pending output drains
                    // (immediately, for the common idle case). Executing
                    // connections finish their request first — the drain
                    // flag is applied when the completion lands.
                    conn.close_after_flush = true;
                    conn.flush_and_update(&ctx);
                }
                if conn.dead {
                    dead.push(conn.token);
                }
            }
        }
        for token in dead {
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.rs.poller.deregister(conn.stream.as_raw_fd());
        conn.out.recycle_all(&self.ev);
        self.ev.conn_count.fetch_sub(1, Ordering::Relaxed);
        self.ev.rm.connections.add(-1);
        self.ev.shared.metrics.active.add(-1);
        self.ev.shared.metrics.closed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MAX_VALUE_LEN;

    fn frame(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn cursor_reports_wouldblock_then_eof() {
        let data = b"GET k";
        let mut cur = SliceCursor {
            buf: data,
            pos: 0,
            eof: false,
        };
        let got = io::BufRead::fill_buf(&mut cur).unwrap();
        assert_eq!(got, b"GET k");
        io::BufRead::consume(&mut cur, 5);
        assert_eq!(
            io::BufRead::fill_buf(&mut cur).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        cur.eof = true;
        assert!(io::BufRead::fill_buf(&mut cur).unwrap().is_empty());
    }

    #[test]
    fn parse_classifies_whole_requests_and_consumption() {
        let buf = frame("GET alpha\r\nGET beta\r\n");
        match try_parse(&buf, false) {
            Parsed::Request(Request::Get { key, .. }, consumed) => {
                assert_eq!(key, "alpha");
                assert_eq!(consumed, "GET alpha\r\n".len());
            }
            _ => panic!("expected a parsed GET"),
        }
    }

    #[test]
    fn parse_classifies_partial_line_as_incomplete() {
        for partial in ["", "G", "GET ", "GET some-ke"] {
            match try_parse(partial.as_bytes(), false) {
                Parsed::Incomplete => {}
                _ => panic!("{partial:?} must be incomplete"),
            }
        }
    }

    #[test]
    fn parse_classifies_partial_set_payload_as_incomplete() {
        // Header complete, payload cut off mid-way: the payload reader
        // remaps WouldBlock to its fatal EOF error, which must classify
        // as incomplete — the regression this module's design hinges on.
        let buf = frame("SET k 10\r\nabc");
        match try_parse(&buf, false) {
            Parsed::Incomplete => {}
            _ => panic!("mid-payload must be incomplete, not fatal"),
        }
        // Payload complete but the CRLF tail cut off: same story.
        let buf = frame("SET k 3\r\nabc");
        match try_parse(&buf, false) {
            Parsed::Incomplete => {}
            _ => panic!("mid-tail must be incomplete, not fatal"),
        }
    }

    #[test]
    fn parse_with_eof_reproduces_blocking_outcomes() {
        // Clean EOF at a frame boundary.
        match try_parse(b"", true) {
            Parsed::Eof => {}
            _ => panic!("empty+eof is a clean close"),
        }
        // EOF mid-line: the blocking engine's fatal error, verbatim.
        match try_parse(b"GET k", true) {
            Parsed::Error(ProtoError::Client { msg, fatal, .. }, _) => {
                assert!(fatal);
                assert_eq!(msg, "unexpected EOF mid-line");
            }
            _ => panic!("mid-line EOF must be fatal"),
        }
        // EOF mid-payload likewise.
        match try_parse(b"SET k 10\r\nabc", true) {
            Parsed::Error(ProtoError::Client { msg, fatal, .. }, _) => {
                assert!(fatal);
                assert_eq!(msg, "unexpected EOF in payload");
            }
            _ => panic!("mid-payload EOF must be fatal"),
        }
    }

    #[test]
    fn parse_surfaces_recoverable_errors_with_resync_point() {
        // Oversize-but-swallowable payload: recoverable, fully consumed.
        let n = MAX_VALUE_LEN + 1;
        let mut buf = frame(&format!("SET k {n}\r\n"));
        let header = buf.len();
        buf.extend(std::iter::repeat_n(b'x', n));
        buf.extend_from_slice(b"\r\nGET k\r\n");
        match try_parse(&buf, false) {
            Parsed::Error(ProtoError::Client { fatal, limit, .. }, consumed) => {
                assert!(!fatal, "oversize payload is recoverable");
                assert_eq!(limit, Some("value"));
                assert_eq!(consumed, header + n + 2, "consumed to the resync point");
            }
            _ => panic!("expected a recoverable limit error"),
        }
    }

    #[test]
    fn read_buf_cap_admits_every_legitimate_frame() {
        // A maximal swallowable SET must parse (as a recoverable limit
        // error) before the cap cuts the connection.
        let line = format!("SET k {MAX_SWALLOW_LEN}\r\n");
        assert!(line.len() + MAX_SWALLOW_LEN + 2 <= READ_BUF_CAP);
        const _: () = assert!(MAX_LINE_LEN + 2 <= READ_BUF_CAP);
    }
}
