//! Fault-tolerance middleware for the read-through origin path.
//!
//! A real origin can refuse, stall, or break mid-transfer, so the server
//! never talks to a raw [`Backing`] directly: it wraps it in a composable
//! stack assembled by [`ResilientBacking::wrap`], outermost first:
//!
//! ```text
//!   RetryBacking              bounded retries, capped exponential backoff
//!     └─ BreakerBacking       circuit breaker: closed → open → half-open
//!          └─ DeadlineBacking per-fetch deadline on a hung origin
//!               └─ inner      the actual origin (possibly a FaultBacking)
//! ```
//!
//! Every layer is itself a [`Backing`], so any subset composes. The stack
//! is *deterministic by construction*: backoff jitter is derived from the
//! key and attempt number (no ambient randomness), and [`FaultBacking`] —
//! the fault injector used by tests and the CI flaky-origin smoke — draws
//! from a seeded PRNG, so a single-threaded request sequence replays
//! identically under the same seed.
//!
//! Failures feed the `csr_serve_origin_*` metric families (see
//! [`OriginMetrics`]); the server layers serve-stale degradation and the
//! `ORIGIN_ERROR` protocol reply on top (see [`crate::server`]).

use crate::backing::{fnv1a, Backing, BackingError};
use csr_obs::trace::emit_event;
use csr_obs::{Counter, Gauge, Registry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Metrics

/// The `csr_serve_origin_*` metric families, shared by every middleware
/// layer (and by the server, which owns the `stale_served` counter).
pub struct OriginMetrics {
    /// Fetch attempts that failed, by error kind.
    err_not_available: Arc<Counter>,
    err_timeout: Arc<Counter>,
    err_io: Arc<Counter>,
    /// Fetch attempts re-issued after a failure.
    pub(crate) retries: Arc<Counter>,
    /// Fetch attempts cut by the per-fetch deadline.
    pub(crate) timeouts: Arc<Counter>,
    /// Breaker state as a gauge: 0 closed, 1 open, 2 half-open.
    pub(crate) breaker_state: Arc<Gauge>,
    /// Breaker transitions, labelled by the state entered.
    breaker_to_open: Arc<Counter>,
    breaker_to_half_open: Arc<Counter>,
    breaker_to_closed: Arc<Counter>,
    /// Degraded responses served from the stale store (bumped by the
    /// server, carried here so the whole family registers together).
    pub(crate) stale_served: Arc<Counter>,
}

impl OriginMetrics {
    /// Registers the origin families in `registry`.
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        let err = |kind: &str| {
            registry.counter(
                "csr_serve_origin_errors_total",
                "Origin fetch attempts that failed, by error kind",
                &[("kind", kind)],
            )
        };
        let transition = |to: &str| {
            registry.counter(
                "csr_serve_origin_breaker_transitions_total",
                "Circuit breaker transitions, by state entered",
                &[("to", to)],
            )
        };
        OriginMetrics {
            err_not_available: err("not_available"),
            err_timeout: err("timeout"),
            err_io: err("io"),
            retries: registry.counter(
                "csr_serve_origin_retries_total",
                "Origin fetch attempts re-issued after a failure",
                &[],
            ),
            timeouts: registry.counter(
                "csr_serve_origin_timeouts_total",
                "Origin fetch attempts cut by the per-fetch deadline",
                &[],
            ),
            breaker_state: registry.gauge(
                "csr_serve_origin_breaker_state",
                "Circuit breaker state: 0 closed, 1 open, 2 half-open",
                &[],
            ),
            breaker_to_open: transition("open"),
            breaker_to_half_open: transition("half_open"),
            breaker_to_closed: transition("closed"),
            stale_served: registry.counter(
                "csr_serve_origin_stale_served_total",
                "GETs answered with a stale cached value because the origin failed",
                &[],
            ),
        }
    }

    fn count_error(&self, e: &BackingError) {
        match e {
            BackingError::NotAvailable(_) => self.err_not_available.inc(),
            BackingError::Timeout => {
                self.err_timeout.inc();
                self.timeouts.inc();
            }
            BackingError::Io(_) => self.err_io.inc(),
            // A fail-fast rejection never touched the origin: it is not
            // an origin error (the retry layer returns it before counting;
            // this arm only covers direct callers).
            BackingError::Rejected(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic seed derivation

/// SplitMix64 finalizer over a `(seed, stream)` pair — the workspace's
/// shared deterministic hash for deriving independent sub-seeds from one
/// base seed (backoff jitter per attempt here, per-connection fault plans
/// in [`crate::chaos`]). Same inputs, same output, no ambient randomness.
#[must_use]
pub fn mix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Backoff

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based, i.e. the delay before retry `n + 1`) waits
/// `base * 2^n`, capped at `cap`, then scaled by a jitter factor in
/// `[0.5, 1.0)` derived from a hash of the seed and the attempt number —
/// retries of different keys decorrelate without any ambient randomness,
/// and the same `(seed, attempt)` always waits the same time.
#[derive(Debug, Clone, Copy)]
pub struct BackoffSchedule {
    /// Delay before the first retry (pre-jitter).
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
}

impl Default for BackoffSchedule {
    /// 500 µs doubling up to 50 ms — tuned for origins whose healthy
    /// fetches are in the 0.1–1 ms range, as the serving demo's are.
    fn default() -> Self {
        BackoffSchedule {
            base: Duration::from_micros(500),
            cap: Duration::from_millis(50),
        }
    }
}

impl BackoffSchedule {
    /// The delay before retry `attempt + 1` of the fetch identified by
    /// `seed` (callers use a key hash). Deterministic in its arguments.
    #[must_use]
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp = attempt.min(32);
        let raw = self
            .base
            .checked_mul(1u32 << exp.min(20))
            .map_or(self.cap, |d| d.min(self.cap));
        // splitmix64 finalizer over (seed, attempt): jitter factor in
        // [0.5, 1.0).
        let z = mix64(seed, u64::from(attempt));
        let frac = 0.5 + ((z >> 11) as f64 / (1u64 << 53) as f64) / 2.0;
        raw.mul_f64(frac)
    }
}

// ---------------------------------------------------------------------------
// Retry

/// Retries a failed fetch against the inner backing, sleeping out the
/// [`BackoffSchedule`] between attempts. Also the accounting layer: every
/// attempt failure is counted into [`OriginMetrics`] here — except
/// [`BackingError::Rejected`] fail-fasts from the breaker below, which
/// never touched the origin and pass straight through (no count, no
/// retry, no backoff sleep).
pub struct RetryBacking {
    inner: Arc<dyn Backing>,
    /// Retries after the first attempt (`0` = single attempt, no retry).
    retries: u32,
    backoff: BackoffSchedule,
    metrics: Option<Arc<OriginMetrics>>,
}

impl RetryBacking {
    /// Wraps `inner` with `retries` retries.
    #[must_use]
    pub fn new(
        inner: Arc<dyn Backing>,
        retries: u32,
        backoff: BackoffSchedule,
        metrics: Option<Arc<OriginMetrics>>,
    ) -> Self {
        RetryBacking {
            inner,
            retries,
            backoff,
            metrics,
        }
    }
}

impl Backing for RetryBacking {
    fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError> {
        let seed = fnv1a(key);
        let mut attempt = 0u32;
        loop {
            match self.inner.try_fetch(key) {
                Ok(v) => return Ok(v),
                // A fail-fast rejection (breaker open) never touched the
                // origin: don't count it as an origin error, and don't
                // sleep out a backoff schedule against a breaker that is
                // known to stay open for its whole cooldown.
                Err(e @ BackingError::Rejected(_)) => return Err(e),
                Err(e) => {
                    if let Some(m) = &self.metrics {
                        m.count_error(&e);
                    }
                    if attempt >= self.retries {
                        return Err(e);
                    }
                    if let Some(m) = &self.metrics {
                        m.retries.inc();
                    }
                    // Annotates the request's trace when one is active;
                    // free (the closure never runs) otherwise.
                    emit_event("retry", || format!("attempt {} failed: {e}", attempt + 1));
                    std::thread::sleep(self.backoff.delay(attempt, seed));
                    attempt += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker

/// The observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls fail fast without touching the origin.
    Open,
    /// One probe call is allowed through; its outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding: 0 closed, 1 open, 2 half-open.
    #[must_use]
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// Internal breaker bookkeeping, all under one mutex (transitions are
/// rare and cheap; the origin call itself never holds it).
#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Consecutive failures while closed.
    consecutive_failures: u32,
    /// When the breaker opened (drives the cooldown).
    opened_at: Option<Instant>,
    /// Whether the half-open probe is currently in flight.
    probing: bool,
}

/// A consecutive-failure circuit breaker: after `threshold` consecutive
/// fetch failures the breaker **opens** and fails fast for `cooldown`;
/// then it goes **half-open**, letting exactly one probe through — a
/// success re-**closes** it, a failure re-opens it for another cooldown.
///
/// The state machine is deterministic in the sequence of call outcomes
/// (time only gates the open → half-open edge), which the property tests
/// rely on.
pub struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    threshold: u32,
    cooldown: Duration,
    metrics: Option<Arc<OriginMetrics>>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive failures
    /// and cools down for `cooldown` before probing.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (use no breaker at all instead).
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration, metrics: Option<Arc<OriginMetrics>>) -> Self {
        assert!(threshold > 0, "breaker threshold must be positive");
        CircuitBreaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probing: false,
            }),
            threshold,
            cooldown,
            metrics,
        }
    }

    /// The current state (open → half-open is decided lazily at call
    /// admission, so an idle elapsed breaker still reads `Open`).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock poisoned").state
    }

    fn set_state(&self, inner: &mut BreakerInner, next: BreakerState) {
        inner.state = next;
        if let Some(m) = &self.metrics {
            m.breaker_state.set(next.as_gauge());
            match next {
                BreakerState::Open => m.breaker_to_open.inc(),
                BreakerState::HalfOpen => m.breaker_to_half_open.inc(),
                BreakerState::Closed => m.breaker_to_closed.inc(),
            }
        }
    }

    /// Admission check before touching the origin. `Ok` admits the call
    /// and hands back an [`Admission`] token that must be returned to
    /// [`record`](Self::record) with the call's outcome; the token says
    /// whether this call holds the half-open probe slot. `Err` is the
    /// fail-fast rejection, which is **not** an origin failure and does
    /// not advance the state machine.
    ///
    /// # Errors
    ///
    /// [`BackingError::Rejected`] while the breaker is open (or while
    /// another half-open probe is already in flight).
    pub fn admit(&self) -> Result<Admission, BackingError> {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        match inner.state {
            BreakerState::Closed => Ok(Admission { probe: false }),
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|t| t.elapsed() >= self.cooldown);
                if cooled {
                    self.set_state(&mut inner, BreakerState::HalfOpen);
                    inner.probing = true;
                    Ok(Admission { probe: true })
                } else {
                    Err(BackingError::Rejected("circuit breaker open".into()))
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    Err(BackingError::Rejected(
                        "circuit breaker half-open, probe in flight".into(),
                    ))
                } else {
                    inner.probing = true;
                    Ok(Admission { probe: true })
                }
            }
        }
    }

    /// Records the outcome of an admitted call, consuming its
    /// [`Admission`] token.
    ///
    /// Only the holder of the probe token decides the half-open
    /// transition: a straggler outcome from a call admitted while the
    /// breaker was still closed cannot clear the in-flight probe flag or
    /// flip the breaker while the real probe is running — it only feeds
    /// the consecutive-failure count, and only while the breaker is still
    /// closed.
    pub fn record(&self, admission: Admission, success: bool) {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        if admission.probe {
            // The probe slot is exclusive and only the probe leaves
            // HalfOpen, so the state here is still HalfOpen.
            inner.probing = false;
            if success {
                inner.consecutive_failures = 0;
                inner.opened_at = None;
                self.set_state(&mut inner, BreakerState::Closed);
            } else {
                inner.opened_at = Some(Instant::now());
                inner.consecutive_failures = self.threshold;
                self.set_state(&mut inner, BreakerState::Open);
            }
        } else if inner.state == BreakerState::Closed {
            if success {
                inner.consecutive_failures = 0;
            } else {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.opened_at = Some(Instant::now());
                    self.set_state(&mut inner, BreakerState::Open);
                }
            }
        }
        // else: a straggler from before the breaker opened — ignored; the
        // half-open probe alone decides recovery.
    }
}

/// Proof that [`CircuitBreaker::admit`] let a call through; hand it back
/// to [`CircuitBreaker::record`] with the call's outcome. `probe` marks
/// the exclusive half-open probe slot.
#[derive(Debug)]
#[must_use = "an admitted call's outcome must be recorded"]
pub struct Admission {
    probe: bool,
}

/// The middleware form of [`CircuitBreaker`]: fail fast while open, feed
/// every admitted call's outcome back into the state machine.
pub struct BreakerBacking {
    inner: Arc<dyn Backing>,
    breaker: Arc<CircuitBreaker>,
}

impl BreakerBacking {
    /// Wraps `inner` behind `breaker`.
    #[must_use]
    pub fn new(inner: Arc<dyn Backing>, breaker: Arc<CircuitBreaker>) -> Self {
        BreakerBacking { inner, breaker }
    }
}

impl Backing for BreakerBacking {
    fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError> {
        let admission = match self.breaker.admit() {
            Ok(a) => a,
            Err(e) => {
                emit_event("breaker_fail_fast", || e.to_string());
                return Err(e);
            }
        };
        let result = self.inner.try_fetch(key);
        self.breaker.record(admission, result.is_ok());
        result
    }
}

// ---------------------------------------------------------------------------
// Deadline

/// Cuts off a fetch that exceeds its deadline. A blocking origin cannot be
/// interrupted portably, so the wait is isolated: the inner fetch runs on
/// a helper thread and the caller abandons it at the deadline — the origin
/// must bound its own hangs (every origin in this workspace does), or the
/// abandoned thread lingers until the hang resolves.
pub struct DeadlineBacking {
    inner: Arc<dyn Backing>,
    deadline: Duration,
}

impl DeadlineBacking {
    /// Wraps `inner` with a per-fetch `deadline`.
    #[must_use]
    pub fn new(inner: Arc<dyn Backing>, deadline: Duration) -> Self {
        DeadlineBacking { inner, deadline }
    }
}

impl Backing for DeadlineBacking {
    fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let inner = Arc::clone(&self.inner);
        let key = key.to_owned();
        std::thread::Builder::new()
            .name("csr-serve-fetch".into())
            .spawn(move || {
                let _ = tx.send(inner.try_fetch(&key));
            })
            .map_err(|e| BackingError::Io(format!("spawning fetch thread: {e}")))?;
        match rx.recv_timeout(self.deadline) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                emit_event("deadline_expired", || {
                    format!("origin fetch abandoned after {:?}", self.deadline)
                });
                Err(BackingError::Timeout)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(BackingError::Io("origin fetch panicked".into()))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection

/// Fault injection for testing the fault-tolerant path: wraps an inner
/// origin and, per request, may inject an error, a latency spike, or a
/// hang (a bounded stall, long enough to trip any sane deadline).
///
/// All decisions come from a seeded PRNG drawn once per request in request
/// order, so a single-threaded request sequence is **deterministic** under
/// a fixed seed. Two switches support scripted scenarios: an *outage
/// window* (requests numbered `[from, until)` all fail — how the e2e test
/// trips the breaker deterministically) and a [`set_failing`] master
/// switch (`set_failing(true)` fails everything until turned off).
///
/// [`set_failing`]: FaultBacking::set_failing
pub struct FaultBacking {
    inner: Arc<dyn Backing>,
    /// Probability a request fails with an injected I/O error.
    error_rate: f64,
    /// Probability a request stalls for [`hang`](Self::hang) first.
    hang_rate: f64,
    /// Stall duration for injected hangs (bounded: abandoned deadline
    /// threads must eventually finish).
    hang: Duration,
    rng: Mutex<mem_trace::rng::SplitMix64>,
    requests: AtomicU64,
    /// Requests numbered `[outage_from, outage_until)` fail outright.
    outage_from: AtomicU64,
    outage_until: AtomicU64,
    failing: AtomicBool,
}

impl FaultBacking {
    /// Wraps `inner`, failing `error_rate` of requests and hanging
    /// `hang_rate` of them for `hang`, drawn from a PRNG seeded `seed`.
    #[must_use]
    pub fn new(inner: Arc<dyn Backing>, seed: u64, error_rate: f64, hang_rate: f64) -> Self {
        FaultBacking {
            inner,
            error_rate,
            hang_rate,
            hang: Duration::from_millis(50),
            rng: Mutex::new(mem_trace::rng::SplitMix64::new(seed)),
            requests: AtomicU64::new(0),
            outage_from: AtomicU64::new(0),
            outage_until: AtomicU64::new(0),
            failing: AtomicBool::new(false),
        }
    }

    /// Overrides the injected hang duration.
    #[must_use]
    pub fn hang_for(mut self, hang: Duration) -> Self {
        self.hang = hang;
        self
    }

    /// Scripts a total outage for requests numbered `[from, until)`
    /// (0-based, counted across all keys).
    pub fn set_outage(&self, from: u64, until: u64) {
        self.outage_from.store(from, Ordering::Relaxed);
        self.outage_until.store(until, Ordering::Relaxed);
    }

    /// Master failure switch: while `true`, every request fails.
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::Relaxed);
    }

    /// Requests seen so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

impl Backing for FaultBacking {
    fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError> {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        if self.failing.load(Ordering::Relaxed) {
            return Err(BackingError::Io("injected failure (switch)".into()));
        }
        let (from, until) = (
            self.outage_from.load(Ordering::Relaxed),
            self.outage_until.load(Ordering::Relaxed),
        );
        if n >= from && n < until {
            return Err(BackingError::NotAvailable("injected outage window".into()));
        }
        let (hang, error) = {
            let mut rng = self.rng.lock().expect("fault rng poisoned");
            (rng.chance(self.hang_rate), rng.chance(self.error_rate))
        };
        if hang {
            std::thread::sleep(self.hang);
        }
        if error {
            return Err(BackingError::Io("injected error".into()));
        }
        self.inner.try_fetch(key)
    }
}

// ---------------------------------------------------------------------------
// The assembled stack

/// Configuration for [`ResilientBacking::wrap`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Per-fetch deadline. `None` skips the deadline layer entirely (no
    /// helper thread per fetch) — appropriate for origins that bound
    /// their own latency.
    pub deadline: Option<Duration>,
    /// Retries after the first failed attempt (`0` disables retry).
    pub retries: u32,
    /// Backoff between retries.
    pub backoff: BackoffSchedule,
    /// Consecutive failures that open the circuit breaker (`0` disables
    /// the breaker).
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before half-open probing.
    pub breaker_cooldown: Duration,
}

impl Default for ResilienceConfig {
    /// Two retries with sub-millisecond backoff, a 5-failure breaker with
    /// a 1 s cooldown, no deadline. Infallible origins never trip any of
    /// it, so the default stack adds only a branch per fetch.
    fn default() -> Self {
        ResilienceConfig {
            deadline: None,
            retries: 2,
            backoff: BackoffSchedule::default(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(1),
        }
    }
}

/// Assembles the middleware stack around an origin. Not a type of its own
/// — `wrap` returns the outermost layer as a `Backing`, plus the breaker
/// handle (if one was configured) so callers can observe its state.
pub struct ResilientBacking;

impl ResilientBacking {
    /// Wraps `origin` per `config`: deadline innermost, then breaker,
    /// then retry. Layers whose config disables them are skipped, so the
    /// degenerate config returns `origin` untouched.
    #[must_use]
    pub fn wrap(
        origin: Arc<dyn Backing>,
        config: &ResilienceConfig,
        metrics: Option<Arc<OriginMetrics>>,
    ) -> (Arc<dyn Backing>, Option<Arc<CircuitBreaker>>) {
        let mut stack = origin;
        if let Some(deadline) = config.deadline {
            stack = Arc::new(DeadlineBacking::new(stack, deadline));
        }
        let breaker = (config.breaker_threshold > 0).then(|| {
            Arc::new(CircuitBreaker::new(
                config.breaker_threshold,
                config.breaker_cooldown,
                metrics.clone(),
            ))
        });
        if let Some(b) = &breaker {
            stack = Arc::new(BreakerBacking::new(stack, Arc::clone(b)));
        }
        if config.retries > 0 || metrics.is_some() {
            // Even with zero retries the retry layer stays: it is where
            // attempt errors are counted into the metrics.
            stack = Arc::new(RetryBacking::new(
                stack,
                config.retries,
                config.backoff,
                metrics,
            ));
        }
        (stack, breaker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemoryBacking;

    /// An origin that fails its first `fail_first` fetches, then serves.
    struct FlakyStart {
        fail_first: u64,
        calls: AtomicU64,
    }

    impl FlakyStart {
        fn new(fail_first: u64) -> Self {
            FlakyStart {
                fail_first,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl Backing for FlakyStart {
        fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.fail_first {
                Err(BackingError::Io("warming up".into()))
            } else {
                Ok(Some(key.as_bytes().to_vec()))
            }
        }
    }

    #[test]
    fn backoff_delays_are_bounded_and_deterministic() {
        let schedule = BackoffSchedule {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(10),
        };
        let mut prev_raw = Duration::ZERO;
        for attempt in 0..12 {
            let raw = schedule
                .base
                .checked_mul(1 << attempt.min(20))
                .map_or(schedule.cap, |d| d.min(schedule.cap));
            let d = schedule.delay(attempt, 0xdead_beef);
            assert!(
                d <= raw,
                "attempt {attempt}: {d:?} over the raw bound {raw:?}"
            );
            assert!(
                d >= raw.mul_f64(0.5),
                "attempt {attempt}: {d:?} under half the raw bound {raw:?}"
            );
            assert!(d <= schedule.cap, "attempt {attempt}: over the cap");
            assert!(raw >= prev_raw, "raw schedule must be non-decreasing");
            prev_raw = raw;
            // Determinism: same (attempt, seed) — same delay.
            assert_eq!(d, schedule.delay(attempt, 0xdead_beef));
        }
        // Different seeds jitter differently (overwhelmingly likely).
        assert_ne!(schedule.delay(3, 1), schedule.delay(3, 2));
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let origin = Arc::new(FlakyStart::new(2));
        let retry = RetryBacking::new(
            origin,
            2,
            BackoffSchedule {
                base: Duration::from_micros(10),
                cap: Duration::from_micros(100),
            },
            None,
        );
        assert_eq!(retry.try_fetch("k").unwrap().unwrap(), b"k".to_vec());
    }

    #[test]
    fn retry_gives_up_after_its_budget() {
        let origin = Arc::new(FlakyStart::new(10));
        let retry = RetryBacking::new(
            origin,
            2,
            BackoffSchedule {
                base: Duration::from_micros(10),
                cap: Duration::from_micros(100),
            },
            None,
        );
        assert_eq!(
            retry.try_fetch("k"),
            Err(BackingError::Io("warming up".into()))
        );
    }

    /// A breaker fail-fast must pass straight through the retry layer:
    /// no origin-error count, no retry, no backoff sleep against a
    /// breaker that stays open for its whole cooldown.
    #[test]
    fn retry_passes_breaker_rejections_through_untouched() {
        struct AlwaysRejected;
        impl Backing for AlwaysRejected {
            fn try_fetch(&self, _key: &str) -> Result<Option<Vec<u8>>, BackingError> {
                Err(BackingError::Rejected("circuit breaker open".into()))
            }
        }
        let registry = Registry::new();
        let metrics = Arc::new(OriginMetrics::new(&registry));
        let retry = RetryBacking::new(
            Arc::new(AlwaysRejected),
            5,
            BackoffSchedule {
                base: Duration::from_millis(50),
                cap: Duration::from_millis(200),
            },
            Some(Arc::clone(&metrics)),
        );
        let t0 = Instant::now();
        assert!(matches!(
            retry.try_fetch("k"),
            Err(BackingError::Rejected(_))
        ));
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "a rejection must not sleep out the backoff schedule"
        );
        assert_eq!(metrics.retries.get(), 0, "a rejection must not be retried");
        assert_eq!(
            metrics.err_not_available.get() + metrics.err_timeout.get() + metrics.err_io.get(),
            0,
            "a rejection never touched the origin and must not be counted"
        );
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let cooldown = Duration::from_millis(10);
        let b = CircuitBreaker::new(3, cooldown, None);
        assert_eq!(b.state(), BreakerState::Closed);

        // Two failures: still closed. A success resets the streak.
        for _ in 0..2 {
            let a = b.admit().unwrap();
            b.record(a, false);
        }
        let a = b.admit().unwrap();
        b.record(a, true);
        assert_eq!(b.state(), BreakerState::Closed);

        // Three consecutive failures: open, and calls fail fast.
        for _ in 0..3 {
            let a = b.admit().unwrap();
            b.record(a, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(matches!(b.admit(), Err(BackingError::Rejected(_))));

        // Cooldown elapses: exactly one half-open probe is admitted.
        std::thread::sleep(cooldown + Duration::from_millis(5));
        let probe = b.admit().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            matches!(b.admit(), Err(BackingError::Rejected(_))),
            "second probe must be rejected while the first is in flight"
        );
        // The probe succeeds: closed again.
        b.record(probe, true);
        assert_eq!(b.state(), BreakerState::Closed);
        let _ = b.admit().unwrap();
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let cooldown = Duration::from_millis(5);
        let b = CircuitBreaker::new(1, cooldown, None);
        let a = b.admit().unwrap();
        b.record(a, false);
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(cooldown + Duration::from_millis(3));
        let probe = b.admit().unwrap();
        b.record(probe, false);
        assert_eq!(b.state(), BreakerState::Open, "failed probe must re-open");
        assert!(matches!(b.admit(), Err(BackingError::Rejected(_))));
    }

    /// The exactly-one-probe invariant under stragglers: an outcome from a
    /// call admitted while the breaker was still closed, arriving while
    /// the half-open probe is in flight, must neither free the probe slot
    /// (admitting a second concurrent probe) nor flip the breaker — the
    /// probe alone decides.
    #[test]
    fn straggler_outcomes_cannot_steal_the_half_open_probe() {
        let cooldown = Duration::from_millis(5);
        let b = CircuitBreaker::new(2, cooldown, None);

        // A slow call is admitted while closed; its outcome will arrive
        // late, after the breaker has opened and gone half-open.
        let straggler = b.admit().unwrap();

        // Two fast failures open the breaker; the cooldown elapses and a
        // probe claims the half-open slot.
        for _ in 0..2 {
            let a = b.admit().unwrap();
            b.record(a, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(cooldown + Duration::from_millis(3));
        let probe = b.admit().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // The straggler lands mid-probe. Whatever its outcome, the probe
        // slot stays taken and the state stays half-open.
        b.record(straggler, true);
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen,
            "a straggler success must not re-close the breaker mid-probe"
        );
        assert!(
            matches!(b.admit(), Err(BackingError::Rejected(_))),
            "the probe slot must still be held after a straggler outcome"
        );

        // The real probe still decides: success re-closes.
        b.record(probe, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn deadline_cuts_a_hung_origin() {
        // ... every request hangs, far past the deadline.
        let hung = FaultBacking::new(Arc::new(MemoryBacking::new()), 1, 0.0, 1.0)
            .hang_for(Duration::from_millis(80));
        let deadline = DeadlineBacking::new(Arc::new(hung), Duration::from_millis(5));
        let t0 = Instant::now();
        assert_eq!(deadline.try_fetch("k"), Err(BackingError::Timeout));
        assert!(
            t0.elapsed() < Duration::from_millis(60),
            "the caller must not wait out the hang"
        );
    }

    #[test]
    fn deadline_passes_prompt_fetches_through() {
        let origin = Arc::new(MemoryBacking::new());
        origin.put("k", b"v".to_vec());
        let deadline = DeadlineBacking::new(origin, Duration::from_secs(1));
        assert_eq!(deadline.try_fetch("k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(deadline.try_fetch("absent").unwrap(), None);
    }

    /// The satellite's determinism property: a seeded fault injector (and
    /// the retry stack above it) replays a single-threaded request
    /// sequence identically — same seed, same request sequence, same
    /// outcomes, which is what keeps BENCH numbers reproducible.
    #[test]
    fn seeded_fault_stack_replays_identically() {
        fn run(seed: u64) -> Vec<Result<bool, BackingError>> {
            let origin = Arc::new(MemoryBacking::new());
            for i in 0..32 {
                origin.put(format!("key:{i}"), vec![b'v'; 4]);
            }
            let fault =
                Arc::new(FaultBacking::new(origin, seed, 0.3, 0.0).hang_for(Duration::ZERO));
            let (stack, _) = ResilientBacking::wrap(
                fault,
                &ResilienceConfig {
                    retries: 1,
                    backoff: BackoffSchedule {
                        base: Duration::from_micros(1),
                        cap: Duration::from_micros(10),
                    },
                    breaker_threshold: 2,
                    breaker_cooldown: Duration::from_secs(3600), // never re-closes
                    deadline: None,
                },
                None,
            );
            (0..200)
                .map(|i| {
                    stack
                        .try_fetch(&format!("key:{}", i % 32))
                        .map(|v| v.is_some())
                })
                .collect()
        }
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the same outcome sequence");
        assert_ne!(
            a,
            run(8),
            "a different seed must (overwhelmingly likely) diverge"
        );
        assert!(
            a.iter().any(|r| r.is_err()) && a.iter().any(|r| r.is_ok()),
            "the stack must see both failures and successes"
        );
    }
}
