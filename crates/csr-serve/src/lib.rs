//! # csr-serve — a network cache server with *measured* miss costs
//!
//! This crate turns the cost-sensitive cache ([`csr-cache`](csr_cache))
//! into a standalone TCP service, closing the loop the paper leaves open:
//! instead of assuming each block's miss penalty, the server **measures**
//! it. Every cache miss reads through to a [`Backing`] origin, the fetch
//! is timed, and that latency (µs) is charged to the entry as its miss
//! cost. The replacement policy (DCL by default) then reserves the
//! entries whose misses were *observed* to be expensive — the serving-
//! system analogue of the paper's cycle-measured miss penalties.
//!
//! Pieces:
//!
//! * [`server`] — the TCP server: pipelined text protocol, load-shedding
//!   with `SERVER_BUSY`, graceful drain on shutdown, Prometheus metrics
//!   via csr-obs. Two interchangeable I/O engines: the original
//!   thread-pool (`--io blocking`) and an event-driven reactor core
//!   (`--io event`) for five-digit connection counts.
//! * [`poller`] — the readiness primitive under the event engine:
//!   epoll/kqueue behind one small API, the only FFI in the library.
//! * [`proto`] — the wire protocol (normative grammar in `PROTOCOL.md`).
//! * [`backing`] — the read-through origin trait (fallible: origins can
//!   refuse, stall, or break) plus a simulated tiered origin
//!   ([`SimBacking`]) whose bimodal latency drives the demo.
//! * [`resilience`] — middleware around a fallible origin: per-fetch
//!   deadlines, bounded retry with capped backoff, a circuit breaker,
//!   and the [`FaultBacking`] injector the fault-tolerance tests use.
//! * [`client`] — a blocking client with connect/read/write deadlines,
//!   plus a self-healing [`FailoverClient`] that reconnects with capped
//!   backoff, transparently replays idempotent ops, and fails over
//!   across replica endpoints with passive health marking.
//! * [`ring`] — the consistent-hash ring (virtual nodes, rendezvous
//!   tie-breaking) every cluster participant derives ownership from.
//! * [`cluster`] — cluster mode: server-side one-hop peer forwarding
//!   with *measured* hop cost charged to forwarded entries, a
//!   [`ClusterClient`] with hot-key replica fan-out and partition-aware
//!   re-routing, and the `MOVED`/`FORWARDED` reply grammar.
//! * [`persist`] — crash-safe persistence: a segmented, CRC-32-framed
//!   write-ahead log of every mutation *with its measured miss cost*,
//!   periodic atomic snapshots, and cold-start recovery that truncates
//!   torn tails — so the resident set and the eviction ordering survive
//!   a SIGKILL instead of cold-starting into an origin stampede.
//! * [`chaos`] — a seeded in-process fault-injecting TCP proxy
//!   ([`ChaosProxy`]): resets, corruption, truncation, stalls, partial
//!   writes, throttling, and scripted partitions, each counted, so the
//!   robustness claims above are mechanically checkable under hostile
//!   networks.
//!
//! Binaries: `csr-serve` (the daemon) and `loadgen` (closed-loop Zipf
//! load generator that reports throughput/latency percentiles and writes
//! `BENCH_serve.json`).

#![deny(unsafe_code)] // only `poller` opts out, for its confined FFI
#![warn(missing_docs)]

pub mod backing;
pub mod chaos;
pub mod client;
pub mod cluster;
pub mod persist;
pub mod poller;
pub mod proto;
#[cfg(unix)]
mod reactor;
pub mod resilience;
pub mod ring;
pub mod server;

pub use backing::{Backing, BackingError, InfallibleBacking, MemoryBacking, NoBacking, SimBacking};
pub use chaos::{ChaosConfig, ChaosProxy, ChaosSnapshot};
pub use client::{
    Client, ClientMetrics, ConnectionError, FailoverClient, FailoverConfig, Moved, OriginError,
    StoreRejected, Timeouts, Value,
};
pub use cluster::{
    parse_nodes, ClusterClient, ClusterClientConfig, ClusterMetrics, ClusterNode, FreqSketch,
    PeerConfig, PeerRouter,
};
pub use persist::{FsyncPolicy, PersistConfig};
pub use resilience::{
    BackoffSchedule, BreakerState, CircuitBreaker, FaultBacking, OriginMetrics, ResilienceConfig,
    ResilientBacking,
};
pub use ring::Ring;
pub use server::{serve, Bytes, IoMode, ReportSink, ServerConfig, ServerHandle};
