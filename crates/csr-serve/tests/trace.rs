//! Distributed-tracing end-to-end tests: real nodes on loopback
//! sockets, traced through the wire `TRACE` token. The acceptance
//! scenarios: a forwarded cluster GET leaves one trace whose fragments
//! — one per node — link parent to child across the hop; resilience
//! outcomes (retry, breaker fail-fast, stale serve) show up as span
//! annotations; and an untraced request records nothing.

use csr_obs::{Json, TraceConfig, TraceContext};
use csr_serve::cluster::PeerConfig;
use csr_serve::resilience::{BackoffSchedule, ResilienceConfig};
use csr_serve::server::{serve, ServerConfig};
use csr_serve::{Client, ClusterNode, FaultBacking, IoMode, MemoryBacking, Ring};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

fn node_config_io(addr: &str, nodes: Vec<ClusterNode>, io: IoMode) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        io,
        capacity: 1024,
        shards: Some(4),
        workers: 4,
        backlog: 8,
        idle_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        cluster: Some(PeerConfig {
            node_id: addr.to_owned(),
            nodes,
            ..PeerConfig::default()
        }),
        ..ServerConfig::default()
    }
}

fn ctx(trace_id: u64, span_id: u64) -> TraceContext {
    TraceContext {
        trace_id,
        span_id,
        sampled: true,
    }
}

/// Fetches and parses a node's TRACES dump, polling briefly: the server
/// finishes a request's trace *after* writing its reply, so the entry
/// can trail the response by a scheduling beat.
fn poll_traces(addr: &str, want: usize) -> Vec<Json> {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let text = Client::connect(addr)
            .and_then(|mut c| c.traces())
            .expect("TRACES fetch");
        let entries: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("TRACES line parses"))
            .collect();
        if entries.len() >= want || Instant::now() > deadline {
            return entries;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn spans(entry: &Json) -> &[Json] {
    entry.get("spans").and_then(Json::as_arr).unwrap_or(&[])
}

fn span_named<'a>(entry: &'a Json, name: &str) -> Option<&'a Json> {
    spans(entry)
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
}

fn event_names(entry: &Json) -> Vec<String> {
    spans(entry)
        .iter()
        .flat_map(|s| s.get("events").and_then(Json::as_arr).unwrap_or(&[]))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .map(str::to_owned)
        .collect()
}

fn field<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("")
}

/// The headline scenario: a traced GET that forwards leaves exactly one
/// trace, reassembled from two fragments — the caller's (root under the
/// client's span, plus the `forward` hop span) and the owner's (its root
/// parented under that hop span). One trace id, one hop, correct links.
#[test]
fn forwarded_get_is_one_trace_with_linked_spans_across_nodes() {
    forwarded_get_is_one_trace_in(IoMode::Blocking);
}

#[test]
fn forwarded_get_is_one_trace_with_linked_spans_across_nodes_event() {
    forwarded_get_is_one_trace_in(IoMode::Event);
}

fn forwarded_get_is_one_trace_in(io: IoMode) {
    let addrs = reserve_addrs(2);
    let nodes: Vec<ClusterNode> = addrs
        .iter()
        .map(|a| ClusterNode::addr_only(a.clone()))
        .collect();
    let ring = Ring::new(addrs.clone(), 64, 0);
    let origin = Arc::new(MemoryBacking::new());
    let key = (0..)
        .map(|k| format!("key-{k}"))
        .find(|k| ring.owner_index(k) == 1)
        .expect("some key owned by node 1");
    origin.put(key.clone(), b"remote".to_vec());
    let handles: Vec<_> = addrs
        .iter()
        .map(|a| serve(node_config_io(a, nodes.clone(), io), origin.clone()).expect("node starts"))
        .collect();

    let client_ctx = ctx(0xc0ffee, 0xdec0de);
    let mut c = Client::connect(addrs[0].as_str()).expect("connect");
    let v = c
        .get_value_traced(&key, Some(client_ctx))
        .expect("get")
        .expect("present");
    assert!(v.forwarded, "the key lives on node 1: the read must hop");

    let local = poll_traces(&addrs[0], 1);
    let remote = poll_traces(&addrs[1], 1);
    assert_eq!(local.len(), 1, "one traced request, one local entry");
    assert_eq!(remote.len(), 1, "one hop, one remote entry");

    // Both fragments belong to the client's trace.
    let want_id = format!("{:016x}", client_ctx.trace_id);
    assert_eq!(field(&local[0], "trace_id"), want_id);
    assert_eq!(field(&remote[0], "trace_id"), want_id);

    // The caller's root hangs under the client's span; the hop span
    // exists exactly once cluster-wide and parents the remote root.
    let local_root = span_named(&local[0], "request").expect("local root span");
    assert_eq!(
        field(local_root, "parent_id"),
        format!("{:016x}", client_ctx.span_id)
    );
    let hop = span_named(&local[0], "forward").expect("forward hop span");
    let remote_root = span_named(&remote[0], "request").expect("remote root span");
    assert_eq!(
        field(remote_root, "parent_id"),
        field(hop, "span_id"),
        "the remote root must link under the caller's forward span"
    );
    assert!(
        span_named(&remote[0], "forward").is_none(),
        "the owner answers locally: exactly one hop in the trace"
    );
    // The owner did the actual work: cache miss, origin fetch.
    assert!(span_named(&remote[0], "cache").is_some());
    assert!(span_named(&remote[0], "origin").is_some());

    // The per-phase histograms derive from the same spans.
    for (handle, phase) in [(&handles[0], "forward"), (&handles[1], "origin")] {
        let text = csr_obs::export::prometheus(&handle.registry().snapshot());
        let needle = format!("csr_serve_phase_us_count{{phase=\"{phase}\"}} 1");
        assert!(text.contains(&needle), "missing {needle} in:\n{text}");
    }
    for h in handles {
        h.shutdown().expect("clean shutdown");
    }
}

/// With tracing entirely off (no sampling, no slow threshold, no
/// incoming context) the tracer records nothing and TRACES stays empty.
#[test]
fn untraced_requests_record_nothing() {
    let origin = Arc::new(MemoryBacking::new());
    origin.put("k", b"v".to_vec());
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    };
    let handle = serve(config, origin).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");
    for _ in 0..20 {
        assert!(c.get_value("k").expect("get").is_some());
    }
    let stats = c.stats().expect("stats");
    let stat = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    };
    assert_eq!(stat("traces_recorded"), "0");
    assert_eq!(stat("traces_dropped"), "0");
    assert_eq!(c.traces().expect("TRACES"), "");
    handle.shutdown().expect("clean shutdown");
}

/// 1-in-N sampling without any client cooperation: the server itself
/// promotes every Nth request to a kept trace.
#[test]
fn local_sampling_retains_every_nth_request() {
    let origin = Arc::new(MemoryBacking::new());
    for i in 0..8 {
        origin.put(format!("k{i}"), b"v".to_vec());
    }
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        trace: TraceConfig {
            sample_every: 4,
            ..TraceConfig::default()
        },
        ..ServerConfig::default()
    };
    let handle = serve(config, origin).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");
    for i in 0..8 {
        assert!(c.get_value(&format!("k{i}")).expect("get").is_some());
    }
    let entries = poll_traces(&handle.addr().to_string(), 2);
    assert_eq!(entries.len(), 2, "8 requests at 1-in-4 keep exactly 2");
    for e in &entries {
        assert!(span_named(e, "request").is_some());
        assert!(span_named(e, "parse").is_some());
        assert!(span_named(e, "cache").is_some());
    }
    handle.shutdown().expect("clean shutdown");
}

/// The resilience stack annotates the trace instead of vanishing into
/// it: retries, the stale serve, the origin error, and — once the
/// breaker opens — the fail-fast all appear as span events.
#[test]
fn resilience_outcomes_annotate_the_trace() {
    let origin = Arc::new(MemoryBacking::new());
    origin.put("doc", b"contents".to_vec());
    let fault = Arc::new(FaultBacking::new(origin, 1, 0.0, 0.0));
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        capacity: 512,
        resilience: ResilienceConfig {
            deadline: None,
            retries: 2,
            backoff: BackoffSchedule {
                base: Duration::from_micros(100),
                cap: Duration::from_millis(2),
            },
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(60),
        },
        stale_capacity: Some(64),
        ..ServerConfig::default()
    };
    let handle =
        serve(config, Arc::clone(&fault) as Arc<dyn csr_serve::Backing>).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Healthy traced fetch, then evict and break the origin.
    assert!(c
        .get_value_traced("doc", Some(ctx(1, 1)))
        .expect("healthy get")
        .is_some());
    assert!(c.del("doc").expect("del"));
    fault.set_failing(true);

    // Degraded traced read: 3 failed attempts (2 retry events), then the
    // stale copy. The 3 failures also trip the breaker.
    let v = c
        .get_value_traced("doc", Some(ctx(2, 1)))
        .expect("degraded get")
        .expect("stale copy exists");
    assert!(v.stale);

    // Fail-fast traced read: the open breaker rejects before the origin.
    let err = c
        .get_value_traced("never-seen", Some(ctx(3, 1)))
        .expect_err("breaker is open and there is no stale copy");
    assert!(err.get_ref().is_some(), "typed origin error expected");

    let entries = poll_traces(&handle.addr().to_string(), 3);
    let by_id = |id: u64| {
        entries
            .iter()
            .find(|e| field(e, "trace_id") == format!("{id:016x}"))
            .unwrap_or_else(|| panic!("trace {id} missing"))
    };
    let degraded = by_id(2);
    let names = event_names(degraded);
    assert!(
        names.iter().filter(|n| *n == "retry").count() >= 2,
        "expected the failed attempts as retry events, got {names:?}"
    );
    assert!(
        names.contains(&"origin_error".to_owned()),
        "expected an origin_error event, got {names:?}"
    );
    assert!(
        span_named(degraded, "stale").is_some(),
        "the stale serve must be a span of its own"
    );
    let fast_failed = by_id(3);
    let names = event_names(fast_failed);
    assert!(
        names.contains(&"breaker_fail_fast".to_owned()),
        "expected a breaker_fail_fast event, got {names:?}"
    );
    handle.shutdown().expect("clean shutdown");
}
