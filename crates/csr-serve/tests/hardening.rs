//! Server-edge and client-socket hardening, end to end: deadlines on
//! every client socket (a stalled server can no longer wedge a caller),
//! the slowloris cutoff (a peer that sends half a line and stops loses
//! its worker fast, not at the idle timeout), and the normative size
//! limits (oversized lines and payloads get a recoverable error and the
//! connection resyncs instead of desynchronizing).

use csr_serve::client::{Client, Timeouts};
use csr_serve::server::{serve, ServerConfig, ServerHandle};
use csr_serve::{proto, IoMode, MemoryBacking};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn metric(handle: &ServerHandle, needle: &str) -> u64 {
    let text = csr_obs::export::prometheus(&handle.registry().snapshot());
    text.lines()
        .find(|l| l.starts_with(needle) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {needle} not found in:\n{text}"))
}

fn origin_with_keys() -> Arc<MemoryBacking> {
    let origin = Arc::new(MemoryBacking::new());
    origin.put("k".to_owned(), b"v".to_vec());
    origin
}

/// Regression for the blocking-socket bug: a listener that accepts and
/// then never replies must cost a deadlined client a bounded wait, not
/// forever. (Before `Timeouts`, this test would hang.)
#[test]
fn client_deadlines_cut_a_stalled_server() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    // Accept and hold connections open without ever replying.
    let held = std::thread::spawn(move || {
        let mut socks = Vec::new();
        for conn in listener.incoming().take(1) {
            socks.push(conn);
            // Keep them alive long past the client's deadline.
            std::thread::sleep(Duration::from_secs(5));
        }
    });

    let timeouts = Timeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_millis(300),
        write: Duration::from_millis(300),
    };
    let mut c = Client::connect_with(addr, &timeouts).expect("tcp connect succeeds");
    let t0 = Instant::now();
    let err = c.get("k").expect_err("read must hit its deadline");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ),
        "expected a timeout, got {err:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "deadline took {:?}, far past the configured 300ms",
        t0.elapsed()
    );
    drop(c);
    drop(held); // don't wait out the holder thread
}

/// The slowloris satellite: with one worker and a tight partial-read
/// deadline, a connection that sends half a request and stalls is cut
/// well before the idle timeout — and the reclaimed worker then serves a
/// well-behaved client.
#[test]
fn slowloris_connection_is_cut_and_the_worker_reclaimed() {
    slowloris_is_cut_in(IoMode::Blocking);
}

#[test]
fn slowloris_connection_is_cut_and_the_worker_reclaimed_event() {
    slowloris_is_cut_in(IoMode::Event);
}

fn slowloris_is_cut_in(io: IoMode) {
    let config = ServerConfig {
        io,
        workers: 1,
        backlog: 4,
        idle_timeout: Duration::from_secs(10),
        partial_read_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = serve(config, origin_with_keys()).expect("server starts");

    let mut sly = TcpStream::connect(handle.addr()).expect("connect");
    sly.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    sly.write_all(b"GET ha").expect("half a request"); // no newline, ever
    let t0 = Instant::now();
    let mut tail = Vec::new();
    sly.read_to_end(&mut tail).expect("server closes the conn");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "cut took {:?}: the partial deadline (300ms) did not fire",
        t0.elapsed()
    );
    // Best-effort courtesy reply before the close.
    let text = String::from_utf8_lossy(&tail);
    assert!(
        text.contains("request read deadline exceeded") || text.is_empty(),
        "unexpected tail: {text:?}"
    );
    assert!(metric(&handle, "csr_serve_conn_slowloris_drops_total") >= 1);

    // The single worker is free again: a normal client round-trips.
    let mut c = Client::connect(handle.addr()).expect("connect after slowloris");
    assert_eq!(c.get("k").expect("get"), Some(b"v".to_vec()));
    c.quit().unwrap();
    handle.shutdown().expect("clean shutdown");
}

/// An idle (but not mid-request) connection still gets the longer idle
/// timeout: the partial deadline must not fire between requests.
#[test]
fn idle_connections_outlive_the_partial_deadline() {
    idle_outlives_partial_deadline_in(IoMode::Blocking);
}

#[test]
fn idle_connections_outlive_the_partial_deadline_event() {
    idle_outlives_partial_deadline_in(IoMode::Event);
}

fn idle_outlives_partial_deadline_in(io: IoMode) {
    let config = ServerConfig {
        io,
        workers: 2,
        idle_timeout: Duration::from_secs(10),
        partial_read_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = serve(config, origin_with_keys()).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");
    assert_eq!(c.get("k").expect("get"), Some(b"v".to_vec()));
    // Idle well past the partial deadline, then use the same connection.
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(
        c.get("k").expect("idle connection must still work"),
        Some(b"v".to_vec())
    );
    c.quit().unwrap();
    handle.shutdown().expect("clean shutdown");
}

/// An overlong command line is rejected recoverably: CLIENT_ERROR, the
/// limit counter ticks, and the *same connection* then answers a valid
/// request (frame resync).
#[test]
fn overlong_line_rejects_recoverably_and_resyncs() {
    overlong_line_resyncs_in(IoMode::Blocking);
}

#[test]
fn overlong_line_rejects_recoverably_and_resyncs_event() {
    overlong_line_resyncs_in(IoMode::Event);
}

fn overlong_line_resyncs_in(io: IoMode) {
    let config = ServerConfig {
        io,
        ..ServerConfig::default()
    };
    let handle = serve(config, origin_with_keys()).expect("server starts");
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let huge = format!("GET {}\r\n", "x".repeat(4096));
    raw.write_all(huge.as_bytes()).unwrap();
    raw.write_all(b"GET k\r\n").unwrap();

    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("CLIENT_ERROR"),
        "expected a recoverable reject, got {line:?}"
    );
    let mut value_line = String::new();
    reader.read_line(&mut value_line).unwrap();
    let crc = format!("{:08x}", proto::crc32(b"v"));
    assert_eq!(value_line, format!("VALUE k 1 {crc}\r\n"), "resync failed");
    assert!(
        metric(
            &handle,
            "csr_serve_conn_limit_rejects_total{limit=\"line\"}"
        ) >= 1
    );
    handle.shutdown().expect("clean shutdown");
}

/// An oversize SET payload (beyond the value limit but within the
/// swallow cap) is consumed and rejected recoverably; the connection
/// keeps working.
#[test]
fn oversize_set_payload_rejects_recoverably_and_resyncs() {
    oversize_payload_resyncs_in(IoMode::Blocking);
}

#[test]
fn oversize_set_payload_rejects_recoverably_and_resyncs_event() {
    oversize_payload_resyncs_in(IoMode::Event);
}

fn oversize_payload_resyncs_in(io: IoMode) {
    let config = ServerConfig {
        io,
        ..ServerConfig::default()
    };
    let handle = serve(config, origin_with_keys()).expect("server starts");
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let too_big = proto::MAX_VALUE_LEN + 1;
    raw.write_all(format!("SET big {too_big}\r\n").as_bytes())
        .unwrap();
    raw.write_all(&vec![b'x'; too_big]).unwrap();
    raw.write_all(b"\r\nGET k\r\n").unwrap();

    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("CLIENT_ERROR"),
        "expected a recoverable reject, got {line:?}"
    );
    let mut value_line = String::new();
    reader.read_line(&mut value_line).unwrap();
    let crc = format!("{:08x}", proto::crc32(b"v"));
    assert_eq!(value_line, format!("VALUE k 1 {crc}\r\n"), "resync failed");
    assert!(
        metric(
            &handle,
            "csr_serve_conn_limit_rejects_total{limit=\"value\"}"
        ) >= 1
    );
    handle.shutdown().expect("clean shutdown");
}
