//! Engine-parity and connection-lifecycle regression tests: the event
//! engine (`IoMode::Event`) must speak byte-for-byte the same protocol
//! as the blocking engine, and the lifecycle bugs fixed alongside it
//! (droppable shutdown wake, pool-killing handler panics) must stay
//! fixed in both.

use csr_serve::server::{serve, ServerConfig};
use csr_serve::{Backing, BackingError, Client, InfallibleBacking, IoMode, MemoryBacking};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn config(io: IoMode) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        capacity: 1024,
        shards: Some(4),
        io,
        workers: 4,
        reactors: 2,
        backlog: 4,
        idle_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

const BOTH: [IoMode; 2] = [IoMode::Blocking, IoMode::Event];

fn seeded_origin() -> Arc<MemoryBacking> {
    let origin = Arc::new(MemoryBacking::new());
    origin.put("alpha", b"one".to_vec());
    origin.put("beta", b"two-longer-value".to_vec());
    origin
}

/// One scripted raw-socket conversation, returned as the exact reply
/// bytes. Covers hits, misses, stores, deletes, pipelining, a
/// recoverable garbage line, a recoverable oversize key, and QUIT.
fn scripted_conversation(addr: std::net::SocketAddr) -> Vec<u8> {
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_nodelay(true).unwrap();
    let long_key = "k".repeat(400); // overlong command line, recoverable
    let script = format!(
        "GET alpha\r\nGET alpha\r\nGET missing\r\nSET c 4\r\nteal\r\n\
         GET c\r\nDEL c\r\nDEL c\r\nBOGUS VERB\r\nGET {long_key}\r\n\
         GET beta\r\nSET p 3\r\nxyz\r\nGET p\r\nQUIT\r\n"
    );
    // Two writes with a pause: exercises partial-frame accumulation.
    let (head, tail) = script.split_at(script.len() / 2 + 3);
    raw.write_all(head.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    raw.write_all(tail.as_bytes()).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read to EOF after QUIT");
    reply
}

#[test]
fn scripted_conversation_is_byte_identical_across_engines() {
    let replies: Vec<Vec<u8>> = BOTH
        .map(|io| {
            let handle = serve(config(io), seeded_origin()).expect("server starts");
            let reply = scripted_conversation(handle.addr());
            handle.shutdown().expect("clean shutdown");
            reply
        })
        .into_iter()
        .collect();
    assert!(
        !replies[0].is_empty(),
        "the conversation must produce output"
    );
    assert_eq!(
        String::from_utf8_lossy(&replies[0]),
        String::from_utf8_lossy(&replies[1]),
        "blocking and event replies diverged"
    );
}

#[test]
fn event_mode_round_trips_every_verb() {
    let handle = serve(config(IoMode::Event), seeded_origin()).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");

    assert_eq!(c.get("alpha").unwrap().as_deref(), Some(&b"one"[..]));
    assert_eq!(c.get("alpha").unwrap().as_deref(), Some(&b"one"[..]));
    assert_eq!(c.get("absent").unwrap(), None);
    c.set("color", b"teal").unwrap();
    assert_eq!(c.get("color").unwrap().as_deref(), Some(&b"teal"[..]));
    assert!(c.del("color").unwrap());
    assert!(!c.del("color").unwrap());

    let stats = c.stats().unwrap();
    let stat = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing stat {name}"))
    };
    assert_eq!(stat("io_mode"), "event");
    assert_eq!(stat("hits").parse::<u64>().unwrap(), 2);

    let metrics = c.metrics().unwrap();
    assert!(metrics.contains("csr_serve_reactor_threads"));
    assert!(metrics.contains("csr_serve_reactor_polls_total"));
    assert!(metrics.contains("csr_serve_reactor_exec_dispatched_total"));
    c.quit().unwrap();
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn blocking_mode_reports_its_io_mode_in_stats() {
    let handle = serve(config(IoMode::Blocking), seeded_origin()).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let stats = c.stats().unwrap();
    assert!(
        stats.iter().any(|(n, v)| n == "io_mode" && v == "blocking"),
        "STATS must carry io_mode=blocking"
    );
    handle.shutdown().expect("clean shutdown");
}

/// The satellite-1 regression: `begin_shutdown`'s acceptor wake used to
/// be one best-effort `TcpStream::connect` that a saturated accept queue
/// could swallow, hanging shutdown until the next real client. Saturate
/// the server (tiny pool, tiny queue, a held worker, extra queued
/// connections) and require shutdown to complete promptly anyway.
#[test]
fn shutdown_completes_promptly_under_accept_saturation() {
    let cfg = ServerConfig {
        workers: 1,
        backlog: 1,
        ..config(IoMode::Blocking)
    };
    let handle = serve(cfg, seeded_origin()).expect("server starts");
    let addr = handle.addr();

    // Occupy the only worker mid-connection…
    let mut busy = TcpStream::connect(addr).unwrap();
    busy.write_all(b"GET alpha\r\n").unwrap();
    let mut one = [0u8; 64];
    let _ = busy.read(&mut one).unwrap();
    // …and pile connections into the accept queue behind it.
    let _queued: Vec<TcpStream> = (0..4)
        .filter_map(|_| TcpStream::connect(addr).ok())
        .collect();

    let t0 = Instant::now();
    let done = std::thread::spawn(move || handle.shutdown());
    let result = loop {
        if done.is_finished() {
            break done.join().expect("shutdown thread");
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "shutdown hung under a saturated accept queue"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    result.expect("clean shutdown");
}

/// The same promptness holds for the event engine, where the wake is a
/// poller event rather than a loopback connect.
#[test]
fn event_shutdown_completes_promptly_with_idle_connections() {
    let handle = serve(config(IoMode::Event), seeded_origin()).expect("server starts");
    let addr = handle.addr();
    // A mix of idle and mid-request connections.
    let idle: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut partial = TcpStream::connect(addr).unwrap();
    partial.write_all(b"GET half-a-requ").unwrap();

    let t0 = Instant::now();
    let done = std::thread::spawn(move || handle.shutdown());
    loop {
        if done.is_finished() {
            done.join().expect("shutdown thread").expect("clean");
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "event-mode shutdown hung with idle connections"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(idle);
}

/// An origin that panics on a marked key — the satellite-2 regression
/// vehicle: one panicking request must cost its own connection only,
/// never the serving pool.
struct PanickingBacking {
    inner: MemoryBacking,
}

impl Backing for PanickingBacking {
    fn try_fetch(&self, key: &str) -> Result<Option<Vec<u8>>, BackingError> {
        assert!(!key.starts_with("boom"), "origin panic for {key}");
        Ok(self.inner.fetch(key))
    }
}

fn panicking_origin() -> Arc<PanickingBacking> {
    let inner = MemoryBacking::new();
    inner.put("fine", b"ok".to_vec());
    Arc::new(PanickingBacking { inner })
}

fn worker_panics_metric(handle: &csr_serve::ServerHandle) -> u64 {
    let text = csr_obs::export::prometheus(&handle.registry().snapshot());
    text.lines()
        .find(|l| l.starts_with("csr_serve_worker_panics_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn handler_panic_kills_one_connection_not_the_pool() {
    for io in BOTH {
        let cfg = ServerConfig {
            workers: 2,
            ..config(io)
        };
        let handle = serve(cfg, panicking_origin()).expect("server starts");
        let addr = handle.addr();
        let mode = io.name();

        // Trip panics on several connections — more than the pool size,
        // so a pool-draining bug cannot hide behind spare workers.
        for i in 0..4 {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(format!("GET boom-{i}\r\n").as_bytes())
                .unwrap();
            raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = Vec::new();
            // The connection dies without a reply; EOF (or a reset) both
            // read as "no bytes, closed".
            let _ = raw.read_to_end(&mut buf);
            assert!(
                buf.is_empty(),
                "[{mode}] panicking request must close without a reply, got {:?}",
                String::from_utf8_lossy(&buf)
            );
        }

        // The pool must still serve — repeatedly, on fresh connections.
        for _ in 0..3 {
            let mut c = Client::connect(addr).expect("connect after panics");
            assert_eq!(
                c.get("fine").expect("pool survived").as_deref(),
                Some(&b"ok"[..]),
                "[{mode}] pool must keep serving after handler panics"
            );
        }
        assert!(
            worker_panics_metric(&handle) >= 4,
            "[{mode}] csr_serve_worker_panics_total must count the panics"
        );
        handle.shutdown().expect("clean shutdown");
    }
}

#[test]
fn event_mode_sheds_with_server_busy_at_max_conns() {
    let cfg = ServerConfig {
        max_conns: 2,
        ..config(IoMode::Event)
    };
    let handle = serve(cfg, seeded_origin()).expect("server starts");
    let addr = handle.addr();

    // Two residents hold the ceiling…
    let mut residents: Vec<Client> = (0..2).map(|_| Client::connect(addr).unwrap()).collect();
    for c in &mut residents {
        assert!(c.get("alpha").unwrap().is_some());
    }
    // …the third is shed explicitly. The accept and the shed reply are
    // asynchronous to the connect, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    let shed_reply = loop {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = Vec::new();
        let _ = raw.read_to_end(&mut buf);
        if !buf.is_empty() || Instant::now() > deadline {
            break buf;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        String::from_utf8_lossy(&shed_reply),
        "SERVER_BUSY\r\n",
        "the over-ceiling connection gets the explicit shed reply"
    );

    // Room opens up once a resident leaves.
    residents.pop();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(Some(v)) = c.get("alpha") {
                assert_eq!(&v[..], b"one");
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "a freed slot must readmit connections"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn event_mode_holds_hundreds_of_idle_connections() {
    let handle = serve(config(IoMode::Event), seeded_origin()).expect("server starts");
    let addr = handle.addr();
    // Far more resident connections than executors or reactors — the
    // scaling property the engine exists for, scaled down to test size.
    let idle: Vec<TcpStream> = (0..300)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connection {i} refused: {e}"))
        })
        .collect();
    // Requests still flow promptly past the idle crowd.
    let mut c = Client::connect(addr).expect("connect");
    for _ in 0..10 {
        assert_eq!(c.get("alpha").unwrap().as_deref(), Some(&b"one"[..]));
    }
    // And the idle connections are all still live sockets.
    for (i, mut s) in idle.into_iter().enumerate() {
        s.write_all(b"GET beta\r\n")
            .unwrap_or_else(|e| panic!("idle conn {i} died: {e}"));
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut first = [0u8; 5];
        s.read_exact(&mut first)
            .unwrap_or_else(|e| panic!("idle conn {i} got no reply: {e}"));
        assert_eq!(&first, b"VALUE");
        drop(s);
    }
    handle.shutdown().expect("clean shutdown");
}
