//! Cluster-mode end-to-end tests: several real nodes on loopback
//! sockets sharing one membership list, exercised through raw clients
//! (peer forwarding, `MOVED`) and the cluster-routing client (hot-key
//! fan-out, dead-node re-routing), plus the acceptance check that
//! peer-filled entries — charged their *measured* one-hop cost — evict
//! before origin-filled ones under pressure.

use csr_cache::Policy;
use csr_obs::Registry;
use csr_serve::cluster::{ClusterClientConfig, ClusterMetrics, PeerConfig};
use csr_serve::server::{serve, ServerConfig, ServerHandle};
use csr_serve::{
    Client, ClusterClient, ClusterNode, IoMode, MemoryBacking, Moved, Ring, SimBacking,
};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Reserves `n` distinct free loopback ports by binding ephemeral
/// listeners, then releasing them for the servers to claim. Every node
/// must know the *full* membership (real ports included) before any of
/// them starts, so letting `serve` pick port 0 is not an option here.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

fn membership(addrs: &[String]) -> Vec<ClusterNode> {
    addrs
        .iter()
        .map(|a| ClusterNode::addr_only(a.clone()))
        .collect()
}

/// The ring every participant in these tests agrees on (`PeerConfig` and
/// `ClusterClientConfig` defaults: 64 vnodes, seed 0).
fn default_ring(addrs: &[String]) -> Ring {
    Ring::new(addrs.to_vec(), 64, 0)
}

fn node_config(addr: &str, nodes: Vec<ClusterNode>) -> ServerConfig {
    node_config_io(addr, nodes, IoMode::Blocking)
}

fn node_config_io(addr: &str, nodes: Vec<ClusterNode>, io: IoMode) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        io,
        capacity: 1024,
        shards: Some(4),
        workers: 4,
        backlog: 8,
        idle_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        cluster: Some(PeerConfig {
            node_id: addr.to_owned(),
            nodes,
            ..PeerConfig::default()
        }),
        ..ServerConfig::default()
    }
}

fn stat_of(table: &[(String, String)], name: &str) -> u64 {
    table
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn any_node_answers_any_key_with_one_forwarding_hop() {
    forwarding_hop_in(IoMode::Blocking);
}

#[test]
fn any_node_answers_any_key_with_one_forwarding_hop_event() {
    forwarding_hop_in(IoMode::Event);
}

fn forwarding_hop_in(io: IoMode) {
    let addrs = reserve_addrs(4);
    let nodes = membership(&addrs);
    let origin = Arc::new(MemoryBacking::new());
    for k in 0..60 {
        origin.put(format!("key-{k}"), format!("value-{k}").into_bytes());
    }
    let handles: Vec<ServerHandle> = addrs
        .iter()
        .map(|a| serve(node_config_io(a, nodes.clone(), io), origin.clone()).expect("node starts"))
        .collect();

    let ring = default_ring(&addrs);
    let mut c = Client::connect(addrs[0].as_str()).expect("connect");
    let mut foreign = 0u64;
    for k in 0..60 {
        let key = format!("key-{k}");
        let v = c.get_value(&key).expect("get").expect("present");
        assert_eq!(v.data, format!("value-{k}").into_bytes());
        if ring.owner_index(&key) == 0 {
            assert!(!v.forwarded, "{key} is owned here: no hop to flag");
        } else {
            foreign += 1;
            assert!(
                v.forwarded,
                "{key} lives elsewhere: first read must forward"
            );
        }
    }
    assert!(foreign > 0, "4-node ring left node 0 owning every test key");

    // Forward-and-cache *is* the replication: re-reads are local hits,
    // and the FORWARDED flag (per-request provenance) is gone.
    for k in 0..60 {
        let key = format!("key-{k}");
        let v = c.get_value(&key).expect("get").expect("present");
        assert!(!v.forwarded, "{key} should be a local hit on the re-read");
    }

    let stats = c.stats().expect("stats");
    assert_eq!(stat_of(&stats, "cluster_forwards"), foreign);
    assert_eq!(stat_of(&stats, "cluster_forward_fallbacks"), 0);
    assert_eq!(stat_of(&stats, "cluster_nodes"), 4);
    // Each hop arrived at its owner as exactly one FGET.
    let fgets: u64 = addrs[1..]
        .iter()
        .map(|a| {
            let mut pc = Client::connect(a.as_str()).expect("connect peer");
            stat_of(&pc.stats().expect("peer stats"), "requests_fget")
        })
        .sum();
    assert_eq!(fgets, foreign);
    for h in handles {
        h.shutdown().expect("clean shutdown");
    }
}

#[test]
fn disabled_forwarding_redirects_with_moved() {
    let addrs = reserve_addrs(2);
    let nodes = membership(&addrs);
    let ring = default_ring(&addrs);
    let origin = Arc::new(MemoryBacking::new());
    let foreign_key = (0..)
        .map(|k| format!("key-{k}"))
        .find(|k| ring.owner_index(k) == 1)
        .expect("some key owned by node 1");
    origin.put(foreign_key.clone(), b"elsewhere".to_vec());

    let mut cfg0 = node_config(&addrs[0], nodes.clone());
    cfg0.cluster.as_mut().expect("cluster on").forward = false;
    let h0 = serve(cfg0, origin.clone()).expect("node 0 starts");
    let h1 = serve(node_config(&addrs[1], nodes), origin).expect("node 1 starts");

    let mut c = Client::connect(addrs[0].as_str()).expect("connect");
    let err = c.get(&foreign_key).expect_err("non-owner must redirect");
    let moved = Moved::from_io(&err).expect("typed MOVED error");
    assert_eq!(moved.addr, addrs[1], "redirect must name the owner");
    assert_eq!(stat_of(&c.stats().expect("stats"), "cluster_moved"), 1);

    // The named owner answers the same key locally.
    let mut o = Client::connect(addrs[1].as_str()).expect("connect owner");
    assert_eq!(
        o.get(&foreign_key).expect("owner get").as_deref(),
        Some(&b"elsewhere"[..])
    );
    h0.shutdown().expect("clean shutdown");
    h1.shutdown().expect("clean shutdown");
}

/// The acceptance check for measured hop costs: on a GreedyDual node,
/// entries filled over one cheap loopback hop (~10²µs) must be evicted
/// before entries filled from a slow origin (~2·10⁴µs) when pressure
/// arrives, because the replacement policy ranks by *measured* miss
/// cost — the paper's non-uniform cost regime arising from topology.
#[test]
fn peer_filled_entries_evict_before_origin_filled_ones() {
    let addrs = reserve_addrs(2);
    let nodes = membership(&addrs);
    let ring = default_ring(&addrs);
    // Every origin fetch costs ~20ms, dwarfing a loopback hop: node A's
    // measured miss costs split cleanly into expensive (own origin) and
    // cheap (peer hop into B's warm cache).
    let origin = || {
        Arc::new(SimBacking {
            fast: Duration::from_millis(20),
            slow: Duration::from_millis(20),
            slow_every: 1,
            value_len: 16,
        })
    };
    let mut cfg_a = node_config(&addrs[0], nodes.clone());
    cfg_a.capacity = 16;
    cfg_a.shards = Some(1);
    cfg_a.policy = Policy::Gd;
    let a = serve(cfg_a, origin()).expect("node A starts");
    let b = serve(node_config(&addrs[1], nodes), origin()).expect("node B starts");

    // Split a key stream by ring owner.
    let mut a_keys = Vec::new();
    let mut b_keys = Vec::new();
    for k in 0.. {
        if a_keys.len() >= 14 && b_keys.len() >= 8 {
            break;
        }
        let key = format!("key-{k}");
        if ring.owner_index(&key) == 0 {
            a_keys.push(key);
        } else {
            b_keys.push(key);
        }
    }
    a_keys.truncate(14);
    b_keys.truncate(8);

    // Warm the owner so A's forwarded fetches are hits on B.
    let mut cb = Client::connect(addrs[1].as_str()).expect("connect B");
    for key in &b_keys {
        assert!(cb.get(key).expect("warm B").is_some());
    }

    // Fill A to capacity: 8 cheap peer-filled + 8 expensive origin-filled
    // entries, interleaved.
    let mut ca = Client::connect(addrs[0].as_str()).expect("connect A");
    for i in 0..8 {
        assert!(ca.get(&b_keys[i]).expect("peer fill").is_some());
        assert!(ca.get(&a_keys[i]).expect("origin fill").is_some());
    }
    // Pressure: six more expensive entries force six evictions.
    for key in &a_keys[8..14] {
        assert!(ca.get(key).expect("pressure").is_some());
    }

    // Probe residency: DEL answers DELETED only for cached keys.
    let mut resident =
        |keys: &[String]| -> usize { keys.iter().filter(|k| ca.del(k).expect("probe")).count() };
    let peer_resident = resident(&b_keys);
    let origin_resident = resident(&a_keys[..8]);
    assert_eq!(
        origin_resident, 8,
        "an origin-filled (expensive) entry was evicted while cheap peer-filled ones remained"
    );
    assert_eq!(
        peer_resident, 2,
        "all six evictions should have landed on the cheap peer-filled entries"
    );
    a.shutdown().expect("clean shutdown");
    b.shutdown().expect("clean shutdown");
}

#[test]
fn a_dead_nodes_keys_reroute_and_survivors_fall_back_to_their_origin() {
    let addrs = reserve_addrs(3);
    let nodes = membership(&addrs);
    let origin = Arc::new(MemoryBacking::new());
    for k in 0..40 {
        origin.put(format!("key-{k}"), format!("value-{k}").into_bytes());
    }
    let mut handles: Vec<Option<ServerHandle>> = addrs
        .iter()
        .map(|a| Some(serve(node_config(a, nodes.clone()), origin.clone()).expect("node starts")))
        .collect();

    let registry = Registry::new();
    let metrics = ClusterMetrics::new(&registry);
    let mut client = ClusterClient::new(nodes.clone(), ClusterClientConfig::default())
        .with_metrics(metrics.clone());

    let victim = 2;
    let doomed: Vec<String> = (0..40)
        .map(|k| format!("key-{k}"))
        .filter(|k| client.owner_index(k) == victim)
        .collect();
    assert!(
        !doomed.is_empty(),
        "node {victim} owns none of the test keys"
    );
    handles[victim]
        .take()
        .expect("victim handle")
        .shutdown()
        .expect("victim stops");

    // Every read of a dead node's key still answers, correctly: the
    // client re-routes to a surviving replica, which tries the owner,
    // fails, and falls back to its own origin.
    for key in &doomed {
        let got = client.get(key).expect("rerouted read").expect("present");
        assert_eq!(got, format!("value-{}", &key[4..]).into_bytes());
    }
    assert!(metrics.reroutes.get() > 0, "no reroutes were counted");
    assert!(
        metrics.ring_flips.get() > 0,
        "the dead node never went unhealthy"
    );
    let fallbacks: u64 = client
        .stats_all()
        .iter()
        .map(|(_, t)| stat_of(t, "cluster_forward_fallbacks"))
        .sum();
    assert!(fallbacks > 0, "no survivor fell back to its local origin");
    for h in handles.into_iter().flatten() {
        h.shutdown().expect("clean shutdown");
    }
}

#[test]
fn hot_keys_promote_and_fan_reads_across_replicas() {
    let addrs = reserve_addrs(2);
    let nodes = membership(&addrs);
    let origin = Arc::new(MemoryBacking::new());
    origin.put("hot", b"coal".to_vec());
    let handles: Vec<ServerHandle> = addrs
        .iter()
        .map(|a| serve(node_config(a, nodes.clone()), origin.clone()).expect("node starts"))
        .collect();

    let registry = Registry::new();
    let metrics = ClusterMetrics::new(&registry);
    let config = ClusterClientConfig {
        hot_sample_every: 1,
        hot_threshold: 4,
        hot_decay_every: 0,
        ..ClusterClientConfig::default()
    };
    let mut client = ClusterClient::new(nodes, config).with_metrics(metrics.clone());
    for _ in 0..40 {
        assert_eq!(
            client.get("hot").expect("get").as_deref(),
            Some(&b"coal"[..])
        );
    }
    assert!(
        metrics.hot_key_promotions.get() >= 1,
        "the sketch never promoted a key read 40 times"
    );
    let owner = client.owner_index("hot");
    let replica = 1 - owner;
    let tables = client.stats_all();
    let of = |i: usize, name: &str| {
        tables
            .iter()
            .find(|(j, _)| *j == i)
            .map(|(_, t)| stat_of(t, name))
            .unwrap_or(0)
    };
    assert!(
        of(replica, "requests_get") > 0,
        "hot reads never fanned out to the replica"
    );
    assert!(
        of(owner, "requests_fget") >= 1,
        "the replica should have filled its copy over one FGET hop"
    );
    for h in handles {
        h.shutdown().expect("clean shutdown");
    }
}

#[test]
fn set_invalidates_forwarded_copies_cluster_wide() {
    let addrs = reserve_addrs(2);
    let nodes = membership(&addrs);
    let ring = default_ring(&addrs);
    let origin = Arc::new(MemoryBacking::new());
    let key = (0..)
        .map(|k| format!("key-{k}"))
        .find(|k| ring.owner_index(k) == 1)
        .expect("some key owned by node 1");
    origin.put(key.clone(), b"old".to_vec());
    let handles: Vec<ServerHandle> = addrs
        .iter()
        .map(|a| serve(node_config(a, nodes.clone()), origin.clone()).expect("node starts"))
        .collect();

    // Seed a forwarded copy of the old value on the non-owner.
    let mut c0 = Client::connect(addrs[0].as_str()).expect("connect");
    assert_eq!(c0.get(&key).expect("get").as_deref(), Some(&b"old"[..]));

    // A cluster-routed SET stores on the owner and broadcasts DEL, so
    // the non-owner's copy cannot outlive the write.
    let mut client = ClusterClient::new(nodes, ClusterClientConfig::default());
    client.set(&key, b"new").expect("cluster set");
    assert_eq!(
        c0.get(&key).expect("get after set").as_deref(),
        Some(&b"new"[..]),
        "the stale forwarded copy survived the SET's invalidation"
    );
    for h in handles {
        h.shutdown().expect("clean shutdown");
    }
}
