//! Crash-injection harness for the persistence layer. The acceptance
//! scenarios from the robustness milestone:
//!
//! * seeded SIGKILL-under-load cycles: the daemon is killed at a random
//!   point while writer threads are mid-flight, restarted on the same
//!   directory, and every value it serves afterwards must be one the
//!   workload could have produced — zero wrong values, every ACKed
//!   durable SET accounted for;
//! * the warm-restart eviction-order probe: *measured* miss costs
//!   recorded in the WAL must survive a SIGKILL, so after recovery the
//!   GreedyDual policy still evicts the observed-cheap entries first
//!   (the persistence analogue of the peer-vs-origin cluster probe);
//! * torn tails and bit flips in the WAL truncate at the damaged record
//!   — the prefix is served, the damage never is;
//! * SIGTERM during recovery replay aborts cleanly (exit 0) before the
//!   listener ever opens;
//! * a second daemon pointed at a live daemon's persistence dir refuses
//!   to start instead of interleaving writes into one WAL.

#![cfg(unix)]

use csr_serve::SimBacking;
use mem_trace::rng::SplitMix64;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fresh persistence directory for one test. Prefers tmpfs (`/dev/shm`)
/// where `fsync` is near-free, so `--fsync always` workloads don't
/// dominate the suite's wall clock; crash semantics are identical.
fn test_dir(name: &str) -> PathBuf {
    let base = PathBuf::from("/dev/shm");
    let base = if base.is_dir() {
        base
    } else {
        std::env::temp_dir()
    };
    let dir = base.join(format!("csr-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn the daemon with persistence on `dir` plus extra flags; parse
/// the listening banner for the bound address.
fn spawn_persisting(dir: &Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = spawn_raw(dir, extra, false);
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read daemon listening line");
    let addr = line
        .split_whitespace()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable daemon banner: {line:?}"));
    (child, addr)
}

fn spawn_raw(dir: &Path, extra: &[&str], pipe_stderr: bool) -> Child {
    let dir = dir.to_str().expect("utf8 dir");
    let mut args = vec![
        "--addr",
        "127.0.0.1:0",
        "--backing",
        "sim",
        "--value-len",
        "32",
        "--workers",
        "8",
        "--persist-dir",
        dir,
        "--fsync",
        "always",
    ];
    args.extend_from_slice(extra);
    Command::new(env!("CARGO_BIN_EXE_csr-serve"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(if pipe_stderr {
            Stdio::piped()
        } else {
            Stdio::null()
        })
        .spawn()
        .expect("spawn csr-serve")
}

fn wait_exit(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "daemon did not exit within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Minimal inline client: one op per call over a shared connection.
/// (The lib `Client` would also do; this keeps the harness transparent
/// about exactly which bytes were ACKed before the kill.)
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn { stream, reader })
    }

    fn line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// SET; Ok(true) iff the server ACKed with STORED. The frame goes
    /// out in one write so Nagle/delayed-ACK can't stall the op.
    fn set(&mut self, key: &str, value: &[u8]) -> std::io::Result<bool> {
        let mut frame = format!("SET {key} {}\r\n", value.len()).into_bytes();
        frame.extend_from_slice(value);
        frame.extend_from_slice(b"\r\n");
        self.stream.write_all(&frame)?;
        Ok(self.line()? == "STORED")
    }

    /// GET; Ok(Some(bytes)) on a VALUE reply, Ok(None) on NOT_FOUND.
    fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        write!(self.stream, "GET {key}\r\n")?;
        let head = self.line()?;
        if head.starts_with("NOT_FOUND") {
            return Ok(None);
        }
        let len: usize = head
            .split_whitespace()
            .nth(2)
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("bad VALUE header: {head:?}"));
        let mut buf = vec![0u8; len + 2];
        self.reader.read_exact(&mut buf)?;
        buf.truncate(len);
        let tail = self.line()?;
        assert_eq!(tail, "END", "unterminated VALUE body");
        Ok(Some(buf))
    }

    /// DEL; Ok(true) iff the key was resident (DELETED).
    fn del(&mut self, key: &str) -> std::io::Result<bool> {
        write!(self.stream, "DEL {key}\r\n")?;
        Ok(self.line()? == "DELETED")
    }

    fn stat(&mut self, name: &str) -> std::io::Result<u64> {
        write!(self.stream, "STATS\r\n")?;
        let mut found = 0;
        loop {
            let line = self.line()?;
            if line == "END" {
                return Ok(found);
            }
            let mut parts = line.split_whitespace();
            if parts.next() == Some("STAT") && parts.next() == Some(name) {
                found = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            }
        }
    }
}

/// What a recovered GET may legitimately return for `key`: the exact
/// value this workload SET, or a SimBacking refetch (which synthesizes
/// `key` followed by padding). Anything else is a wrong value — served
/// corruption or another key's bytes.
fn plausible(key: &str, expected: Option<&[u8]>, got: &[u8]) -> bool {
    expected.is_some_and(|e| e == got) || got.starts_with(key.as_bytes())
}

/// The headline scenario: ten seeded kill cycles. Each cycle runs two
/// writer threads against a persisting daemon, SIGKILLs it at a random
/// point mid-traffic, restarts it on the same directory, and audits
/// every key either thread ever ACKed. `--fsync always` makes each ACK
/// a durability promise, so an ACKed SET must survive unless a later
/// ACKed DEL removed it; and nothing the server returns may be a value
/// the workload could not have produced.
#[test]
fn ten_seeded_sigkill_cycles_recover_with_zero_wrong_values() {
    const CYCLES: u64 = 10;
    let dir = test_dir("cycles");
    let mut rng = SplitMix64::new(0xC4A5_11D0);
    let mut total_recovered = 0u64;

    for cycle in 0..CYCLES {
        let (mut child, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
        let acked: Arc<Mutex<HashMap<String, Option<Vec<u8>>>>> =
            Arc::new(Mutex::new(HashMap::new()));

        let writers: Vec<_> = (0..2)
            .map(|t| {
                let acked = Arc::clone(&acked);
                let mut rng = SplitMix64::new(cycle * 7919 + t);
                std::thread::spawn(move || {
                    let Ok(mut conn) = Conn::open(addr) else {
                        return;
                    };
                    // Each thread owns a disjoint key space so an ACK
                    // recorded here can't race another thread's DEL.
                    for i in 0.. {
                        let key = format!("c{cycle}t{t}k{}", i % 64);
                        let r = if rng.chance(0.25) {
                            conn.del(&key).map(|hit| {
                                if hit {
                                    acked.lock().unwrap().insert(key.clone(), None);
                                }
                            })
                        } else {
                            let value = format!("V!{key}!{}", rng.next_u64()).into_bytes();
                            conn.set(&key, &value).map(|stored| {
                                if stored {
                                    acked.lock().unwrap().insert(key.clone(), Some(value));
                                }
                            })
                        };
                        if r.is_err() {
                            return; // the kill landed
                        }
                    }
                })
            })
            .collect();

        // Let traffic build, then kill at a seeded random point.
        std::thread::sleep(Duration::from_millis(5 + rng.below(60)));
        child.kill().expect("SIGKILL daemon");
        child.wait().expect("reap daemon");
        for w in writers {
            w.join().expect("writer thread");
        }

        // Restart on the same directory and audit everything ACKed.
        let (mut survivor, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
        let mut conn = Conn::open(addr).expect("connect survivor");
        let recovered = conn.stat("persist_recovered_entries").expect("stats");
        total_recovered += recovered;
        let acked = acked.lock().unwrap();
        for (key, expected) in acked.iter() {
            // Probe residency first: a durable SET must still be there.
            // (A GET would mask loss by refetching through the origin.)
            let resident = conn.del(key).expect("probe");
            match expected {
                Some(value) => {
                    assert!(
                        resident,
                        "cycle {cycle}: ACKed durable SET of {key} vanished across SIGKILL"
                    );
                    // Re-check content via the WAL the probe just wrote:
                    // re-SET and read back to keep the connection honest.
                    conn.set(key, value).expect("re-set");
                    let got = conn.get(key).expect("verify").expect("just set");
                    assert!(
                        plausible(key, Some(value), &got),
                        "cycle {cycle}: wrong value for {key}: {got:?}"
                    );
                }
                None => {
                    // An ACKed DEL: the key may only reappear via a sim
                    // refetch, never with the deleted SET payload.
                }
            }
        }
        drop(acked);
        kill_and_reap(&mut survivor);
    }
    assert!(
        total_recovered > 0,
        "ten cycles never recovered a single entry — the WAL is not being replayed"
    );
}

/// Residency-content audit variant: values must match exactly on the
/// recovered daemon *before* any probe mutates state. Complements the
/// residency check above by catching byte-level corruption.
#[test]
fn recovered_values_match_acked_bytes_exactly() {
    let dir = test_dir("bytes");
    let (mut child, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect");
    let mut expected = HashMap::new();
    for i in 0..200u64 {
        let key = format!("exact:{i}");
        let value = format!("V!{key}!{:032x}", i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).into_bytes();
        assert!(conn.set(&key, &value).expect("set"));
        expected.insert(key, value);
    }
    kill_and_reap(&mut child);

    let (mut survivor, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect survivor");
    assert_eq!(
        conn.stat("persist_recovered_entries").expect("stats"),
        200,
        "all 200 durable SETs must recover"
    );
    for (key, value) in &expected {
        let got = conn.get(key).expect("get").expect("recovered key");
        assert_eq!(&got, value, "recovered bytes differ for {key}");
    }
    kill_and_reap(&mut survivor);
}

fn kill_and_reap(child: &mut Child) {
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap daemon");
}

/// A DEL answered NOT_FOUND must still tombstone the WAL. The trap:
/// GETs are not logged, so live eviction (recency-steered by hits) can
/// diverge from replay eviction — leaving a SET for a key the live
/// cache already evicted sitting in the WAL tail where replay *keeps*
/// it. Here `bkey` is evicted live (the GET refreshed `akey`, so `bkey`
/// is the LRU victim) but survives replay (no GET in the log means
/// `akey` is the replay victim). Without the unconditional tombstone,
/// the client's explicit invalidation evaporates and the restarted
/// server serves the stale pre-DEL bytes indefinitely.
#[test]
fn del_of_nonresident_key_tombstones_the_wal() {
    let dir = test_dir("del-tombstone");
    let flags = [
        "--capacity",
        "2",
        "--shards",
        "1",
        "--policy",
        "lru",
        "--fast-us",
        "0",
        "--slow-us",
        "0",
    ];
    let (mut child, addr) = spawn_persisting(&dir, &flags);
    {
        let mut conn = Conn::open(addr).expect("connect");
        assert!(conn.set("akey", b"va").expect("set akey"));
        assert!(conn.set("bkey", b"STALE-AFTER-DEL").expect("set bkey"));
        // The unlogged hit: akey becomes MRU, so the next insert evicts
        // bkey live — while replay, blind to GETs, will evict akey.
        assert_eq!(
            conn.get("akey").expect("get akey").as_deref(),
            Some(&b"va"[..])
        );
        assert!(conn.set("ckey", b"vc").expect("set ckey"));
        assert!(
            !conn.del("bkey").expect("del bkey"),
            "bkey must already be evicted (NOT_FOUND) for this scenario"
        );
    }
    kill_and_reap(&mut child);

    let (mut survivor, addr) = spawn_persisting(&dir, &flags);
    let mut conn = Conn::open(addr).expect("connect survivor");
    let got = conn
        .get("bkey")
        .expect("get bkey")
        .expect("read-through refetch");
    assert_ne!(
        got,
        b"STALE-AFTER-DEL".to_vec(),
        "replay resurrected a value the client explicitly invalidated"
    );
    assert!(
        plausible("bkey", None, &got),
        "recovered GET must be an origin refetch, got {got:?}"
    );
    kill_and_reap(&mut survivor);
}

/// The measured-cost probe: fill a capacity-16 GreedyDual cache with 8
/// observed-cheap (~100µs) and 8 observed-expensive (~20ms) entries,
/// SIGKILL, restart, then pressure with six more expensive keys. If the
/// WAL preserved the *measured* costs, all six evictions land on the
/// recovered cheap entries — the same split the cluster peer-vs-origin
/// probe asserts, here across a crash.
#[test]
fn measured_costs_survive_sigkill_and_steer_eviction_after_restart() {
    let dir = test_dir("costs");
    let flags = [
        "--capacity",
        "16",
        "--shards",
        "1",
        "--policy",
        "gd",
        "--slow-every",
        "2",
        "--fast-us",
        "100",
        "--slow-us",
        "20000",
    ];
    // Classify keys with the same deterministic hash the sim backing
    // uses, so cheap/expensive is known without trusting timing.
    let classifier = SimBacking {
        slow_every: 2,
        ..SimBacking::default()
    };
    let mut cheap = Vec::new();
    let mut expensive = Vec::new();
    let mut pressure = Vec::new();
    for i in 0.. {
        let key = format!("cost:{i}");
        if classifier.is_slow(&key) {
            if expensive.len() < 8 {
                expensive.push(key);
            } else if pressure.len() < 6 {
                pressure.push(key);
            }
        } else if cheap.len() < 8 {
            cheap.push(key);
        }
        if cheap.len() >= 8 && expensive.len() >= 8 && pressure.len() >= 6 {
            break;
        }
    }

    let (mut child, addr) = spawn_persisting(&dir, &flags);
    let mut conn = Conn::open(addr).expect("connect");
    for i in 0..8 {
        assert!(conn.get(&cheap[i]).expect("cheap fill").is_some());
        assert!(conn.get(&expensive[i]).expect("expensive fill").is_some());
    }
    kill_and_reap(&mut child);

    let (mut survivor, addr) = spawn_persisting(&dir, &flags);
    let mut conn = Conn::open(addr).expect("connect survivor");
    assert_eq!(
        conn.stat("persist_recovered_entries").expect("stats"),
        16,
        "the full resident set must recover"
    );
    for key in &pressure {
        assert!(conn.get(key).expect("pressure").is_some());
    }
    let resident = |conn: &mut Conn, keys: &[String]| -> usize {
        keys.iter().filter(|k| conn.del(k).expect("probe")).count()
    };
    let expensive_resident = resident(&mut conn, &expensive);
    let cheap_resident = resident(&mut conn, &cheap);
    assert_eq!(
        expensive_resident, 8,
        "a recovered expensive entry was evicted while cheap ones remained — measured costs were lost across the crash"
    );
    assert_eq!(
        cheap_resident, 2,
        "all six evictions should have landed on the recovered cheap entries"
    );
    kill_and_reap(&mut survivor);
}

fn newest_wal(dir: &Path) -> PathBuf {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .expect("read persist dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("at least one WAL segment")
}

/// Write a known workload, SIGKILL, damage the WAL tail, restart: the
/// damaged suffix is truncated (counted in the metric), every record
/// before it is served intact, and the torn bytes never surface.
#[test]
fn torn_tail_is_truncated_and_never_served() {
    let dir = test_dir("torn");
    let (mut child, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect");
    for i in 0..50 {
        let key = format!("torn:{i}");
        assert!(conn
            .set(&key, format!("V!{key}!x").as_bytes())
            .expect("set"));
    }
    kill_and_reap(&mut child);

    // A torn write: a plausible length prefix with only half a payload.
    let wal = newest_wal(&dir);
    let mut bytes = std::fs::read(&wal).expect("read wal");
    bytes.extend_from_slice(&64u32.to_le_bytes());
    bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 20]);
    std::fs::write(&wal, &bytes).expect("write torn wal");

    let (mut survivor, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect survivor");
    assert_eq!(
        conn.stat("persist_recovered_entries").expect("stats"),
        50,
        "the intact prefix must recover in full"
    );
    assert!(
        conn.stat("persist_truncated_records").expect("stats") >= 1,
        "the torn tail must be counted"
    );
    for i in 0..50 {
        let key = format!("torn:{i}");
        let got = conn.get(&key).expect("get").expect("prefix key");
        assert_eq!(got, format!("V!{key}!x").into_bytes());
    }
    kill_and_reap(&mut survivor);
}

/// A bit flip mid-WAL fails that record's CRC: recovery keeps the
/// records before the flip, truncates from the flip onwards (the
/// prefix rule), and never serves bytes from the damaged region.
#[test]
fn bit_flip_mid_wal_truncates_from_the_damage_onwards() {
    let dir = test_dir("flip");
    let (mut child, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect");
    for i in 0..50 {
        let key = format!("flip:{i}");
        assert!(conn
            .set(&key, format!("V!{key}!x").as_bytes())
            .expect("set"));
    }
    kill_and_reap(&mut child);

    let wal = newest_wal(&dir);
    let mut bytes = std::fs::read(&wal).expect("read wal");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&wal, &bytes).expect("write flipped wal");

    let (mut survivor, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect survivor");
    let recovered = conn.stat("persist_recovered_entries").expect("stats");
    assert!(
        recovered < 50,
        "a flipped bit mid-WAL cannot leave all 50 records valid"
    );
    assert!(
        conn.stat("persist_truncated_records").expect("stats") >= 1,
        "the damaged suffix must be counted as truncated"
    );
    // Whatever survived must be byte-exact; whatever didn't must come
    // back as a sim refetch, never as damaged WAL bytes.
    for i in 0..50 {
        let key = format!("flip:{i}");
        let got = conn.get(&key).expect("get").expect("get always refills");
        assert!(
            plausible(&key, Some(format!("V!{key}!x").as_bytes()), &got),
            "served bytes for {key} are neither the SET value nor a refetch: {got:?}"
        );
    }
    kill_and_reap(&mut survivor);
}

/// SIGTERM while recovery is replaying the WAL must abort cleanly —
/// exit status 0, and the listener must never have opened (no banner).
#[test]
fn sigterm_during_recovery_replay_exits_cleanly_before_listening() {
    let dir = test_dir("sigterm");
    let (mut child, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect");
    for i in 0..2048 {
        let key = format!("replay:{i}");
        assert!(conn.set(&key, b"V!replay!x").expect("set"));
    }
    kill_and_reap(&mut child);

    // Throttled replay: 2048 records at 50ms per 256 gives a ~400ms
    // window to land the signal deterministically.
    let mut child = spawn_raw(
        &dir,
        &[
            "--fast-us",
            "0",
            "--slow-us",
            "0",
            "--recovery-throttle-us",
            "50000",
        ],
        true,
    );
    let stderr = child.stderr.take().expect("daemon stderr");
    // Keep stderr open until the daemon exits: dropping the pipe early
    // would turn its own shutdown message into an EPIPE panic.
    let mut err_reader = BufReader::new(stderr);
    let mut line = String::new();
    err_reader.read_line(&mut line).expect("read recovery line");
    assert!(
        line.contains("recovering from"),
        "expected the recovery banner, got {line:?}"
    );
    std::thread::sleep(Duration::from_millis(100));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");

    let status = wait_exit(&mut child, Duration::from_secs(10));
    let mut rest = String::new();
    err_reader.read_to_string(&mut rest).expect("drain stderr");
    assert!(
        status.success(),
        "SIGTERM during replay must exit cleanly, got {status:?}; stderr: {rest}"
    );
    let mut banner = String::new();
    child
        .stdout
        .take()
        .expect("stdout")
        .read_to_string(&mut banner)
        .expect("drain stdout");
    assert!(
        !banner.contains("listening"),
        "the listener must never open when recovery is aborted: {banner:?}"
    );
}

/// Double-start protection: a second daemon pointed at a live daemon's
/// persistence directory must refuse with a clean non-zero exit.
#[test]
fn second_daemon_on_a_live_dir_refuses_to_start() {
    let dir = test_dir("lock");
    let (mut first, _) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);

    let mut second = spawn_raw(&dir, &["--fast-us", "0", "--slow-us", "0"], true);
    let status = wait_exit(&mut second, Duration::from_secs(10));
    assert!(
        !status.success(),
        "second daemon must refuse a locked persistence dir"
    );
    let mut err = String::new();
    second
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut err)
        .expect("drain stderr");
    assert!(
        err.contains("locked"),
        "refusal must name the lock, got {err:?}"
    );
    kill_and_reap(&mut first);

    // The beacon died with the holder: the same dir opens again.
    let (mut third, addr) = spawn_persisting(&dir, &["--fast-us", "0", "--slow-us", "0"]);
    let mut conn = Conn::open(addr).expect("connect after stale lock");
    conn.stat("persist_degraded").expect("stats");
    kill_and_reap(&mut third);
}
