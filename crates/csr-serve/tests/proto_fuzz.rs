//! Protocol fuzzing: the parser must never panic, never allocate
//! unboundedly (the size limits cut in first), and — through a live
//! server — every reply to arbitrary input must be a well-formed frame
//! or a clean close. Three passes:
//!
//! 1. 100k seeded random byte frames through `read_request` in-process.
//! 2. Mutated-valid frames (truncations, bit flips, insertions,
//!    duplications of real commands) through the same loop.
//! 3. A socket pass: mutated garbage against a real server, every byte
//!    of every reply checked against the reply grammar (including CRC
//!    verification on `VALUE`/`DATA` payloads).

use csr_serve::proto::{self, ProtoError};
use csr_serve::server::{serve, ServerConfig};
use csr_serve::{Client, IoMode, MemoryBacking};
use mem_trace::rng::SplitMix64;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Bytes a frame is built from, biased toward protocol-looking content
/// (verbs, digits, separators) so the fuzz reaches deep parse paths, not
/// just "unknown command".
fn random_frame(rng: &mut SplitMix64, out: &mut Vec<u8>) {
    const VERBS: &[&[u8]] = &[
        b"GET", b"SET", b"DEL", b"STATS", b"METRICS", b"QUIT", b"get", b"SETT", b"GE", b"",
    ];
    const FILLER: &[u8] = b" \t0123456789abcXYZ:_-.\r\n\0\xff\x80";
    if rng.chance(0.7) {
        out.extend_from_slice(VERBS[rng.below(VERBS.len() as u64) as usize]);
        out.push(b' ');
    }
    let len = rng.below(48);
    for _ in 0..len {
        out.push(FILLER[rng.below(FILLER.len() as u64) as usize]);
    }
    if rng.chance(0.8) {
        out.extend_from_slice(b"\r\n");
    }
}

/// Drives `read_request` over one "connection's" bytes until it ends —
/// cleanly, fatally, or by I/O — counting recoverable errors (which must
/// leave the stream resynced for the next call). Returns (requests,
/// recoverable errors).
fn drain(input: &[u8]) -> (u64, u64) {
    let mut reader = BufReader::new(input);
    let (mut requests, mut recoverable) = (0u64, 0u64);
    loop {
        match proto::read_request(&mut reader) {
            Ok(None) => return (requests, recoverable),
            Ok(Some(_)) => requests += 1,
            Err(ProtoError::Client { fatal: false, .. }) => recoverable += 1,
            Err(ProtoError::Client { fatal: true, .. }) | Err(ProtoError::Io(_)) => {
                return (requests, recoverable)
            }
        }
    }
}

/// Pass 1: 100k seeded random frames. The assertion is the run itself —
/// no panic, no OOM — plus a sanity check that the fuzz actually
/// exercised both accept and reject paths.
#[test]
fn hundred_thousand_random_frames_never_panic() {
    let mut rng = SplitMix64::new(0xf022);
    let (mut frames, mut requests, mut recoverable) = (0u64, 0u64, 0u64);
    while frames < 100_000 {
        // Group frames into pipelined "connections" so recoverable
        // errors must resync mid-stream, not just at frame boundaries.
        let mut conn = Vec::new();
        let burst = 1 + rng.below(16);
        for _ in 0..burst {
            random_frame(&mut rng, &mut conn);
            frames += 1;
        }
        let (req, rec) = drain(&conn);
        requests += req;
        recoverable += rec;
    }
    assert!(frames >= 100_000);
    assert!(requests > 0, "fuzz never produced a valid request");
    assert!(recoverable > 0, "fuzz never produced a recoverable error");
}

/// A corpus of valid pipelines to mutate.
fn corpus() -> Vec<Vec<u8>> {
    let crc = proto::crc32(b"abc");
    vec![
        b"GET key:1\r\n".to_vec(),
        b"SET key:1 3\r\nabc\r\n".to_vec(),
        format!("SET key:1 3 {crc:08x}\r\nabc\r\n").into_bytes(),
        b"DEL key:1\r\n".to_vec(),
        b"FGET key:1\r\n".to_vec(),
        b"STATS\r\n".to_vec(),
        b"METRICS\r\n".to_vec(),
        b"GET a\r\nGET b\r\nSET c 1\r\nx\r\nQUIT\r\n".to_vec(),
    ]
}

fn mutate(rng: &mut SplitMix64, frame: &[u8]) -> Vec<u8> {
    let mut out = frame.to_vec();
    match rng.below(4) {
        // Truncate at a random point.
        0 => {
            let cut = rng.below(out.len() as u64 + 1) as usize;
            out.truncate(cut);
        }
        // Flip one bit.
        1 => {
            if !out.is_empty() {
                let at = rng.below(out.len() as u64) as usize;
                out[at] ^= 1 << rng.below(8);
            }
        }
        // Insert a random byte.
        2 => {
            let at = rng.below(out.len() as u64 + 1) as usize;
            #[allow(clippy::cast_possible_truncation)]
            out.insert(at, rng.below(256) as u8);
        }
        // Duplicate a random slice.
        _ => {
            if !out.is_empty() {
                let a = rng.below(out.len() as u64) as usize;
                let b = rng.below(out.len() as u64) as usize;
                let (lo, hi) = (a.min(b), a.max(b));
                let dup = out[lo..hi].to_vec();
                out.extend_from_slice(&dup);
            }
        }
    }
    out
}

/// Pass 2: mutated-valid frames in-process — near-misses of real
/// commands reach the deepest parse paths.
#[test]
fn mutated_valid_frames_never_panic() {
    let mut rng = SplitMix64::new(0xc0bb);
    let corpus = corpus();
    for _ in 0..25_000 {
        let base = &corpus[rng.below(corpus.len() as u64) as usize];
        let mutated = mutate(&mut rng, base);
        drain(&mutated);
        // And with a valid chaser: resync either consumes it as payload
        // (a mutated SET length) or parses it — both fine, no panic.
        let mut chased = mutate(&mut rng, base);
        chased.extend_from_slice(b"GET chaser\r\n");
        drain(&chased);
    }
}

/// Asserts `reply` is a well-formed frame stream per PROTOCOL.md: known
/// line shapes, length-framed payloads that match their declared CRC.
/// EOF at a frame boundary is a clean close; EOF inside a frame is not.
fn validate_reply_stream(reply: &[u8]) {
    let mut rest = reply;
    let next_line = |rest: &mut &[u8]| -> Option<Vec<u8>> {
        let pos = rest.windows(2).position(|w| w == b"\r\n")?;
        let line = rest[..pos].to_vec();
        *rest = &rest[pos + 2..];
        Some(line)
    };
    while !rest.is_empty() {
        let Some(line) = next_line(&mut rest) else {
            panic!("reply ends mid-line: {:?}", String::from_utf8_lossy(rest));
        };
        let text = String::from_utf8(line).expect("reply lines are UTF-8");
        let mut consume_payload = |declared_len: &str, crc_token: Option<&str>| {
            let len: usize = declared_len.parse().expect("declared length is numeric");
            assert!(rest.len() >= len + 2, "payload truncated in {text:?}");
            let (body, after) = rest.split_at(len);
            assert_eq!(&after[..2], b"\r\n", "payload not CRLF-terminated");
            if let Some(tok) = crc_token {
                let declared = u32::from_str_radix(tok, 16).expect("crc token is hex");
                assert_eq!(proto::crc32(body), declared, "crc mismatch in {text:?}");
            }
            rest = &after[2..];
        };
        let tokens: Vec<&str> = text.split(' ').collect();
        match tokens.as_slice() {
            ["VALUE", _key, len] => consume_payload(len, None),
            ["VALUE", _key, len, crc] => consume_payload(len, Some(crc)),
            ["VALUE", _key, len, "STALE", crc] => consume_payload(len, Some(crc)),
            ["VALUE", _key, len, "FORWARDED", crc] => consume_payload(len, Some(crc)),
            ["VALUE", _key, len, "STALE", "FORWARDED", crc] => consume_payload(len, Some(crc)),
            ["DATA", len] => consume_payload(len, None),
            ["DATA", len, crc] => consume_payload(len, Some(crc)),
            ["END" | "STORED" | "DELETED" | "NOT_FOUND" | "SERVER_BUSY"] => {}
            ["MOVED", _addr] => {}
            ["STAT", ..] => {}
            first
                if first
                    .first()
                    .is_some_and(|t| *t == "CLIENT_ERROR" || *t == "ORIGIN_ERROR") => {}
            other => panic!("unrecognized reply line: {other:?}"),
        }
    }
}

/// Pass 3: the same hostility through real sockets. Every connection's
/// full reply stream must parse as well-formed frames; afterwards a
/// clean client still round-trips (no worker was wedged or poisoned).
#[test]
fn server_replies_to_garbage_with_well_formed_frames() {
    garbage_gets_well_formed_frames_in(IoMode::Blocking);
}

#[test]
fn server_replies_to_garbage_with_well_formed_frames_event() {
    garbage_gets_well_formed_frames_in(IoMode::Event);
}

fn garbage_gets_well_formed_frames_in(io: IoMode) {
    // The canary key must be unreachable from the fuzz alphabet: corpus
    // frames contain working SETs (which store!), so checking a corpus
    // key afterwards would race the fuzz's own writes.
    let origin = Arc::new(MemoryBacking::new());
    origin.put("canary".to_owned(), b"v1".to_vec());
    let config = ServerConfig {
        io,
        workers: 8,
        idle_timeout: Duration::from_secs(2),
        partial_read_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let handle = serve(config, origin).expect("server starts");

    let mut rng = SplitMix64::new(0x50c2);
    let corpus = corpus();
    for conn_i in 0..48 {
        let mut payload = Vec::new();
        for _ in 0..24 {
            if rng.chance(0.5) {
                let base = &corpus[rng.below(corpus.len() as u64) as usize];
                payload.extend_from_slice(&mutate(&mut rng, base));
            } else {
                random_frame(&mut rng, &mut payload);
            }
        }
        let mut sock = TcpStream::connect(handle.addr()).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock.write_all(&payload).expect("write garbage");
        // EOF our write half so the server drains to a decision.
        sock.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = Vec::new();
        sock.read_to_end(&mut reply)
            .unwrap_or_else(|e| panic!("conn {conn_i}: read failed: {e}"));
        validate_reply_stream(&reply);
    }

    // The pool survived all of it.
    let mut c = Client::connect(handle.addr()).expect("connect after fuzz");
    assert_eq!(c.get("canary").expect("get"), Some(b"v1".to_vec()));
    c.quit().unwrap();
    handle.shutdown().expect("clean shutdown");
}
