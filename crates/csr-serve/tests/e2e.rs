//! End-to-end tests: a real server on a loopback socket, exercised
//! through the client library (and a raw socket where the test is about
//! the wire format itself).

use csr_cache::Policy;
use csr_obs::ReportFormat;
use csr_serve::server::{serve, ReportSink, ServerConfig};
use csr_serve::{Client, IoMode, MemoryBacking, SimBacking};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_config(io: IoMode) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        capacity: 1024,
        shards: Some(4),
        io,
        workers: 4,
        backlog: 4,
        idle_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

#[test]
fn round_trips_every_verb() {
    round_trips_every_verb_in(IoMode::Blocking);
}

#[test]
fn round_trips_every_verb_event() {
    round_trips_every_verb_in(IoMode::Event);
}

fn round_trips_every_verb_in(io: IoMode) {
    let origin = Arc::new(MemoryBacking::new());
    origin.put("greeting", b"hello".to_vec());
    let handle = serve(test_config(io), origin).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Read-through: the origin supplies the first read, the cache the next.
    assert_eq!(c.get("greeting").unwrap().as_deref(), Some(&b"hello"[..]));
    assert_eq!(c.get("greeting").unwrap().as_deref(), Some(&b"hello"[..]));
    assert_eq!(c.get("absent").unwrap(), None);

    // Explicit store and invalidation.
    c.set("color", b"teal").unwrap();
    assert_eq!(c.get("color").unwrap().as_deref(), Some(&b"teal"[..]));
    assert!(c.del("color").unwrap());
    assert!(!c.del("color").unwrap());

    let stats = c.stats().unwrap();
    let stat = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing stat {name}"))
    };
    assert_eq!(stat("policy"), "DCL");
    assert_eq!(stat("hits").parse::<u64>().unwrap(), 2); // greeting re-read + color read
    assert!(stat("misses").parse::<u64>().unwrap() >= 2);
    assert_eq!(stat("requests_del"), "2");

    let metrics = c.metrics().unwrap();
    assert!(metrics.contains("csr_serve_requests_total"));
    assert!(metrics.contains("csr_serve_connections_total"));
    assert!(metrics.contains("csr_policy_events_total"));
    c.quit().unwrap();
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn pipelined_requests_answer_in_order() {
    pipelined_requests_answer_in_order_in(IoMode::Blocking);
}

#[test]
fn pipelined_requests_answer_in_order_event() {
    pipelined_requests_answer_in_order_in(IoMode::Event);
}

fn pipelined_requests_answer_in_order_in(io: IoMode) {
    let origin = Arc::new(MemoryBacking::new());
    for i in 0..8 {
        origin.put(format!("k{i}"), format!("v{i}").into_bytes());
    }
    let handle = serve(test_config(io), origin).expect("server starts");

    let mut c = Client::connect(handle.addr()).expect("connect");
    let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();
    let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    let got = c.get_pipelined(&refs).unwrap();
    for (i, v) in got.iter().enumerate() {
        assert_eq!(v.as_deref(), Some(format!("v{i}").as_bytes()));
    }

    // Same thing on a raw socket: one write carrying several commands,
    // including an invalid (recoverable) one mid-stream.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(b"GET k0\r\nBOGUS\r\nGET k1\r\nQUIT\r\n")
        .unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    let crc0 = format!("{:08x}", csr_serve::proto::crc32(b"v0"));
    let crc1 = format!("{:08x}", csr_serve::proto::crc32(b"v1"));
    assert!(reply.starts_with(&format!("VALUE k0 2 {crc0}\r\nv0\r\nEND\r\n")));
    assert!(reply.contains("CLIENT_ERROR"));
    assert!(reply.contains(&format!("VALUE k1 2 {crc1}\r\nv1\r\nEND\r\n")));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn measured_fetch_latency_becomes_the_miss_cost() {
    measured_fetch_latency_becomes_the_miss_cost_in(IoMode::Blocking);
}

#[test]
fn measured_fetch_latency_becomes_the_miss_cost_event() {
    measured_fetch_latency_becomes_the_miss_cost_in(IoMode::Event);
}

fn measured_fetch_latency_becomes_the_miss_cost_in(io: IoMode) {
    // Every key is slow: one read-through must charge at least the
    // origin's sleep in microseconds.
    let origin = Arc::new(SimBacking {
        fast: Duration::from_millis(3),
        slow: Duration::from_millis(3),
        slow_every: 1,
        value_len: 8,
    });
    let handle = serve(test_config(io), origin).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");
    assert!(c.get("anything").unwrap().is_some());
    let stats = handle.cache_stats();
    assert_eq!(stats.misses, 1);
    assert!(
        stats.aggregate_miss_cost >= 3_000,
        "measured cost {} below the 3ms origin latency",
        stats.aggregate_miss_cost
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn saturated_server_sheds_with_server_busy() {
    // Blocking-engine specific: shedding here is a property of the
    // bounded worker queue. The event engine sheds on `max_conns`
    // instead — covered in tests/io_parity.rs.
    // One worker, queue depth one: the third concurrent connection must
    // be shed explicitly instead of waiting behind a slow fetch.
    let origin = Arc::new(SimBacking {
        fast: Duration::from_millis(500),
        slow: Duration::from_millis(500),
        slow_every: 1,
        value_len: 8,
    });
    let config = ServerConfig {
        workers: 1,
        backlog: 1,
        ..test_config(IoMode::Blocking)
    };
    let handle = serve(config, origin).expect("server starts");

    // Occupy the only worker with a slow fetch.
    let mut busy = TcpStream::connect(handle.addr()).unwrap();
    busy.write_all(b"GET slow-key\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // Fill the one queue slot.
    let _queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // This one has nowhere to go.
    let shed = TcpStream::connect(handle.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut line = String::new();
    BufReader::new(shed).read_line(&mut line).unwrap();
    assert_eq!(line, "SERVER_BUSY\r\n");

    // The busy connection still completes normally.
    busy.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut first = String::new();
    BufReader::new(busy).read_line(&mut first).unwrap();
    assert!(first.starts_with("VALUE slow-key"), "got {first:?}");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn shutdown_drains_cuts_idle_connections_and_flushes_the_report() {
    shutdown_drains_in(IoMode::Blocking);
}

#[test]
fn shutdown_drains_cuts_idle_connections_and_flushes_the_report_event() {
    shutdown_drains_in(IoMode::Event);
}

fn shutdown_drains_in(io: IoMode) {
    let report_path = std::env::temp_dir().join(format!(
        "csr-serve-e2e-report-{}-{}.prom",
        std::process::id(),
        io.name()
    ));
    let _ = std::fs::remove_file(&report_path);
    let config = ServerConfig {
        report: Some(ReportSink {
            path: report_path.clone(),
            // Longer than the test: only the final shutdown flush writes.
            interval: Duration::from_secs(60),
            format: ReportFormat::Prometheus,
        }),
        ..test_config(io)
    };
    let origin = Arc::new(MemoryBacking::new());
    origin.put("k", b"v".to_vec());
    let handle = serve(config, origin).expect("server starts");

    let mut active = Client::connect(handle.addr()).expect("connect");
    assert!(active.get("k").unwrap().is_some());
    // An idle connection that never sends: shutdown must not wait out its
    // 5s idle timeout.
    let idle = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let t0 = Instant::now();
    handle.shutdown().expect("clean shutdown");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "drain took {:?}, idle connection was not cut",
        t0.elapsed()
    );

    // The idle peer sees an orderly close.
    let mut idle = idle;
    idle.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(idle.read(&mut buf).unwrap(), 0);

    let report = std::fs::read_to_string(&report_path).expect("report written");
    assert!(
        report.contains("csr_serve_requests_total"),
        "final flush missing server families: {report:.0?}"
    );
    let _ = std::fs::remove_file(&report_path);
}

/// The reproducible serving demo from the issue: a bimodal origin where
/// one key in eight costs ~20x, identical Zipf traffic against LRU and
/// DCL, and the cost-sensitive policy must pay less total measured miss
/// cost at a comparable hit rate.
#[test]
fn dcl_pays_less_measured_miss_cost_than_lru() {
    fn run(policy: Policy) -> (f64, u64) {
        let origin = Arc::new(SimBacking {
            fast: Duration::ZERO,
            slow: Duration::from_millis(2),
            slow_every: 8,
            value_len: 16,
        });
        let config = ServerConfig {
            capacity: 256,
            shards: Some(1),
            policy,
            ..test_config(IoMode::Blocking)
        };
        let handle = serve(config, origin).expect("server starts");
        let mut c = Client::connect(handle.addr()).expect("connect");

        // Deterministic Zipf(0.9) stream over 2048 keys, single client so
        // the access order (and thus the policy decisions) is exact.
        let mut rng = mem_trace::rng::SplitMix64::new(7);
        let mut cdf = Vec::with_capacity(2048);
        let mut total = 0.0f64;
        for rank in 1..=2048u64 {
            total += (rank as f64).powf(-0.9);
            cdf.push(total);
        }
        for _ in 0..6000 {
            let r = rng.next_f64() * total;
            let idx = cdf.partition_point(|&p| p < r).min(cdf.len() - 1);
            let key = format!("key:{idx}");
            assert!(c.get(&key).unwrap().is_some());
        }
        let stats = handle.cache_stats();
        handle.shutdown().expect("clean shutdown");
        (stats.hit_rate(), stats.aggregate_miss_cost)
    }

    // The comparison rides on *measured* costs, so scheduler noise on a
    // loaded box can occasionally make "fast" fetches look expensive and
    // wash out the gap. Give the stochastic claim a couple of attempts;
    // a real regression fails all of them.
    let mut last = String::new();
    for _ in 0..3 {
        let (lru_hit, lru_cost) = run(Policy::Lru);
        let (dcl_hit, dcl_cost) = run(Policy::Dcl);
        // Equal hit-rate ballpark: DCL trades some raw hit rate at most.
        if dcl_hit <= lru_hit - 0.15 {
            last = format!("DCL hit rate {dcl_hit:.3} collapsed vs LRU {lru_hit:.3}");
            continue;
        }
        if (dcl_cost as f64) >= 0.95 * lru_cost as f64 {
            last = format!("DCL measured cost {dcl_cost} not below LRU's {lru_cost}");
            continue;
        }
        return;
    }
    panic!("{last}");
}
