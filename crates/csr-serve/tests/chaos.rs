//! End-to-end chaos: the self-healing client against a real server
//! behind the fault-injecting proxy. The acceptance scenarios:
//!
//! * a 10k-op run through seeded resets, corruption, truncation, stalls,
//!   and a scripted partition completes with **zero wrong values** and
//!   healing counters that account for the injected faults;
//! * same chaos seed + same workload ⇒ identical injected-fault sequence
//!   and identical per-op outcome sequence (the determinism property);
//! * SIGKILL the server mid-pipelined-batch, restart it, re-point the
//!   proxy: the client completes the run with zero wrong values and
//!   `csr_serve_client_reconnects_total > 0`;
//! * an endpoint dying mid-run fails the client over to the replica.

use csr_obs::Registry;
use csr_serve::chaos::{ChaosConfig, ChaosProxy, ChaosSnapshot};
use csr_serve::client::{ClientMetrics, ConnectionError, FailoverClient, FailoverConfig, Timeouts};
use csr_serve::resilience::BackoffSchedule;
use csr_serve::server::{serve, ServerConfig};
use csr_serve::{IoMode, MemoryBacking, SimBacking};
use mem_trace::rng::SplitMix64;
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn chaos_server_config(io: IoMode) -> ServerConfig {
    ServerConfig {
        io,
        workers: 16,
        backlog: 32,
        idle_timeout: Duration::from_secs(5),
        partial_read_deadline: Duration::from_secs(2),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn fast_failover(seed: u64) -> FailoverConfig {
    FailoverConfig {
        // Read stays under the server's partial-read deadline so a
        // corrupted CRLF always resolves client-side first.
        timeouts: Timeouts {
            connect: Duration::from_secs(2),
            read: Duration::from_secs(1),
            write: Duration::from_secs(1),
        },
        backoff: BackoffSchedule {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
        },
        max_attempts: 64,
        probe_every: 4,
        seed,
    }
}

/// A GET under chaos may only ever see what this workload can produce:
/// the SimBacking synthesis (key, `#`-padded) or a loadgen-style SET
/// payload (all `b'v'`).
fn plausible(key: &str, data: &[u8]) -> bool {
    data.starts_with(key.as_bytes()) || data.iter().all(|&b| b == b'v')
}

/// The headline acceptance scenario: 10k ops, four clients, every fault
/// class firing, one scripted partition — zero wrong values, and the
/// healing counters must account for the chaos the proxy reports.
#[test]
fn ten_thousand_ops_heal_through_chaos_with_zero_wrong_values() {
    ten_thousand_ops_heal_in(IoMode::Blocking);
}

#[test]
fn ten_thousand_ops_heal_through_chaos_with_zero_wrong_values_event() {
    ten_thousand_ops_heal_in(IoMode::Event);
}

fn ten_thousand_ops_heal_in(io: IoMode) {
    const THREADS: u64 = 4;
    const OPS_PER_THREAD: u64 = 2500;

    let origin = Arc::new(SimBacking {
        fast: Duration::ZERO,
        slow: Duration::ZERO,
        slow_every: 8,
        value_len: 32,
    });
    let handle = serve(chaos_server_config(io), origin).expect("server starts");
    let proxy = Arc::new(
        ChaosProxy::start(
            handle.addr(),
            // Fault plans are drawn per connection, and most faults kill
            // their connection (directly, or via the client detecting a
            // malformed frame) — so high rates produce churn, and churn
            // produces fresh plans. Low rates would leave one long-lived
            // clean connection serving the whole run.
            ChaosConfig {
                seed: 0xc4a0,
                reset_rate: 0.10,
                mid_reset_rate: 0.15,
                corrupt_rate: 0.30,
                truncate_rate: 0.10,
                stall_rate: 0.20,
                stall: Duration::from_millis(5),
                ..ChaosConfig::default()
            },
        )
        .expect("proxy starts"),
    );

    // The scripted partition, mid-run.
    let partition = {
        let proxy = Arc::clone(&proxy);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            proxy.set_partitioned(true);
            std::thread::sleep(Duration::from_millis(200));
            proxy.set_partitioned(false);
        })
    };

    let registry = Registry::new();
    let metrics = ClientMetrics::new(&registry);
    let wrong = Arc::new(AtomicU64::new(0));
    let maybe_applied = Arc::new(AtomicU64::new(0));
    let target = proxy.addr().to_string();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let target = target.clone();
            let metrics = metrics.clone();
            let wrong = Arc::clone(&wrong);
            let maybe_applied = Arc::clone(&maybe_applied);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0xbeef ^ t);
                let mut client =
                    FailoverClient::new(vec![target], fast_failover(7 + t)).with_metrics(metrics);
                let payload = vec![b'v'; 32];
                for _ in 0..OPS_PER_THREAD {
                    let key = format!("key:{}", rng.below(512));
                    if rng.chance(0.1) {
                        match client.set(&key, &payload) {
                            Ok(()) => {}
                            Err(e) if ConnectionError::is_maybe_applied(&e) => {
                                maybe_applied.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("worker {t}: SET gave up: {e}"),
                        }
                    } else {
                        match client.get(&key) {
                            Ok(Some(v)) => {
                                if !plausible(&key, &v) {
                                    wrong.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(None) => {} // corrupted-key miss: no data, no lie
                            Err(e) => panic!("worker {t}: GET gave up: {e}"),
                        }
                    }
                }
                client.close();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let _ = partition.join();

    assert_eq!(wrong.load(Ordering::Relaxed), 0, "corruption reached data");
    let snap = proxy.counters();
    // Every configured fault class actually fired.
    assert!(snap.resets > 0, "no immediate resets: {snap:?}");
    assert!(snap.mid_resets > 0, "no mid-reply resets: {snap:?}");
    assert!(snap.truncations > 0, "no truncations: {snap:?}");
    assert!(snap.corruptions > 0, "no corruptions: {snap:?}");
    assert!(snap.stalls > 0, "no stalls: {snap:?}");
    assert!(
        snap.partition_rejects + snap.partition_cuts > 0,
        "the scripted partition left no trace: {snap:?}"
    );

    // Healing accounting: every client connect (initial or healing) is
    // one proxy accept — relayed, reset, or partition-rejected.
    let connects = snap.connections + snap.partition_rejects;
    let reconnects = metrics.reconnects.get();
    assert!(
        connects.abs_diff(reconnects + THREADS) <= THREADS,
        "connect accounting off: proxy saw {connects}, client healed {reconnects} (+{THREADS} initial)"
    );
    // Every injected connection kill forces (at most) one heal.
    assert!(
        reconnects + THREADS >= snap.resets + snap.mid_resets + snap.truncations,
        "fewer reconnects ({reconnects}) than injected kills: {snap:?}"
    );
    assert!(metrics.replays.get() > 0, "healing never replayed an op");

    drop(proxy);
    handle.shutdown().expect("clean shutdown");
}

/// One sequential client run against a fresh server + proxy; returns the
/// per-op outcome sequence and the proxy's injected-fault snapshot.
fn deterministic_run(proxy_seed: u64) -> (Vec<String>, ChaosSnapshot) {
    let origin = Arc::new(MemoryBacking::new());
    for i in 0..32 {
        origin.put(format!("k{i}"), format!("value-{i:02}").into_bytes());
    }
    let config = ServerConfig {
        workers: 4,
        ..chaos_server_config(IoMode::Blocking)
    };
    let handle = serve(config, origin).expect("server starts");
    let proxy = ChaosProxy::start(
        handle.addr(),
        // High per-connection rates: almost every connection draws a
        // killing fault, each kill spawns a fresh connection with a
        // fresh plan, and the injected sequence stays long enough to
        // tell two seeds apart.
        ChaosConfig {
            seed: proxy_seed,
            reset_rate: 0.30,
            mid_reset_rate: 0.50,
            corrupt_rate: 0.50,
            truncate_rate: 0.30,
            fault_window: 512,
            ..ChaosConfig::default()
        },
    )
    .expect("proxy starts");

    let config = FailoverConfig {
        backoff: BackoffSchedule {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
        },
        ..fast_failover(7)
    };
    let mut client = FailoverClient::new(vec![proxy.addr().to_string()], config);
    let outcomes: Vec<String> = (0..400)
        .map(|i| {
            let key = format!("k{}", i % 32);
            match client.get(&key) {
                Ok(Some(v)) => String::from_utf8_lossy(&v).into_owned(),
                Ok(None) => "<none>".to_owned(),
                Err(e) => format!("<err:{:?}>", e.kind()),
            }
        })
        .collect();
    client.close();
    let snap = proxy.counters();
    drop(proxy);
    handle.shutdown().expect("clean shutdown");
    (outcomes, snap)
}

/// The determinism property: same chaos seed + same workload ⇒ identical
/// injected-fault counters and identical client outcome sequence; a
/// different chaos seed diverges.
#[test]
fn same_seeds_produce_identical_faults_and_outcomes() {
    let (outcomes_a, snap_a) = deterministic_run(1101);
    let (outcomes_b, snap_b) = deterministic_run(1101);
    assert!(
        snap_a.injected_total() > 0,
        "the chaos run injected nothing: {snap_a:?}"
    );
    assert_eq!(snap_a, snap_b, "fault sequence diverged for one seed");
    assert_eq!(outcomes_a, outcomes_b, "outcomes diverged for one seed");
    // Every outcome the clients saw was the correct value (or a correct
    // miss after a corrupted key): chaos may slow the run, never wrong it.
    for (i, out) in outcomes_a.iter().enumerate() {
        let key = format!("k{}", i % 32);
        assert!(
            out == &format!("value-{:02}", i % 32) || out == "<none>",
            "op {i} ({key}): outcome {out:?}"
        );
    }

    let (_, snap_c) = deterministic_run(2202);
    assert_ne!(snap_a, snap_c, "different seeds injected identical faults");
}

/// Spawns the real `csr-serve` daemon on a free port with a zero-latency
/// sim origin, returning the child and its bound address.
fn spawn_daemon() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_csr-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--backing",
            "sim",
            "--fast-us",
            "0",
            "--slow-us",
            "0",
            "--value-len",
            "32",
            "--workers",
            "8",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn csr-serve");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = std::io::BufReader::new(stdout);
    let mut line = String::new();
    lines
        .read_line(&mut line)
        .expect("read daemon listening line");
    // "csr-serve listening on 127.0.0.1:PORT policy=dcl backing=sim"
    let addr = line
        .split_whitespace()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable daemon banner: {line:?}"));
    (child, addr)
}

/// What the daemon's sim origin synthesizes for `key` (`--value-len 32`).
fn expect_sim_value(key: &str, data: &[u8]) {
    assert_eq!(data.len(), 32, "{key}: wrong value length");
    assert!(
        data.starts_with(key.as_bytes()) && data[key.len()..].iter().all(|&b| b == b'#'),
        "{key}: wrong value {:?}",
        String::from_utf8_lossy(data)
    );
}

/// The kill-and-recover satellite: SIGKILL the daemon mid-pipelined-run
/// behind the proxy, start a replacement, re-point the proxy — the
/// failover client finishes with zero wrong values and visible healing.
#[test]
fn sigkill_and_restart_mid_batch_heals_with_zero_wrong_values() {
    let (child1, addr1) = spawn_daemon();
    let proxy = Arc::new(
        ChaosProxy::start(
            addr1,
            ChaosConfig {
                seed: 5,
                corrupt_rate: 0.05,
                ..ChaosConfig::default()
            },
        )
        .expect("proxy starts"),
    );

    // The killer: SIGKILL mid-run, restart, re-point the proxy.
    let killer = {
        let proxy = Arc::clone(&proxy);
        std::thread::spawn(move || {
            let mut child1 = child1;
            std::thread::sleep(Duration::from_millis(250));
            child1.kill().expect("SIGKILL the daemon");
            let _ = child1.wait(); // reap
            let (child2, addr2) = spawn_daemon();
            proxy.set_upstream(addr2);
            child2
        })
    };

    let registry = Registry::new();
    let metrics = ClientMetrics::new(&registry);
    let config = FailoverConfig {
        max_attempts: 200,
        backoff: BackoffSchedule {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
        },
        ..fast_failover(3)
    };
    let mut client =
        FailoverClient::new(vec![proxy.addr().to_string()], config).with_metrics(metrics.clone());
    for round in 0..40u64 {
        let keys: Vec<String> = (0..16)
            .map(|j| format!("key:{}", (round + j) % 64))
            .collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let got = client
            .get_pipelined(&refs)
            .unwrap_or_else(|e| panic!("round {round}: batch gave up: {e}"));
        for (key, value) in keys.iter().zip(&got) {
            let value = value.as_ref().unwrap_or_else(|| {
                panic!("round {round}: {key} missing (sim origin has every key)")
            });
            expect_sim_value(key, value);
        }
        // Pace the run so the kill lands mid-way, not after the end.
        std::thread::sleep(Duration::from_millis(15));
    }
    client.close();

    assert!(
        metrics.reconnects.get() > 0,
        "the run never had to reconnect — the kill left no trace"
    );
    let mut child2 = killer.join().expect("killer thread panicked");
    drop(proxy);
    child2.kill().expect("stop replacement daemon");
    let _ = child2.wait();
}

/// Multi-endpoint failover: two live servers with distinct marker
/// values; when the active endpoint dies mid-run, the client fails over
/// to the replica and completes every op.
#[test]
fn endpoint_death_fails_over_to_the_replica() {
    let make = |marker: &str, io: IoMode| {
        let origin = Arc::new(MemoryBacking::new());
        origin.put("who".to_owned(), marker.as_bytes().to_vec());
        serve(
            ServerConfig {
                workers: 2,
                ..chaos_server_config(io)
            },
            origin,
        )
        .expect("server starts")
    };
    // Mixed engines on purpose: failover from a blocking primary to an
    // event-engine replica must be seamless (identical wire protocol).
    let a = make("from-a", IoMode::Blocking);
    let b = make("from-b", IoMode::Event);

    let registry = Registry::new();
    let metrics = ClientMetrics::new(&registry);
    let mut client = FailoverClient::new(
        vec![a.addr().to_string(), b.addr().to_string()],
        fast_failover(9),
    )
    .with_metrics(metrics.clone());

    // Stable on the first endpoint while it is healthy.
    for _ in 0..5 {
        let v = client.get("who").expect("get").expect("present");
        assert_eq!(v, b"from-a", "connection should stick to endpoint A");
    }

    a.shutdown().expect("kill endpoint A");
    for i in 0..20 {
        let v = client.get("who").expect("get heals").expect("present");
        assert_eq!(
            v, b"from-b",
            "op {i}: after A's death every answer comes from B"
        );
    }
    assert!(metrics.failovers.get() >= 1, "failover counter never moved");
    assert_eq!(
        client.endpoint_health(),
        vec![false, true],
        "A must be marked unhealthy, B healthy"
    );

    client.close();
    b.shutdown().expect("clean shutdown");
}
