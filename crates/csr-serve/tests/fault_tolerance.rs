//! End-to-end fault tolerance: a real server over a failing origin.
//!
//! The scenarios the resilience stack exists for, exercised through real
//! sockets: a flaky origin under sustained load, a scripted outage that
//! walks the circuit breaker through open → half-open → closed, stale
//! values served (flagged `STALE`) while the origin is down, the typed
//! `ORIGIN_ERROR` reply when there is nothing to degrade to, and the
//! zero-latency-origin regression (no cache entry may carry miss cost 0).

use csr_serve::resilience::{BackoffSchedule, ResilienceConfig};
use csr_serve::server::{serve, ServerConfig, ServerHandle};
use csr_serve::{Client, FaultBacking, IoMode, MemoryBacking, OriginError, SimBacking};
use std::sync::Arc;
use std::time::Duration;

/// A resilience config tuned for test speed: fast backoff, a 3-failure
/// breaker with a short cooldown, a deadline tight enough to cut the
/// injected hangs.
fn fast_resilience() -> ResilienceConfig {
    ResilienceConfig {
        deadline: Some(Duration::from_millis(10)),
        retries: 2,
        backoff: BackoffSchedule {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
        },
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(100),
    }
}

fn fault_config() -> ServerConfig {
    fault_config_io(IoMode::Blocking)
}

fn fault_config_io(io: IoMode) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        io,
        capacity: 512,
        shards: Some(4),
        workers: 8,
        backlog: 8,
        idle_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        resilience: fast_resilience(),
        // Large enough that everything ever fetched stays refetchable.
        stale_capacity: Some(8192),
        ..ServerConfig::default()
    }
}

fn metric(handle: &ServerHandle, needle: &str) -> u64 {
    let text = csr_obs::export::prometheus(&handle.registry().snapshot());
    text.lines()
        .find(|l| l.starts_with(needle) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {needle} not found in:\n{text}"))
}

/// The headline acceptance scenario: a 10k-op run against an origin that
/// errors ~10% of the time and occasionally hangs past the deadline. The
/// run must complete without a worker or connection dying (`ORIGIN_ERROR`
/// replies are fine, transport errors are not), and afterwards the
/// breaker is walked through a full open → re-close cycle and a
/// guaranteed stale serve.
#[test]
fn flaky_origin_survives_a_10k_op_run() {
    flaky_origin_survives_in(IoMode::Blocking);
}

#[test]
fn flaky_origin_survives_a_10k_op_run_event() {
    flaky_origin_survives_in(IoMode::Event);
}

fn flaky_origin_survives_in(io: IoMode) {
    let origin = Arc::new(SimBacking {
        fast: Duration::ZERO,
        slow: Duration::ZERO,
        slow_every: 8,
        value_len: 32,
    });
    let fault = Arc::new(
        FaultBacking::new(origin, 0xfa117, 0.10, 0.002).hang_for(Duration::from_millis(25)),
    );
    let handle = serve(
        fault_config_io(io),
        Arc::clone(&fault) as Arc<dyn csr_serve::Backing>,
    )
    .expect("server starts");

    const THREADS: u64 = 4;
    const OPS_PER_THREAD: u64 = 2_500; // 10k total
    const KEYS: u64 = 2_048; // 4x the capacity: constant evict + refetch
    let addr = handle.addr();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut origin_errors = 0u64;
                for i in 0..OPS_PER_THREAD {
                    let key = format!("key:{}", (i * 13 + t * 7) % KEYS);
                    match c.get_value(&key) {
                        Ok(Some(_)) => {}
                        Ok(None) => panic!("sim origin always resolves, got END for {key}"),
                        Err(e) => {
                            assert!(
                                e.get_ref().is_some_and(|i| i.is::<OriginError>()),
                                "only ORIGIN_ERROR is acceptable, got: {e}"
                            );
                            origin_errors += 1;
                        }
                    }
                }
                origin_errors
            })
        })
        .collect();
    let origin_errors: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("no worker may die"))
        .sum();

    let stats = handle.cache_stats();
    assert_eq!(
        stats.lookups,
        THREADS * OPS_PER_THREAD,
        "every op reached the cache"
    );
    assert!(stats.insertions > 0);
    // The cost-0 invariant, via its aggregate proxy: every insertion
    // charged at least 1, so the aggregate can never undercut the count.
    assert!(
        stats.aggregate_miss_cost >= stats.insertions,
        "aggregate cost {} < insertions {}: some entry was charged 0",
        stats.aggregate_miss_cost,
        stats.insertions
    );
    // ~10% injected error rate, 2 retries: failures must have been both
    // observed (metrics) and mostly absorbed (the run completed).
    assert!(metric(&handle, "csr_serve_origin_errors_total") > 0);
    assert!(metric(&handle, "csr_serve_origin_retries_total") > 0);
    let _ = origin_errors; // may be 0 if stale serves absorbed everything

    // Deterministic epilogue: force a full breaker cycle and a stale
    // serve on top of the noisy run. The noisy run may have left the
    // breaker open (10% errors against a threshold of 3), so prime the
    // stale store with a bounded retry loop until a fetch lands.
    let mut c = Client::connect(addr).expect("connect");
    let primed = (0..100).any(|_| match c.get_value("stale-probe") {
        Ok(Some(_)) => true,
        _ => {
            std::thread::sleep(Duration::from_millis(20));
            false
        }
    });
    assert!(
        primed,
        "stale store never primed against the healthy origin"
    );
    fault.set_failing(true);
    // Uncached keys fail through to the breaker: with threshold 3 and
    // every attempt failing, the breaker must open.
    for i in 0..6 {
        let _ = c.get_value(&format!("fresh:{i}"));
    }
    assert!(
        metric(
            &handle,
            "csr_serve_origin_breaker_transitions_total{to=\"open\"}"
        ) >= 1,
        "breaker never opened under a total outage"
    );
    // A stale serve while the origin is failing: the probe key was
    // fetched successfully above, then evict it so the next GET misses.
    assert!(c.del("stale-probe").unwrap());
    let v = c
        .get_value("stale-probe")
        .expect("stale serve, not an error")
        .expect("stale serve, not END");
    assert!(v.stale, "a degraded read must carry the STALE flag");
    assert!(metric(&handle, "csr_serve_origin_stale_served_total") >= 1);

    // Origin recovers; after the cooldown the half-open probe re-closes
    // the breaker.
    fault.set_failing(false);
    std::thread::sleep(Duration::from_millis(150));
    assert!(c.get("fresh:recovered").unwrap().is_some());
    assert!(
        metric(
            &handle,
            "csr_serve_origin_breaker_transitions_total{to=\"closed\"}"
        ) >= 1,
        "breaker never re-closed after recovery"
    );

    handle
        .shutdown()
        .expect("clean shutdown after the flaky run");
}

/// A scripted outage window drives the breaker deterministically: closed
/// under healthy traffic, open after `threshold` consecutive failures
/// (fail-fast observed as instant ORIGIN_ERRORs), half-open after the
/// cooldown, closed again on a successful probe.
#[test]
fn breaker_opens_and_recloses_under_scripted_outage() {
    let inner = Arc::new(SimBacking {
        fast: Duration::ZERO,
        slow: Duration::ZERO,
        slow_every: 0,
        value_len: 8,
    });
    let fault = Arc::new(FaultBacking::new(inner, 1, 0.0, 0.0));
    let config = ServerConfig {
        resilience: ResilienceConfig {
            retries: 0, // 1 request = 1 origin attempt: exact accounting
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
            deadline: None,
            ..fast_resilience()
        },
        stale_capacity: Some(0), // pure ORIGIN_ERROR path, no stale serves
        ..fault_config()
    };
    let handle =
        serve(config, Arc::clone(&fault) as Arc<dyn csr_serve::Backing>).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Healthy: breaker closed, gauge 0.
    for i in 0..4 {
        assert!(c.get(&format!("warm:{i}")).unwrap().is_some());
    }
    assert_eq!(metric(&handle, "csr_serve_origin_breaker_state"), 0);

    // Total outage: three consecutive failures open the breaker.
    fault.set_failing(true);
    for i in 0..3 {
        assert!(c.get(&format!("down:{i}")).is_err());
    }
    assert_eq!(metric(&handle, "csr_serve_origin_breaker_state"), 1);
    assert_eq!(
        metric(
            &handle,
            "csr_serve_origin_breaker_transitions_total{to=\"open\"}"
        ),
        1
    );
    // While open, requests fail fast without touching the origin.
    let before = fault.requests();
    assert!(c.get("down:fast-fail").is_err());
    assert_eq!(
        fault.requests(),
        before,
        "an open breaker must not let the request reach the origin"
    );

    // Recovery + cooldown: the next request is the half-open probe; its
    // success re-closes the breaker and traffic flows again.
    fault.set_failing(false);
    std::thread::sleep(Duration::from_millis(130));
    assert!(c.get("probe").unwrap().is_some());
    assert_eq!(metric(&handle, "csr_serve_origin_breaker_state"), 0);
    assert_eq!(
        metric(
            &handle,
            "csr_serve_origin_breaker_transitions_total{to=\"half_open\"}"
        ),
        1
    );
    assert_eq!(
        metric(
            &handle,
            "csr_serve_origin_breaker_transitions_total{to=\"closed\"}"
        ),
        1
    );
    handle.shutdown().expect("clean shutdown");
}

/// Serve-stale end to end: a key fetched once stays servable through an
/// origin failure, flagged `STALE`, charged its last successful measured
/// cost — and the stale re-insert makes the *next* read a plain hit.
#[test]
fn stale_values_carry_the_flag_and_the_last_measured_cost() {
    let origin = Arc::new(MemoryBacking::new());
    origin.put("doc", b"contents".to_vec());
    let fault = Arc::new(FaultBacking::new(origin, 1, 0.0, 0.0));
    let handle = serve(
        fault_config(),
        Arc::clone(&fault) as Arc<dyn csr_serve::Backing>,
    )
    .expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Healthy fetch: not stale; the stale store now holds the copy.
    let v = c.get_value("doc").unwrap().expect("origin has it");
    assert_eq!(v.data, b"contents");
    assert!(!v.stale);
    let cost_before = handle.cache_stats().aggregate_miss_cost;

    // Evict it, then break the origin: the read degrades to the stale
    // copy instead of erroring.
    assert!(c.del("doc").unwrap());
    fault.set_failing(true);
    let v = c.get_value("doc").unwrap().expect("stale copy exists");
    assert_eq!(v.data, b"contents");
    assert!(v.stale, "a degraded read must carry the STALE flag");

    // The stale re-insert charged a real (clamped ≥ 1) cost back into
    // the cache, and made the key a plain hit while still degraded.
    let stats = handle.cache_stats();
    assert!(stats.aggregate_miss_cost > cost_before);
    assert!(stats.aggregate_miss_cost >= stats.insertions);
    let v = c.get_value("doc").unwrap().expect("now cached again");
    assert!(!v.stale, "the re-inserted copy serves as a normal hit");

    // A key never successfully fetched has nothing to fall back on: the
    // typed recoverable ORIGIN_ERROR, and the connection survives it.
    let err = c.get_value("never-seen").expect_err("no stale copy");
    let origin_err = err
        .get_ref()
        .and_then(|inner| inner.downcast_ref::<OriginError>())
        .expect("typed OriginError");
    assert!(!origin_err.reason.is_empty());
    fault.set_failing(false);
    // The failures above opened the breaker: wait out its cooldown so
    // the recovery read is the successful half-open probe.
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        c.get("never-seen").unwrap().is_none(),
        "the same connection keeps working after ORIGIN_ERROR, and a \
         healthy origin's 'no entry' is an authoritative END, not an error"
    );
    handle.shutdown().expect("clean shutdown");
}

/// A mid-batch `ORIGIN_ERROR` must not desynchronize a pipelined
/// connection: the client drains the batch's remaining replies, fails the
/// call with the first origin error, and the next request on the same
/// connection gets its own reply — not a leftover from the aborted batch.
#[test]
fn pipelined_origin_error_leaves_the_connection_usable() {
    let origin = Arc::new(MemoryBacking::new());
    origin.put("a", b"alpha".to_vec());
    origin.put("c", b"gamma".to_vec());
    let fault = Arc::new(FaultBacking::new(origin, 1, 0.0, 0.0));
    let config = ServerConfig {
        resilience: ResilienceConfig {
            retries: 0,
            breaker_threshold: 100, // one failure must not open it
            ..fast_resilience()
        },
        stale_capacity: Some(0), // pure ORIGIN_ERROR path, no stale serves
        ..fault_config()
    };
    let handle =
        serve(config, Arc::clone(&fault) as Arc<dyn csr_serve::Backing>).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Cache "a" and "c" while healthy; "b" will fault through to the
    // origin mid-batch.
    assert!(c.get("a").unwrap().is_some());
    assert!(c.get("c").unwrap().is_some());
    fault.set_failing(true);
    let err = c
        .get_pipelined(&["a", "b", "c"])
        .expect_err("the faulting middle key fails the batch");
    assert!(
        err.get_ref().is_some_and(|i| i.is::<OriginError>()),
        "the batch fails with the typed origin error, got: {err}"
    );

    // Same connection: each next reply must belong to its own request,
    // not to a leftover of the aborted batch.
    assert_eq!(c.get("a").unwrap(), Some(b"alpha".to_vec()));
    assert_eq!(c.get("c").unwrap(), Some(b"gamma".to_vec()));
    fault.set_failing(false);
    assert!(
        c.get("b").unwrap().is_none(),
        "healthy origin authoritatively has no b: END, not an error"
    );
    handle.shutdown().expect("clean shutdown");
}

/// The zero-latency regression: an origin that answers in under a
/// microsecond must still produce entries with measured cost ≥ 1, or the
/// cost-sensitive policies would treat every such entry as free to evict.
#[test]
fn zero_latency_origin_never_yields_cost_zero_entries() {
    let origin = Arc::new(MemoryBacking::new());
    const N: u64 = 64;
    for i in 0..N {
        origin.put(format!("k{i}"), b"v".to_vec());
    }
    let handle = serve(fault_config(), origin).expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");
    for i in 0..N {
        assert!(c.get(&format!("k{i}")).unwrap().is_some());
    }
    let stats = handle.cache_stats();
    assert_eq!(stats.insertions, N);
    assert!(
        stats.aggregate_miss_cost >= N,
        "aggregate {} < {} insertions: an in-memory fetch was charged 0",
        stats.aggregate_miss_cost,
        N
    );
    handle.shutdown().expect("clean shutdown");
}
