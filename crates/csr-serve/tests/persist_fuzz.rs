//! Fuzzing the persistence decoders, in the `proto_fuzz` mold: the
//! WAL/snapshot record decoders must never panic on arbitrary bytes and
//! must never CRC-verify garbage — every record they accept round-trips
//! byte-exactly through the canonical encoder. Three passes:
//!
//! 1. seeded random byte streams, biased toward plausible-looking
//!    headers, through `decode_stream`;
//! 2. mutated-valid WAL streams (truncations, bit flips, insertions,
//!    duplications) — decoding stops at the first damage, and pure
//!    truncations recover a strict prefix of the original records;
//! 3. a daemon-level pass: seeded garbage written as snapshot and WAL
//!    files, the daemon must boot (skipping the damage), serve STATS,
//!    and never panic.

use csr_serve::persist::{decode_record, decode_stream, DecodeEnd, Record, OP_DEL, OP_SET};
use mem_trace::rng::SplitMix64;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

/// Random bytes biased toward record-shaped content: small
/// little-endian length prefixes and op bytes show up often enough to
/// reach the deep paths (payload parse, CRC check), not just the
/// length-sanity bail-outs.
fn random_stream(rng: &mut SplitMix64, out: &mut Vec<u8>) {
    let chunks = 1 + rng.below(8);
    for _ in 0..chunks {
        if rng.chance(0.4) {
            let len = rng.below(96) as u32;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
        }
        if rng.chance(0.5) {
            out.push(if rng.chance(0.5) { OP_SET } else { OP_DEL });
        }
        let len = rng.below(64);
        for _ in 0..len {
            out.push(rng.next_u64() as u8);
        }
    }
}

/// The no-garbage property: anything the decoder accepts re-encodes to
/// exactly the bytes it was decoded from.
fn assert_roundtrip(bytes: &[u8]) -> (usize, DecodeEnd) {
    let mut cursor = 0usize;
    let mut records = 0usize;
    loop {
        match decode_record(&bytes[cursor..]) {
            Ok((record, consumed)) => {
                assert_eq!(
                    record.encode(),
                    &bytes[cursor..cursor + consumed],
                    "decoder accepted bytes the canonical encoder would not produce"
                );
                cursor += consumed;
                records += 1;
            }
            Err(end) => return (records, end),
        }
    }
}

#[test]
fn hundred_thousand_random_streams_never_panic_never_verify_garbage() {
    let mut rng = SplitMix64::new(0x9A11_F022);
    let (mut streams, mut accepted, mut torn) = (0u64, 0u64, 0u64);
    while streams < 100_000 {
        let mut bytes = Vec::new();
        random_stream(&mut rng, &mut bytes);
        let (records, end) = assert_roundtrip(&bytes);
        accepted += records as u64;
        if end == DecodeEnd::Torn {
            torn += 1;
        }
        streams += 1;
    }
    assert!(
        torn > 0,
        "fuzz never produced a rejected stream — the bias is broken"
    );
    // Random 4-byte CRCs essentially never verify; if this ever fires
    // with a large count, the CRC check is not being applied.
    assert!(
        accepted < streams / 100,
        "decoder accepted {accepted} records from random noise"
    );
}

fn corpus_record(rng: &mut SplitMix64, i: u64) -> Record {
    if rng.chance(0.2) {
        Record {
            op: OP_DEL,
            gen: i,
            cost: 0,
            key: format!("fuzz:{}", rng.below(64)),
            value: Vec::new(),
        }
    } else {
        let vlen = rng.below(64) as usize;
        Record {
            op: OP_SET,
            gen: i,
            cost: 1 + rng.below(1_000_000),
            key: format!("fuzz:{}", rng.below(64)),
            value: vec![rng.next_u64() as u8; vlen],
        }
    }
}

/// Mutated-valid WAL streams: decode must stop at the first damage and
/// everything accepted before it must be intact original records.
#[test]
fn mutated_valid_streams_truncate_at_the_damage() {
    let mut rng = SplitMix64::new(0x0BAD_CAFE);
    for _round in 0..2_000 {
        let n = 1 + rng.below(24);
        let originals: Vec<Record> = (0..n).map(|i| corpus_record(&mut rng, i)).collect();
        let mut bytes = Vec::new();
        let mut offsets = vec![0usize];
        for r in &originals {
            bytes.extend_from_slice(&r.encode());
            offsets.push(bytes.len());
        }

        let class = rng.below(4);
        match class {
            0 => {
                // Truncation: a torn tail. The decode must be exactly
                // the records whose frames survived whole.
                let cut = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.truncate(cut);
                let (records, _end) = decode_stream(&bytes);
                let whole = offsets.iter().filter(|&&o| o > 0 && o <= cut).count();
                assert_eq!(
                    records.len(),
                    whole,
                    "truncation at {cut} must recover exactly the whole frames"
                );
                assert_eq!(&records[..], &originals[..whole]);
            }
            1 => {
                // Bit flip: decoding stops at (or before) the flipped
                // record; everything accepted is an intact original.
                let pos = rng.below(bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << rng.below(8);
                let flipped_in = offsets.iter().filter(|&&o| o <= pos).count() - 1;
                let (records, _end) = decode_stream(&bytes);
                assert!(
                    records.len() <= flipped_in,
                    "a record at or after the flipped byte was served"
                );
                assert_eq!(&records[..], &originals[..records.len()]);
            }
            2 => {
                // Insertion of garbage mid-stream at a frame boundary:
                // the prefix before it must decode, nothing after may
                // unless the garbage happens to parse (CRC forbids it).
                let at = offsets[rng.below(offsets.len() as u64) as usize];
                let garbage: Vec<u8> = (0..1 + rng.below(16))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
                bytes.splice(at..at, garbage);
                let before = offsets.iter().filter(|&&o| o > 0 && o <= at).count();
                let (records, _end) = decode_stream(&bytes);
                assert!(records.len() >= before.min(records.len()));
                assert_eq!(
                    &records[..before.min(records.len())],
                    &originals[..before.min(records.len())]
                );
                for r in &records {
                    assert!(r.key.starts_with("fuzz:"), "garbage record surfaced: {r:?}");
                }
            }
            _ => {
                // Duplication of a whole frame: every decoded record is
                // still a valid original (replay handles duplicates by
                // last-writer-wins; the decoder just must not invent).
                let i = rng.below(originals.len() as u64) as usize;
                let frame = originals[i].encode();
                let at = offsets[rng.below(offsets.len() as u64) as usize];
                bytes.splice(at..at, frame);
                let (records, end) = decode_stream(&bytes);
                assert_eq!(
                    end,
                    DecodeEnd::Eof,
                    "duplicating a valid frame cannot tear the stream"
                );
                assert_eq!(records.len(), originals.len() + 1);
                for r in &records {
                    assert!(originals.contains(r), "decoder invented a record: {r:?}");
                }
            }
        }
    }
}

fn fuzz_dir(name: &str) -> PathBuf {
    let base = PathBuf::from("/dev/shm");
    let base = if base.is_dir() {
        base
    } else {
        std::env::temp_dir()
    };
    let dir = base.join(format!("csr-pfuzz-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create fuzz dir");
    dir
}

/// Daemon-level pass: seeded garbage snapshot + WAL files. The daemon
/// must boot every time, answer STATS, and serve nothing from the
/// damage. A panic or refusal to start fails the test.
#[test]
fn daemon_boots_over_garbage_snapshot_and_wal_files() {
    let mut rng = SplitMix64::new(0x5EED_FA11);
    for round in 0..8u64 {
        let dir = fuzz_dir(&format!("boot{round}"));
        // A garbage snapshot — sometimes with the right magic so the
        // record loop inside is reached, sometimes without.
        let mut snap = Vec::new();
        if rng.chance(0.6) {
            snap.extend_from_slice(b"CSRSNAP1");
        }
        for _ in 0..rng.below(512) {
            snap.push(rng.next_u64() as u8);
        }
        std::fs::write(dir.join(format!("snap-{:016x}.snap", rng.below(4))), &snap)
            .expect("write snap");
        // A WAL that starts valid and degenerates into noise.
        let mut wal = Vec::new();
        let valid = rng.below(8);
        for i in 0..valid {
            wal.extend_from_slice(&corpus_record(&mut rng, i).encode());
        }
        for _ in 0..rng.below(256) {
            wal.push(rng.next_u64() as u8);
        }
        std::fs::write(dir.join(format!("wal-{:016x}.log", 4 + rng.below(4))), &wal)
            .expect("write wal");

        let mut child = Command::new(env!("CARGO_BIN_EXE_csr-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--backing",
                "sim",
                "--fast-us",
                "0",
                "--slow-us",
                "0",
                "--value-len",
                "32",
                "--persist-dir",
                dir.to_str().expect("utf8 dir"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn csr-serve");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read banner");
        let addr: std::net::SocketAddr = line
            .split_whitespace()
            .nth(3)
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("round {round}: daemon failed to boot: {line:?}"));

        let mut stream =
            TcpStream::connect_timeout(&addr, Duration::from_secs(2)).expect("connect");
        stream.write_all(b"STATS\r\n").expect("stats");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut saw_end = false;
        let mut reply = String::new();
        while reader.read_line(&mut reply).expect("read stats") > 0 {
            if reply.trim_end() == "END" {
                saw_end = true;
                break;
            }
            reply.clear();
        }
        assert!(saw_end, "round {round}: STATS did not terminate");
        child.kill().expect("kill");
        child.wait().expect("reap");
    }
}
