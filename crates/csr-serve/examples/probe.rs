//! Probes a running csr-serve: one round trip per verb, then the STATS
//! table and the Prometheus exposition. Exits nonzero on any failure, so
//! CI can use it as a liveness check.
//!
//! ```text
//! cargo run -p csr-serve --example probe -- 127.0.0.1:11311
//! ```

use csr_serve::Client;

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:11311".to_owned());
    let mut c = Client::connect(addr.as_str())?;
    c.set_timeouts(Some(std::time::Duration::from_secs(5)))?;

    c.set("probe:key", b"probe-value")?;
    let got = c.get("probe:key")?;
    assert_eq!(
        got.as_deref(),
        Some(&b"probe-value"[..]),
        "SET/GET mismatch"
    );
    c.del("probe:key")?;

    println!("== STATS {addr} ==");
    for (name, value) in c.stats()? {
        println!("{name} = {value}");
    }
    println!("== METRICS {addr} ==");
    print!("{}", c.metrics()?);
    c.quit()
}
