//! Probes a running csr-serve: one round trip per verb, then the STATS
//! table and the Prometheus exposition. Exits nonzero on any failure, so
//! CI can use it as a liveness check.
//!
//! ```text
//! cargo run -p csr-serve --example probe -- 127.0.0.1:11311
//! ```

use csr_serve::{Client, Timeouts};
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:11311".to_owned());
    // Explicit deadlines on every socket op: a hung server fails the
    // probe instead of wedging it.
    let timeouts = Timeouts {
        connect: Duration::from_secs(5),
        read: Duration::from_secs(5),
        write: Duration::from_secs(5),
    };
    let mut c = Client::connect_with(addr.as_str(), &timeouts)?;

    c.set("probe:key", b"probe-value")?;
    let got = c.get("probe:key")?;
    assert_eq!(
        got.as_deref(),
        Some(&b"probe-value"[..]),
        "SET/GET mismatch"
    );
    c.del("probe:key")?;

    println!("== STATS {addr} ==");
    for (name, value) in c.stats()? {
        println!("{name} = {value}");
    }
    println!("== METRICS {addr} ==");
    print!("{}", c.metrics()?);
    c.quit()
}
