//! First-touch NUMA placement (Sections 3.3 and 4.2).
//!
//! Memory is distributed across processor nodes; each memory unit (a page,
//! or an individual block as in the paper's experiments) is *homed* at the
//! node of the processor that touches it first. References by a processor
//! to units homed elsewhere are **remote** — more expensive in latency,
//! bandwidth and power.

use crate::record::{ProcId, Trace};
use cache_sim::Addr;
use std::collections::HashMap;

/// A first-touch placement map from memory units to home processors.
#[derive(Debug, Clone)]
pub struct FirstTouchPlacement {
    granularity_bytes: u64,
    homes: HashMap<u64, ProcId>,
}

impl FirstTouchPlacement {
    /// Creates an empty placement with the given homing granularity.
    ///
    /// The paper homes *individual memory blocks* (64 bytes); OS-level
    /// first-touch would use pages (e.g. 4096).
    ///
    /// # Panics
    ///
    /// Panics if `granularity_bytes` is not a power of two.
    #[must_use]
    pub fn new(granularity_bytes: u64) -> Self {
        assert!(
            granularity_bytes.is_power_of_two(),
            "granularity must be a power of two"
        );
        FirstTouchPlacement {
            granularity_bytes,
            homes: HashMap::new(),
        }
    }

    /// Builds the placement by scanning `trace` in order: the first
    /// reference to each unit assigns its home.
    #[must_use]
    pub fn from_trace(granularity_bytes: u64, trace: &Trace) -> Self {
        let mut p = FirstTouchPlacement::new(granularity_bytes);
        for rec in trace {
            p.touch(rec.proc, rec.addr);
        }
        p
    }

    fn unit_of(&self, addr: Addr) -> u64 {
        addr.0 >> self.granularity_bytes.trailing_zeros()
    }

    /// Records a touch: assigns the home on first touch, returns the home.
    pub fn touch(&mut self, proc: ProcId, addr: Addr) -> ProcId {
        let unit = self.unit_of(addr);
        *self.homes.entry(unit).or_insert(proc)
    }

    /// The home of `addr`, if it has been touched.
    #[must_use]
    pub fn home_of(&self, addr: Addr) -> Option<ProcId> {
        self.homes.get(&self.unit_of(addr)).copied()
    }

    /// Whether a reference by `proc` to `addr` is remote. Untouched
    /// addresses are local by definition (the reference *would* home them).
    #[must_use]
    pub fn is_remote(&self, proc: ProcId, addr: Addr) -> bool {
        match self.home_of(addr) {
            Some(home) => home != proc,
            None => false,
        }
    }

    /// The homing granularity in bytes.
    #[must_use]
    pub fn granularity_bytes(&self) -> u64 {
        self.granularity_bytes
    }

    /// Number of distinct units homed so far.
    #[must_use]
    pub fn units_homed(&self) -> usize {
        self.homes.len()
    }

    /// Fraction of `proc`'s references in `trace` that are remote under
    /// this placement — the paper's *remote access fraction* (Table 1).
    #[must_use]
    pub fn remote_fraction(&self, trace: &Trace, proc: ProcId) -> f64 {
        let mut total = 0u64;
        let mut remote = 0u64;
        for rec in trace {
            if rec.proc == proc {
                total += 1;
                if self.is_remote(proc, rec.addr) {
                    remote += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn first_touch_wins() {
        let mut p = FirstTouchPlacement::new(64);
        assert_eq!(p.touch(ProcId(1), Addr(0x100)), ProcId(1));
        // A later touch by another processor does not re-home.
        assert_eq!(p.touch(ProcId(0), Addr(0x100)), ProcId(1));
        assert_eq!(p.home_of(Addr(0x120)), Some(ProcId(1)), "same 64B block");
        assert_eq!(p.home_of(Addr(0x140)), None);
    }

    #[test]
    fn remoteness() {
        let mut p = FirstTouchPlacement::new(64);
        p.touch(ProcId(0), Addr(0));
        assert!(!p.is_remote(ProcId(0), Addr(0)));
        assert!(p.is_remote(ProcId(1), Addr(0)));
        assert!(!p.is_remote(ProcId(1), Addr(0x1000)), "untouched is local");
    }

    #[test]
    fn remote_fraction_from_trace() {
        let mut t = Trace::new(2);
        // P1 homes block 0; P0 homes block 1; then P0 references both twice.
        t.push(TraceRecord::write(ProcId(1), Addr(0)));
        t.push(TraceRecord::write(ProcId(0), Addr(64)));
        t.push(TraceRecord::read(ProcId(0), Addr(0)));
        t.push(TraceRecord::read(ProcId(0), Addr(64)));
        let p = FirstTouchPlacement::from_trace(64, &t);
        // P0 refs: 64 (local, homed it), 0 (remote), 64 (local) => 1/3.
        let f = p.remote_fraction(&t, ProcId(0));
        assert!((f - 1.0 / 3.0).abs() < 1e-12, "got {f}");
        assert_eq!(p.units_homed(), 2);
    }

    #[test]
    fn page_granularity_groups_blocks() {
        let mut p = FirstTouchPlacement::new(4096);
        p.touch(ProcId(0), Addr(0));
        assert_eq!(p.home_of(Addr(4095)), Some(ProcId(0)));
        assert_eq!(p.home_of(Addr(4096)), None);
    }
}
